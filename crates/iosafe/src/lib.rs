//! Crash-safe artifact writes for the whole workspace.
//!
//! Every durable artifact this repository produces — search-state
//! checkpoints, `BENCH_check.json`, `results/lint_findings.json`, JSON
//! reports written by the CLI — must survive the writing process dying at
//! any instruction. A plain `File::create` + `write` can be interrupted
//! half-way and leave a truncated file that *looks* like a finished
//! artifact; a resume or a CI diff would then silently consume garbage.
//!
//! [`atomic_write`] provides the classic fix: write the full content to a
//! temporary file in the same directory, `fsync` it, then `rename` it over
//! the destination (and `fsync` the directory so the rename itself is
//! durable). POSIX `rename(2)` is atomic within a filesystem, so readers
//! observe either the complete old file or the complete new file — never a
//! prefix.
//!
//! The `io-confinement` rule of `ocdd-lint` confines direct file-creation
//! APIs (`File::create`, `fs::write`, `OpenOptions`) to this crate, so a
//! determinism/durability audit has exactly one write path to review.

#![deny(missing_docs)]

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// The temporary-name suffix used while the content is being staged.
/// Exposed so cleanup logic (and tests) can recognise stragglers left by a
/// crash *between* `write` and `rename` — the only window in which a
/// temporary file can outlive this function.
pub const TMP_SUFFIX: &str = ".atomic-tmp";

/// Build the staging path for `path`: same directory, file name extended
/// with the process id and [`TMP_SUFFIX`] so concurrent writers of the
/// same artifact never collide on the staging file.
fn staging_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".{}{}", std::process::id(), TMP_SUFFIX));
    path.with_file_name(name)
}

/// Atomically replace `path` with `bytes`: stage into a same-directory
/// temporary file, flush it to disk, rename it over `path`, and flush the
/// directory entry. On any error the destination is left untouched (a
/// stale staging file may remain and is ignored by readers).
///
/// Parent directories are created if missing, so callers can write
/// `results/foo.json` without a separate `mkdir -p` step.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = staging_path(path);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        // Durability point 1: the staged content is on disk before the
        // rename can possibly expose it under the destination name.
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        // Durability point 2: the rename itself. Directories cannot be
        // fsync'd on every platform; treat failure to open/sync the
        // directory as best-effort (the rename already happened).
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Ok(dir) = File::open(parent) {
                    let _ = dir.sync_all();
                }
            }
        }
        Ok(())
    })();
    if result.is_err() {
        // Never leave the staging file behind on a failed write.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// [`atomic_write`] for string content.
pub fn atomic_write_str(path: &Path, content: &str) -> io::Result<()> {
    atomic_write(path, content.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ocdd-iosafe-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_fresh_file_and_leaves_no_staging() {
        let dir = tmp_dir("fresh");
        let path = dir.join("artifact.json");
        atomic_write_str(&path, "{\"ok\":true}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"ok\":true}");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(TMP_SUFFIX))
            .collect();
        assert!(leftovers.is_empty(), "staging file must not survive");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replaces_existing_content_atomically() {
        let dir = tmp_dir("replace");
        let path = dir.join("artifact.json");
        atomic_write_str(&path, "old").unwrap();
        atomic_write_str(&path, "new content, longer than before").unwrap();
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            "new content, longer than before"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = tmp_dir("parents");
        let path = dir.join("a/b/c.txt");
        atomic_write(&path, b"deep").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"deep");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn staging_path_is_sibling_of_target() {
        let p = Path::new("/some/dir/file.json");
        let s = staging_path(p);
        assert_eq!(s.parent(), p.parent());
        assert!(s
            .file_name()
            .unwrap()
            .to_string_lossy()
            .ends_with(TMP_SUFFIX));
        assert!(s
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("file.json."));
    }
}
