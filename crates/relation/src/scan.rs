//! Blockwise, branchless adjacent-pair scan kernels — the candidate
//! checker's hot loop (§4.3 of the paper) rewritten for data-level
//! parallelism and cache locality.
//!
//! The scalar checker walks `index.windows(2)` calling
//! [`cmp_rows`] per adjacent pair: one indirect gather and one branchy
//! lexicographic compare per pair per column. The kernels here instead
//! process [`BLOCK_PAIRS`] adjacent pairs at a time:
//!
//! 1. **Gather** the permuted codes of one block into a contiguous
//!    scratch buffer, once per column, reading the narrowest code mirror
//!    the column stores ([`crate::CodeWidth`]) — 4×/2× more codes per
//!    cache line on low-cardinality columns.
//! 2. **Fold** the per-pair comparison state lexicographically across
//!    columns with branchless byte masks: for every pair the block keeps
//!    `{eq, lt, gt}` bytes (`0xFF`/`0x00`), and a column folds in as
//!    `lt |= eq & ~e & ~g; gt |= eq & g; eq &= e`. The loops are written
//!    so LLVM autovectorizes them; the optional `simd` cargo feature
//!    swaps in explicit x86-64 SSE2/AVX2 intrinsics plus software
//!    prefetch on the gathers.
//! 3. **Filter** the block for the first violating pair with word-wide
//!    mask arithmetic. Early exit is per block; the caller preserves the
//!    exact scalar first-witness by classifying (or rescanning) the hit
//!    block scalar-wise.
//!
//! Two scan shapes cover every checker: [`od_scan`] (full OD predicate —
//! `rhs` decreasing, or `lhs`-tied while `rhs` differs) and
//! [`split_scan`] (splits only, for the fused direction check after a
//! validated OCD, where swaps are impossible). Both return the position
//! of the first violating *adjacent pair* and are differentially pinned
//! against the scalar oracles [`od_scan_scalar`] / [`split_scan_scalar`]
//! — same `Option<usize>`, bit for bit, on every width and backend.
//!
//! Beyond-block state convention: a block of `n < BLOCK_PAIRS` live
//! pairs resets `eq` to zero past `n`, so folds always process the full
//! fixed-size arrays (no tail loops — stale scratch past `n` is masked
//! by `eq == 0`) and violation masks are zero past `n` by construction.

use crate::column::NarrowCodes;
use crate::relation::{ColumnId, Relation};
use crate::sort::{cmp_rows, kernel_stats};
use std::cmp::Ordering;

/// Adjacent pairs processed per block: 64 keeps the three per-pair state
/// arrays in exactly three cache lines and makes every violation filter a
/// handful of `u64` words.
pub const BLOCK_PAIRS: usize = 64;

/// How far ahead of the gather cursor the `simd` feature prefetches.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const PREFETCH_AHEAD: usize = 24;

/// An all-zero selection mask: selects no pair.
const ZERO_SEL: [u8; BLOCK_PAIRS] = [0; BLOCK_PAIRS];

/// Which scan-kernel family classified a scan (reported through
/// [`kernel_stats`] and `DiscoveryResult.kernels`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanKernel {
    /// Per-pair `cmp_rows` walk — small inputs and the differential
    /// oracle.
    Scalar,
    /// Blockwise branchless kernels, autovectorized portable Rust.
    Block,
    /// Blockwise kernels with explicit SSE2/AVX2 intrinsics (the `simd`
    /// cargo feature on x86-64).
    Simd,
}

/// The blockwise kernel family this build dispatches to: [`ScanKernel::Simd`]
/// when the `simd` feature is compiled in on x86-64, else
/// [`ScanKernel::Block`].
pub fn block_kernel() -> ScanKernel {
    if cfg!(all(feature = "simd", target_arch = "x86_64")) {
        ScanKernel::Simd
    } else {
        ScanKernel::Block
    }
}

/// Kernel the dispatcher picks for a scan of `pairs` adjacent pairs:
/// scalar below one block (the gather+fold setup doesn't amortize),
/// blockwise otherwise.
pub fn select_kernel(pairs: usize) -> ScanKernel {
    if pairs < BLOCK_PAIRS {
        ScanKernel::Scalar
    } else {
        block_kernel()
    }
}

/// Record one scan in the process-global kernel counters (see
/// [`kernel_stats`]); exposed so the sorted-partition walk in the core
/// crate reports through the same counters.
pub fn note_scan(kernel: ScanKernel) {
    match kernel {
        ScanKernel::Scalar => kernel_stats::bump_scan_scalar(),
        ScanKernel::Block => kernel_stats::bump_scan_block(),
        ScanKernel::Simd => kernel_stats::bump_scan_simd(),
    }
}

/// Per-pair lexicographic comparison state of one block: canonical
/// `0xFF`/`0x00` byte masks, one byte per adjacent pair.
///
/// After folding columns `c₁…cₖ` (in order), pair `i` satisfies exactly
/// one of `eq` (rows equal on all folded columns), `lt` (first row
/// lexicographically smaller) or `gt` (first row larger) — the same
/// verdict [`cmp_rows`] returns, computed branchlessly for the whole
/// block at once.
#[derive(Debug, Clone)]
pub struct BlockLex {
    eq: [u8; BLOCK_PAIRS],
    lt: [u8; BLOCK_PAIRS],
    gt: [u8; BLOCK_PAIRS],
}

impl Default for BlockLex {
    fn default() -> BlockLex {
        BlockLex {
            eq: [0; BLOCK_PAIRS],
            lt: [0; BLOCK_PAIRS],
            gt: [0; BLOCK_PAIRS],
        }
    }
}

impl BlockLex {
    /// Reset for a block of `n` live pairs: the first `n` pairs open
    /// (`eq = 0xFF`), everything past `n` closed so stale scratch can
    /// never surface as a violation.
    pub fn reset(&mut self, n: usize) {
        debug_assert!(n <= BLOCK_PAIRS);
        self.eq = [0; BLOCK_PAIRS];
        for e in self.eq.iter_mut().take(n) {
            *e = 0xFF;
        }
        self.lt = [0; BLOCK_PAIRS];
        self.gt = [0; BLOCK_PAIRS];
    }

    /// Fold one more column into the lexicographic state. `window` holds
    /// the `n + 1` row ids whose `n` adjacent pairs this block compares
    /// (so consecutive windows share their boundary row).
    pub fn fold_column(&mut self, rel: &Relation, col: ColumnId, window: &[u32]) {
        debug_assert!(window.len() >= 2 && window.len() <= BLOCK_PAIRS + 1);
        match rel.narrow_codes(col) {
            NarrowCodes::U8(codes) => {
                let mut buf = [0u8; BLOCK_PAIRS + 1];
                gather_into(codes, window, &mut buf);
                fold_lex_u8(&buf, self);
            }
            NarrowCodes::U16(codes) => {
                let mut buf = [0u16; BLOCK_PAIRS + 1];
                gather_into(codes, window, &mut buf);
                fold_lex_u16(&buf, self);
            }
            NarrowCodes::U32 => {
                let mut buf = [0u32; BLOCK_PAIRS + 1];
                gather_into(rel.codes(col), window, &mut buf);
                fold_lex_u32(&buf, self);
            }
        }
    }

    /// True when no pair is still tied — further columns cannot change
    /// any pair's verdict, so the column fold can stop.
    #[inline]
    pub fn closed(&self) -> bool {
        self.eq == [0; BLOCK_PAIRS]
    }

    /// True when some pair compares strictly less.
    #[inline]
    pub fn lt_any(&self) -> bool {
        self.lt != [0; BLOCK_PAIRS]
    }

    /// True when some pair compares strictly greater.
    #[inline]
    pub fn gt_any(&self) -> bool {
        self.gt != [0; BLOCK_PAIRS]
    }

    /// First pair violating the full OD predicate under the selection
    /// mask `sel`: `gt | (sel & lt)` — a decrease anywhere, or an
    /// increase on a selected (`lhs`-tied / same-class) pair.
    pub fn first_od_violation(&self, sel: &[u8; BLOCK_PAIRS]) -> Option<usize> {
        let mut base = 0;
        for ((g8, l8), s8) in self
            .gt
            .chunks_exact(8)
            .zip(self.lt.chunks_exact(8))
            .zip(sel.chunks_exact(8))
        {
            let v = word64(g8) | (word64(s8) & word64(l8));
            if v != 0 {
                return Some(base + (v.trailing_zeros() as usize) / 8);
            }
            base += 8;
        }
        None
    }

    /// First selected pair that is not tied: `sel & (lt | gt)` — the
    /// split predicate. `sel` must be zero past the live pair count.
    pub fn first_split_violation(&self, sel: &[u8; BLOCK_PAIRS]) -> Option<usize> {
        let mut base = 0;
        for ((g8, l8), s8) in self
            .gt
            .chunks_exact(8)
            .zip(self.lt.chunks_exact(8))
            .zip(sel.chunks_exact(8))
        {
            let v = word64(s8) & (word64(l8) | word64(g8));
            if v != 0 {
                return Some(base + (v.trailing_zeros() as usize) / 8);
            }
            base += 8;
        }
        None
    }
}

/// Per-pair equality state of one block: `0xFF` while the pair's rows
/// are equal on every folded column. The `lhs`-tie mask of the index
/// scans, and the cheap `rhs` state of the split-only scan.
#[derive(Debug, Clone)]
pub struct BlockEq {
    eq: [u8; BLOCK_PAIRS],
}

impl Default for BlockEq {
    fn default() -> BlockEq {
        BlockEq {
            eq: [0; BLOCK_PAIRS],
        }
    }
}

impl BlockEq {
    /// Reset for a block of `n` live pairs (see [`BlockLex::reset`]).
    pub fn reset(&mut self, n: usize) {
        debug_assert!(n <= BLOCK_PAIRS);
        self.eq = [0; BLOCK_PAIRS];
        for e in self.eq.iter_mut().take(n) {
            *e = 0xFF;
        }
    }

    /// Fold one more column's equality into the state.
    pub fn fold_column(&mut self, rel: &Relation, col: ColumnId, window: &[u32]) {
        debug_assert!(window.len() >= 2 && window.len() <= BLOCK_PAIRS + 1);
        match rel.narrow_codes(col) {
            NarrowCodes::U8(codes) => {
                let mut buf = [0u8; BLOCK_PAIRS + 1];
                gather_into(codes, window, &mut buf);
                fold_eq_u8(&buf, self);
            }
            NarrowCodes::U16(codes) => {
                let mut buf = [0u16; BLOCK_PAIRS + 1];
                gather_into(codes, window, &mut buf);
                fold_eq_u16(&buf, self);
            }
            NarrowCodes::U32 => {
                let mut buf = [0u32; BLOCK_PAIRS + 1];
                gather_into(rel.codes(col), window, &mut buf);
                fold_eq_u32(&buf, self);
            }
        }
    }

    /// True when no pair is still fully tied.
    #[inline]
    pub fn none(&self) -> bool {
        self.eq == [0; BLOCK_PAIRS]
    }

    /// The equality mask, usable as a selection mask for [`BlockLex`]
    /// filters (zero past the live pair count by the reset convention).
    #[inline]
    pub fn mask(&self) -> &[u8; BLOCK_PAIRS] {
        &self.eq
    }

    /// First pair selected by `sel` whose rows are *not* tied on the
    /// folded columns: `sel & !eq`. `sel` must be zero past the live
    /// pair count.
    pub fn first_unequal(&self, sel: &[u8; BLOCK_PAIRS]) -> Option<usize> {
        let mut base = 0;
        for (e8, s8) in self.eq.chunks_exact(8).zip(sel.chunks_exact(8)) {
            let v = word64(s8) & !word64(e8);
            if v != 0 {
                return Some(base + (v.trailing_zeros() as usize) / 8);
            }
            base += 8;
        }
        None
    }
}

/// Assemble 8 mask bytes into one `u64`, first byte in the low bits (so
/// `trailing_zeros() / 8` is the first set byte's index regardless of
/// platform endianness). LLVM folds this to a single load.
#[inline]
fn word64(bytes: &[u8]) -> u64 {
    let mut w = 0u64;
    for (k, &b) in bytes.iter().enumerate() {
        w |= u64::from(b) << (8 * k);
    }
    w
}

/// Gather `codes[row]` for every row of `window` into the front of
/// `buf`. With the `simd` feature the gather runs `PREFETCH_AHEAD` rows
/// of software prefetch ahead of the cursor.
#[inline]
fn gather_into<T: Copy>(codes: &[T], window: &[u32], buf: &mut [T; BLOCK_PAIRS + 1]) {
    for (k, (slot, &row)) in buf.iter_mut().zip(window).enumerate() {
        prefetch_ahead(codes, window, k);
        // lint: allow(panic-reachability, window rows come from a permutation/partition of the same relation, so row < codes.len())
        *slot = codes[row as usize];
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn prefetch_ahead<T>(codes: &[T], window: &[u32], k: usize) {
    if let Some(&ahead) = window.get(k + PREFETCH_AHEAD) {
        simd::prefetch(codes, ahead as usize);
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn prefetch_ahead<T>(_codes: &[T], _window: &[u32], _k: usize) {}

/// Portable branchless lexicographic fold: for each adjacent pair
/// `(buf[i], buf[i+1])` update `{eq, lt, gt}` byte masks. Pure byte
/// arithmetic over fixed-size slices, written for autovectorization.
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn fold_lex_portable<T: Copy + Ord>(buf: &[T], eq: &mut [u8], lt: &mut [u8], gt: &mut [u8]) {
    let Some((_, hi)) = buf.split_first() else {
        return;
    };
    for ((&a, &b), ((e, l), g)) in buf
        .iter()
        .zip(hi)
        .zip(eq.iter_mut().zip(lt.iter_mut()).zip(gt.iter_mut()))
    {
        let em = 0u8.wrapping_sub(u8::from(a == b));
        let gm = 0u8.wrapping_sub(u8::from(a > b));
        let open = *e;
        *l |= open & !em & !gm;
        *g |= open & gm;
        *e = open & em;
    }
}

/// Portable equality-only fold (see `fold_lex_portable`).
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline]
fn fold_eq_portable<T: Copy + Eq>(buf: &[T], eq: &mut [u8]) {
    let Some((_, hi)) = buf.split_first() else {
        return;
    };
    for ((&a, &b), e) in buf.iter().zip(hi).zip(eq.iter_mut()) {
        *e &= 0u8.wrapping_sub(u8::from(a == b));
    }
}

macro_rules! width_folds {
    ($fold_lex:ident, $fold_eq:ident, $ty:ty) => {
        #[inline]
        fn $fold_lex(buf: &[$ty; BLOCK_PAIRS + 1], st: &mut BlockLex) {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            simd::$fold_lex(buf, st);
            #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
            fold_lex_portable(buf, &mut st.eq, &mut st.lt, &mut st.gt);
        }

        #[inline]
        fn $fold_eq(buf: &[$ty; BLOCK_PAIRS + 1], st: &mut BlockEq) {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            simd::$fold_eq(buf, st);
            #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
            fold_eq_portable(buf, &mut st.eq);
        }
    };
}

width_folds!(fold_lex_u8, fold_eq_u8, u8);
width_folds!(fold_lex_u16, fold_eq_u16, u16);
width_folds!(fold_lex_u32, fold_eq_u32, u32);

/// Position of the first adjacent pair of `index` (pre-sorted by `lhs`)
/// violating the OD `lhs → rhs`: the pair decreases on `rhs`, or is tied
/// on `lhs` while changing on `rhs`. `None` when the OD holds.
///
/// Dispatches per [`select_kernel`]; byte-identical to
/// [`od_scan_scalar`] on every input.
pub fn od_scan(rel: &Relation, lhs: &[ColumnId], rhs: &[ColumnId], index: &[u32]) -> Option<usize> {
    if index.len() < 2 {
        note_scan(ScanKernel::Scalar);
        return None;
    }
    match select_kernel(index.len() - 1) {
        ScanKernel::Scalar => od_scan_scalar(rel, lhs, rhs, index),
        k => {
            note_scan(k);
            od_scan_blocks(rel, lhs, rhs, index)
        }
    }
}

/// Position of the first adjacent pair of `index` (pre-sorted by `lhs`)
/// that is tied on `lhs` but differs on `rhs` — the split-only scan of
/// the fused direction check (sound as a full OD check only when a swap
/// is impossible). `None` when no split exists.
///
/// Dispatches per [`select_kernel`]; byte-identical to
/// [`split_scan_scalar`] on every input.
pub fn split_scan(
    rel: &Relation,
    lhs: &[ColumnId],
    rhs: &[ColumnId],
    index: &[u32],
) -> Option<usize> {
    if index.len() < 2 {
        note_scan(ScanKernel::Scalar);
        return None;
    }
    match select_kernel(index.len() - 1) {
        ScanKernel::Scalar => split_scan_scalar(rel, lhs, rhs, index),
        k => {
            note_scan(k);
            split_scan_blocks(rel, lhs, rhs, index)
        }
    }
}

/// Scalar oracle for [`od_scan`]: the per-pair `cmp_rows` walk, kept as
/// the differential reference (and the small-input kernel). The index is
/// `lhs`-sorted, so `lhs` can never compare `Greater` across an adjacent
/// pair — a decreasing `rhs` therefore violates regardless of `lhs`, and
/// an increasing `rhs` violates exactly when `lhs` is tied.
// lint: allow(panic-reachability, w[0]/w[1] index length-2 slices produced by windows(2))
pub fn od_scan_scalar(
    rel: &Relation,
    lhs: &[ColumnId],
    rhs: &[ColumnId],
    index: &[u32],
) -> Option<usize> {
    note_scan(ScanKernel::Scalar);
    for (i, w) in index.windows(2).enumerate() {
        let (p, q) = (w[0] as usize, w[1] as usize);
        match cmp_rows(rel, rhs, p, q) {
            Ordering::Equal => {}
            Ordering::Greater => return Some(i),
            Ordering::Less => {
                let lhs_ord = cmp_rows(rel, lhs, p, q);
                debug_assert_ne!(lhs_ord, Ordering::Greater, "index must be lhs-sorted");
                if lhs_ord == Ordering::Equal {
                    return Some(i);
                }
            }
        }
    }
    None
}

/// Scalar oracle for [`split_scan`].
// lint: allow(panic-reachability, w[0]/w[1] index length-2 slices produced by windows(2))
pub fn split_scan_scalar(
    rel: &Relation,
    lhs: &[ColumnId],
    rhs: &[ColumnId],
    index: &[u32],
) -> Option<usize> {
    note_scan(ScanKernel::Scalar);
    for (i, w) in index.windows(2).enumerate() {
        let (p, q) = (w[0] as usize, w[1] as usize);
        if cmp_rows(rel, lhs, p, q) == Ordering::Equal
            && cmp_rows(rel, rhs, p, q) != Ordering::Equal
        {
            return Some(i);
        }
    }
    None
}

/// Blockwise [`od_scan`]: per block, fold the `rhs` lexicographic state
/// (stopping as soon as no pair stays tied), fold the `lhs` tie mask
/// only when some pair increased on `rhs`, then filter
/// `gt | (lhs_eq & lt)` for the first violation.
// lint: allow(panic-reachability, start + n ≤ index.len() - 1 by the loop bound, so the window slice is in bounds)
fn od_scan_blocks(
    rel: &Relation,
    lhs: &[ColumnId],
    rhs: &[ColumnId],
    index: &[u32],
) -> Option<usize> {
    let total = index.len() - 1;
    let mut rhs_lex = BlockLex::default();
    let mut lhs_eq = BlockEq::default();
    let mut start = 0usize;
    while start < total {
        let n = (total - start).min(BLOCK_PAIRS);
        let window = &index[start..=start + n];
        rhs_lex.reset(n);
        for &c in rhs {
            if rel.meta(c).is_constant() {
                continue; // folds all-Equal: a no-op on the state
            }
            rhs_lex.fold_column(rel, c, window);
            if rhs_lex.closed() {
                break; // no tie left: later columns cannot matter
            }
        }
        if rhs_lex.lt_any() {
            lhs_eq.reset(n);
            for &c in lhs {
                if rel.meta(c).is_constant() {
                    continue;
                }
                lhs_eq.fold_column(rel, c, window);
                if lhs_eq.none() {
                    break;
                }
            }
            if let Some(i) = rhs_lex.first_od_violation(lhs_eq.mask()) {
                return Some(start + i);
            }
        } else if rhs_lex.gt_any() {
            if let Some(i) = rhs_lex.first_od_violation(&ZERO_SEL) {
                return Some(start + i);
            }
        }
        start += n;
    }
    None
}

/// Blockwise [`split_scan`]: fold the `lhs` tie mask first — when no
/// pair of the block is `lhs`-tied (key-like prefixes), the `rhs`
/// gathers are skipped entirely.
// lint: allow(panic-reachability, start + n ≤ index.len() - 1 by the loop bound, so the window slice is in bounds)
fn split_scan_blocks(
    rel: &Relation,
    lhs: &[ColumnId],
    rhs: &[ColumnId],
    index: &[u32],
) -> Option<usize> {
    let total = index.len() - 1;
    let mut lhs_eq = BlockEq::default();
    let mut rhs_eq = BlockEq::default();
    let mut start = 0usize;
    while start < total {
        let n = (total - start).min(BLOCK_PAIRS);
        let window = &index[start..=start + n];
        lhs_eq.reset(n);
        for &c in lhs {
            if rel.meta(c).is_constant() {
                continue;
            }
            lhs_eq.fold_column(rel, c, window);
            if lhs_eq.none() {
                break;
            }
        }
        if !lhs_eq.none() {
            rhs_eq.reset(n);
            for &c in rhs {
                if rel.meta(c).is_constant() {
                    continue;
                }
                rhs_eq.fold_column(rel, c, window);
                if rhs_eq.none() {
                    break; // every pair already differs somewhere on rhs
                }
            }
            if let Some(i) = rhs_eq.first_unequal(lhs_eq.mask()) {
                return Some(start + i);
            }
        }
        start += n;
    }
    None
}

/// Explicit x86-64 SSE2/AVX2 kernels (the `simd` cargo feature).
///
/// This is the one module of the crate allowed to contain `unsafe`: the
/// crate-level lint is relaxed from the workspace `forbid` to `deny`
/// precisely so this allow can exist, and every unsafe block's contract
/// is either "SSE2 is part of the x86-64 baseline ABI" (no runtime
/// detection needed) or "AVX2 was runtime-detected". All loads/stores
/// are unaligned (`loadu`/`storeu`) over fixed-size arrays whose bounds
/// the offsets respect by construction (`BLOCK_PAIRS + 1` scratch, 4×16
/// or 2×32 lane tiles).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod simd {
    use super::{BlockEq, BlockLex, BLOCK_PAIRS};
    use core::arch::x86_64::{
        __m128i, __m256i, _mm256_and_si256, _mm256_andnot_si256, _mm256_cmpeq_epi8,
        _mm256_loadu_si256, _mm256_max_epu8, _mm256_or_si256, _mm256_set1_epi8,
        _mm256_storeu_si256, _mm_and_si128, _mm_andnot_si128, _mm_cmpeq_epi16, _mm_cmpeq_epi32,
        _mm_cmpeq_epi8, _mm_cmpgt_epi16, _mm_cmpgt_epi32, _mm_loadu_si128, _mm_max_epu8,
        _mm_or_si128, _mm_packs_epi16, _mm_packs_epi32, _mm_prefetch, _mm_set1_epi16,
        _mm_set1_epi32, _mm_set1_epi8, _mm_storeu_si128, _mm_xor_si128, _MM_HINT_T0,
    };
    use std::arch::is_x86_feature_detected;

    /// Prefetch the cache line holding `codes[idx]` (T0 hint). The
    /// bounds check keeps the pointer inside the allocation; prefetch
    /// dereferences nothing, so the hint itself cannot fault.
    #[inline]
    pub(super) fn prefetch<T>(codes: &[T], idx: usize) {
        if let Some(p) = codes.get(idx) {
            // SAFETY: `p` is a valid reference and `_mm_prefetch` only
            // hints the cache — no memory access is performed. SSE is in
            // the x86-64 baseline.
            unsafe { _mm_prefetch::<_MM_HINT_T0>((p as *const T).cast()) }
        }
    }

    pub(super) fn fold_lex_u8(buf: &[u8; BLOCK_PAIRS + 1], st: &mut BlockLex) {
        if is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 was runtime-detected on this CPU.
            unsafe { fold_lex_u8_avx2(buf, st) }
        } else {
            // SAFETY: SSE2 is part of the x86-64 baseline ABI.
            unsafe { fold_lex_u8_sse2(buf, st) }
        }
    }

    pub(super) fn fold_lex_u16(buf: &[u16; BLOCK_PAIRS + 1], st: &mut BlockLex) {
        // SAFETY: SSE2 is part of the x86-64 baseline ABI.
        unsafe { fold_lex_u16_sse2(buf, st) }
    }

    pub(super) fn fold_lex_u32(buf: &[u32; BLOCK_PAIRS + 1], st: &mut BlockLex) {
        // SAFETY: SSE2 is part of the x86-64 baseline ABI.
        unsafe { fold_lex_u32_sse2(buf, st) }
    }

    pub(super) fn fold_eq_u8(buf: &[u8; BLOCK_PAIRS + 1], st: &mut BlockEq) {
        // SAFETY: SSE2 is part of the x86-64 baseline ABI.
        unsafe { fold_eq_u8_sse2(buf, st) }
    }

    pub(super) fn fold_eq_u16(buf: &[u16; BLOCK_PAIRS + 1], st: &mut BlockEq) {
        // SAFETY: SSE2 is part of the x86-64 baseline ABI.
        unsafe { fold_eq_u16_sse2(buf, st) }
    }

    pub(super) fn fold_eq_u32(buf: &[u32; BLOCK_PAIRS + 1], st: &mut BlockEq) {
        // SAFETY: SSE2 is part of the x86-64 baseline ABI.
        unsafe { fold_eq_u32_sse2(buf, st) }
    }

    /// Fold 16 byte-wide pair verdicts `(e, g)` at byte offset `off`
    /// into the block state: `lt |= eq & ~e & ~g; gt |= eq & g; eq &= e`.
    ///
    /// SAFETY (callers): `off + 16 ≤ BLOCK_PAIRS` so every unaligned
    /// load/store stays inside the state arrays.
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn update16(st: &mut BlockLex, off: usize, e: __m128i, g: __m128i) {
        let pe: *mut __m128i = st.eq.as_mut_ptr().add(off).cast();
        let pl: *mut __m128i = st.lt.as_mut_ptr().add(off).cast();
        let pg: *mut __m128i = st.gt.as_mut_ptr().add(off).cast();
        let open = _mm_loadu_si128(pe.cast_const());
        let l = _mm_andnot_si128(g, _mm_andnot_si128(e, _mm_set1_epi8(-1)));
        _mm_storeu_si128(
            pl,
            _mm_or_si128(_mm_loadu_si128(pl.cast_const()), _mm_and_si128(open, l)),
        );
        _mm_storeu_si128(
            pg,
            _mm_or_si128(_mm_loadu_si128(pg.cast_const()), _mm_and_si128(open, g)),
        );
        _mm_storeu_si128(pe, _mm_and_si128(open, e));
    }

    /// SAFETY (callers): requires SSE2 (x86-64 baseline).
    #[target_feature(enable = "sse2")]
    unsafe fn fold_lex_u8_sse2(buf: &[u8; BLOCK_PAIRS + 1], st: &mut BlockLex) {
        let p = buf.as_ptr();
        for blk in 0..4 {
            let off = blk * 16;
            // Reads offsets off..off+16 and off+1..off+17 ≤ 65: in bounds.
            let a = _mm_loadu_si128(p.add(off).cast());
            let b = _mm_loadu_si128(p.add(off + 1).cast());
            let e = _mm_cmpeq_epi8(a, b);
            // Unsigned a > b ⟺ a == max(a,b) and a != b.
            let g = _mm_andnot_si128(e, _mm_cmpeq_epi8(_mm_max_epu8(a, b), a));
            update16(st, off, e, g);
        }
    }

    /// SAFETY (callers): requires AVX2 (runtime-detected).
    #[target_feature(enable = "avx2")]
    unsafe fn fold_lex_u8_avx2(buf: &[u8; BLOCK_PAIRS + 1], st: &mut BlockLex) {
        let p = buf.as_ptr();
        for blk in 0..2 {
            let off = blk * 32;
            // Reads offsets off..off+32 and off+1..off+33 ≤ 65: in bounds.
            let a = _mm256_loadu_si256(p.add(off).cast());
            let b = _mm256_loadu_si256(p.add(off + 1).cast());
            let e = _mm256_cmpeq_epi8(a, b);
            let g = _mm256_andnot_si256(e, _mm256_cmpeq_epi8(_mm256_max_epu8(a, b), a));
            let pe: *mut __m256i = st.eq.as_mut_ptr().add(off).cast();
            let pl: *mut __m256i = st.lt.as_mut_ptr().add(off).cast();
            let pg: *mut __m256i = st.gt.as_mut_ptr().add(off).cast();
            let open = _mm256_loadu_si256(pe.cast_const());
            let l = _mm256_andnot_si256(g, _mm256_andnot_si256(e, _mm256_set1_epi8(-1)));
            _mm256_storeu_si256(
                pl,
                _mm256_or_si256(
                    _mm256_loadu_si256(pl.cast_const()),
                    _mm256_and_si256(open, l),
                ),
            );
            _mm256_storeu_si256(
                pg,
                _mm256_or_si256(
                    _mm256_loadu_si256(pg.cast_const()),
                    _mm256_and_si256(open, g),
                ),
            );
            _mm256_storeu_si256(pe, _mm256_and_si256(open, e));
        }
    }

    /// SAFETY (callers): requires SSE2 (x86-64 baseline).
    #[target_feature(enable = "sse2")]
    unsafe fn fold_lex_u16_sse2(buf: &[u16; BLOCK_PAIRS + 1], st: &mut BlockLex) {
        let p = buf.as_ptr();
        // SSE2 has no unsigned 16-bit compare: flip the sign bit and use
        // the signed one. Two 8-lane tiles pack to 16 byte verdicts.
        let bias = _mm_set1_epi16(i16::MIN);
        for blk in 0..4 {
            let off = blk * 16;
            // Reads elements up to off+9+8 = 65: in bounds.
            let a0 = _mm_loadu_si128(p.add(off).cast());
            let b0 = _mm_loadu_si128(p.add(off + 1).cast());
            let a1 = _mm_loadu_si128(p.add(off + 8).cast());
            let b1 = _mm_loadu_si128(p.add(off + 9).cast());
            let e = _mm_packs_epi16(_mm_cmpeq_epi16(a0, b0), _mm_cmpeq_epi16(a1, b1));
            let g0 = _mm_cmpgt_epi16(_mm_xor_si128(a0, bias), _mm_xor_si128(b0, bias));
            let g1 = _mm_cmpgt_epi16(_mm_xor_si128(a1, bias), _mm_xor_si128(b1, bias));
            let g = _mm_packs_epi16(g0, g1);
            update16(st, off, e, g);
        }
    }

    /// Compare 4 `u32` pairs starting at element `off`: `(eq, gt)` lane
    /// masks. SAFETY (callers): SSE2, and `off + 5 ≤ BLOCK_PAIRS - 3`
    /// so both loads stay inside the 65-element buffer.
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn cmp4_u32(p: *const u32, off: usize, bias: __m128i) -> (__m128i, __m128i) {
        let a = _mm_loadu_si128(p.add(off).cast());
        let b = _mm_loadu_si128(p.add(off + 1).cast());
        (
            _mm_cmpeq_epi32(a, b),
            _mm_cmpgt_epi32(_mm_xor_si128(a, bias), _mm_xor_si128(b, bias)),
        )
    }

    /// SAFETY (callers): requires SSE2 (x86-64 baseline).
    #[target_feature(enable = "sse2")]
    unsafe fn fold_lex_u32_sse2(buf: &[u32; BLOCK_PAIRS + 1], st: &mut BlockLex) {
        let p = buf.as_ptr();
        let bias = _mm_set1_epi32(i32::MIN);
        for blk in 0..4 {
            let off = blk * 16;
            // Reads elements up to off+12+1+4 = 65: in bounds.
            let (e0, g0) = cmp4_u32(p, off, bias);
            let (e1, g1) = cmp4_u32(p, off + 4, bias);
            let (e2, g2) = cmp4_u32(p, off + 8, bias);
            let (e3, g3) = cmp4_u32(p, off + 12, bias);
            // packs saturates -1 → -1 and 0 → 0, so the canonical masks
            // survive the 32→16→8 narrowing in lane order.
            let e = _mm_packs_epi16(_mm_packs_epi32(e0, e1), _mm_packs_epi32(e2, e3));
            let g = _mm_packs_epi16(_mm_packs_epi32(g0, g1), _mm_packs_epi32(g2, g3));
            update16(st, off, e, g);
        }
    }

    /// SAFETY (callers): `off + 16 ≤ BLOCK_PAIRS`, SSE2.
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn update_eq16(st: &mut BlockEq, off: usize, e: __m128i) {
        let pe: *mut __m128i = st.eq.as_mut_ptr().add(off).cast();
        _mm_storeu_si128(pe, _mm_and_si128(_mm_loadu_si128(pe.cast_const()), e));
    }

    /// SAFETY (callers): requires SSE2 (x86-64 baseline).
    #[target_feature(enable = "sse2")]
    unsafe fn fold_eq_u8_sse2(buf: &[u8; BLOCK_PAIRS + 1], st: &mut BlockEq) {
        let p = buf.as_ptr();
        for blk in 0..4 {
            let off = blk * 16;
            let a = _mm_loadu_si128(p.add(off).cast());
            let b = _mm_loadu_si128(p.add(off + 1).cast());
            update_eq16(st, off, _mm_cmpeq_epi8(a, b));
        }
    }

    /// SAFETY (callers): requires SSE2 (x86-64 baseline).
    #[target_feature(enable = "sse2")]
    unsafe fn fold_eq_u16_sse2(buf: &[u16; BLOCK_PAIRS + 1], st: &mut BlockEq) {
        let p = buf.as_ptr();
        for blk in 0..4 {
            let off = blk * 16;
            let e0 = _mm_cmpeq_epi16(
                _mm_loadu_si128(p.add(off).cast()),
                _mm_loadu_si128(p.add(off + 1).cast()),
            );
            let e1 = _mm_cmpeq_epi16(
                _mm_loadu_si128(p.add(off + 8).cast()),
                _mm_loadu_si128(p.add(off + 9).cast()),
            );
            update_eq16(st, off, _mm_packs_epi16(e0, e1));
        }
    }

    /// SAFETY (callers): requires SSE2 (x86-64 baseline).
    #[target_feature(enable = "sse2")]
    unsafe fn fold_eq_u32_sse2(buf: &[u32; BLOCK_PAIRS + 1], st: &mut BlockEq) {
        let p = buf.as_ptr();
        for blk in 0..4 {
            let off = blk * 16;
            let eq4 = |o: usize| {
                // SAFETY: same bounds as the caller tile; SSE2 enabled in
                // the enclosing target_feature scope.
                unsafe {
                    _mm_cmpeq_epi32(
                        _mm_loadu_si128(p.add(o).cast()),
                        _mm_loadu_si128(p.add(o + 1).cast()),
                    )
                }
            };
            let e = _mm_packs_epi16(
                _mm_packs_epi32(eq4(off), eq4(off + 4)),
                _mm_packs_epi32(eq4(off + 8), eq4(off + 12)),
            );
            update_eq16(st, off, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::CodeWidth;
    use crate::relation::Relation;
    use crate::sort::sort_index_by;
    use crate::value::Value;
    use proptest::prelude::*;

    /// Relation from integer columns (equal lengths).
    fn rel_from(cols: Vec<Vec<i64>>) -> Relation {
        let named = cols
            .into_iter()
            .enumerate()
            .map(|(i, vals)| {
                (
                    format!("c{i}"),
                    vals.into_iter().map(Value::Int).collect::<Vec<Value>>(),
                )
            })
            .collect();
        Relation::from_columns(named).unwrap()
    }

    /// Run the blockwise scans directly (bypassing the small-input
    /// dispatch) and assert they match the scalar oracles exactly,
    /// at the relation's natural width and after widening.
    fn assert_blocks_match_scalar(rel: &Relation, lhs: &[ColumnId], rhs: &[ColumnId]) {
        let index = sort_index_by(rel, lhs);
        if index.is_empty() {
            return;
        }
        let od_oracle = od_scan_scalar(rel, lhs, rhs, &index);
        let split_oracle = split_scan_scalar(rel, lhs, rhs, &index);
        for min in [CodeWidth::U8, CodeWidth::U16, CodeWidth::U32] {
            let mut r = rel.clone();
            r.widen_code_width(min);
            assert_eq!(
                od_scan_blocks(&r, lhs, rhs, &index),
                od_oracle,
                "od blocks vs scalar diverge at width >= {}",
                min.label()
            );
            assert_eq!(
                split_scan_blocks(&r, lhs, rhs, &index),
                split_oracle,
                "split blocks vs scalar diverge at width >= {}",
                min.label()
            );
        }
        // The public dispatch must agree with the oracle too.
        assert_eq!(od_scan(rel, lhs, rhs, &index), od_oracle);
        assert_eq!(split_scan(rel, lhs, rhs, &index), split_oracle);
    }

    #[test]
    fn dispatch_thresholds() {
        assert_eq!(select_kernel(0), ScanKernel::Scalar);
        assert_eq!(select_kernel(BLOCK_PAIRS - 1), ScanKernel::Scalar);
        assert_eq!(select_kernel(BLOCK_PAIRS), block_kernel());
        assert_eq!(select_kernel(1_000_000), block_kernel());
        if cfg!(all(feature = "simd", target_arch = "x86_64")) {
            assert_eq!(block_kernel(), ScanKernel::Simd);
        } else {
            assert_eq!(block_kernel(), ScanKernel::Block);
        }
    }

    #[test]
    fn scans_bump_kernel_counters() {
        let rel = rel_from(vec![(0..200).collect(), (0..200).collect()]);
        let index = sort_index_by(&rel, &[0]);
        let before = kernel_stats::snapshot();
        assert_eq!(od_scan(&rel, &[0], &[1], &index), None);
        let delta = kernel_stats::snapshot().since(&before);
        assert_eq!(delta.total_scans(), 1);
        assert_eq!(delta.scan_scalar, 0, "200 rows must dispatch blockwise");
    }

    #[test]
    fn all_ties_hold() {
        let n = 150;
        let rel = rel_from(vec![vec![7; n], vec![3; n]]);
        assert_blocks_match_scalar(&rel, &[0], &[1]);
        let index = sort_index_by(&rel, &[0]);
        assert_eq!(od_scan_blocks(&rel, &[0], &[1], &index), None);
        assert_eq!(split_scan_blocks(&rel, &[0], &[1], &index), None);
    }

    #[test]
    fn all_distinct_monotone_holds() {
        let n = 150;
        let rel = rel_from(vec![(0..n).collect(), (0..n).collect()]);
        let index = sort_index_by(&rel, &[0]);
        assert_eq!(od_scan_blocks(&rel, &[0], &[1], &index), None);
        assert_blocks_match_scalar(&rel, &[0], &[1]);
    }

    #[test]
    fn single_split_pinned_at_block_boundaries() {
        let n = 200i64;
        for p in [0usize, 1, 62, 63, 64, 65, 127, 128, 129, 198] {
            // lhs constant, rhs steps once: first differing adjacent
            // pair is exactly p, and it is lhs-tied -> a split.
            let rhs: Vec<i64> = (0..n).map(|i| i64::from(i as usize > p)).collect();
            let rel = rel_from(vec![vec![1; n as usize], rhs]);
            let index = sort_index_by(&rel, &[0]);
            assert_eq!(od_scan_blocks(&rel, &[0], &[1], &index), Some(p), "p={p}");
            assert_eq!(
                split_scan_blocks(&rel, &[0], &[1], &index),
                Some(p),
                "p={p}"
            );
            assert_blocks_match_scalar(&rel, &[0], &[1]);
        }
    }

    #[test]
    fn single_swap_pinned_at_block_boundaries() {
        let n = 200usize;
        for p in [0usize, 62, 63, 64, 65, 127, 128, 129, 198] {
            // lhs strictly increasing, rhs dips once between rows p and
            // p+1: the only violating pair is p (a swap, not a split).
            let rhs: Vec<i64> = (0..n)
                .map(|i| {
                    if i == p + 1 {
                        2 * i as i64 - 3
                    } else {
                        2 * i as i64
                    }
                })
                .collect();
            let rel = rel_from(vec![(0..n as i64).collect(), rhs]);
            let index = sort_index_by(&rel, &[0]);
            assert_eq!(od_scan_blocks(&rel, &[0], &[1], &index), Some(p), "p={p}");
            // No lhs tie anywhere: the split-only scan sees nothing.
            assert_eq!(split_scan_blocks(&rel, &[0], &[1], &index), None, "p={p}");
            assert_blocks_match_scalar(&rel, &[0], &[1]);
        }
    }

    #[test]
    fn ragged_tail_lengths() {
        // Lengths around the block size: the final ragged block must
        // mask its dead lanes, never reporting phantom violations.
        for n in [1usize, 2, 63, 64, 65, 66, 127, 128, 129, 190] {
            let rel = rel_from(vec![vec![5; n], (0..n as i64).rev().collect()]);
            let index = sort_index_by(&rel, &[0]);
            let expect = if n >= 2 { Some(0) } else { None };
            assert_eq!(od_scan_blocks(&rel, &[0], &[1], &index), expect, "n={n}");
            assert_blocks_match_scalar(&rel, &[0], &[1]);
        }
    }

    #[test]
    fn violation_in_final_ragged_block() {
        // 130 rows = two full blocks + a 1-pair tail; the split sits in
        // the tail.
        let n = 130usize;
        let mut rhs = vec![0i64; n];
        rhs[n - 1] = 1;
        let rel = rel_from(vec![vec![1; n], rhs]);
        let index = sort_index_by(&rel, &[0]);
        assert_eq!(od_scan_blocks(&rel, &[0], &[1], &index), Some(n - 2));
        assert_eq!(split_scan_blocks(&rel, &[0], &[1], &index), Some(n - 2));
        assert_blocks_match_scalar(&rel, &[0], &[1]);
    }

    #[test]
    fn natural_u16_width_kernels() {
        // 300 distinct values -> natural u16 mirror exercises the u16
        // gathers and folds without any widening.
        let n = 900usize;
        let vals: Vec<i64> = (0..n as i64).map(|i| i % 300).collect();
        let rel = rel_from(vec![vals.clone(), vals]);
        assert_eq!(rel.code_width(0), CodeWidth::U16);
        assert_blocks_match_scalar(&rel, &[0], &[1]);
    }

    #[test]
    fn multi_column_lists_with_constants_and_duplicates() {
        let n = 180usize;
        let a: Vec<i64> = (0..n as i64).map(|i| i % 3).collect();
        let b: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 5).collect();
        let c = vec![9i64; n]; // constant
        let d: Vec<i64> = (0..n as i64).map(|i| (i * 13) % 11).collect();
        let rel = rel_from(vec![a, b, c, d]);
        for (lhs, rhs) in [
            (vec![0], vec![1]),
            (vec![0, 1], vec![3]),
            (vec![0, 2], vec![2, 3]), // constant on both sides
            (vec![0, 1, 3], vec![3, 1, 0]),
            (vec![1, 1], vec![3, 3]), // duplicate columns
        ] {
            assert_blocks_match_scalar(&rel, &lhs, &rhs);
        }
    }

    /// Derive three correlated columns from one random word stream:
    /// tie-heavy (mod 3), mid-cardinality (mod 7) and spread (mod 1000).
    fn columns_from_words(words: &[u64]) -> Relation {
        let a = words.iter().map(|&w| (w % 3) as i64).collect();
        let b = words.iter().map(|&w| ((w >> 8) % 7) as i64).collect();
        let c = words.iter().map(|&w| ((w >> 16) % 1000) as i64).collect();
        rel_from(vec![a, b, c])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn differential_random_columns(words in prop::collection::vec(0u64..u64::MAX, 1..220)) {
            let rel = columns_from_words(&words);
            for (lhs, rhs) in [
                (vec![0], vec![1]),
                (vec![0], vec![2]),
                (vec![2], vec![0]),
                (vec![0, 1], vec![2]),
                (vec![0, 1, 2], vec![2, 1, 0]),
            ] {
                let index = sort_index_by(&rel, &lhs);
                let od_oracle = od_scan_scalar(&rel, &lhs, &rhs, &index);
                let split_oracle = split_scan_scalar(&rel, &lhs, &rhs, &index);
                prop_assert_eq!(od_scan_blocks(&rel, &lhs, &rhs, &index), od_oracle);
                prop_assert_eq!(split_scan_blocks(&rel, &lhs, &rhs, &index), split_oracle);
            }
        }

        #[test]
        fn differential_width_sweep(words in prop::collection::vec(0u64..u64::MAX, 65..200)) {
            let rel = columns_from_words(&words);
            let (lhs, rhs) = (vec![0], vec![1, 2]);
            let index = sort_index_by(&rel, &lhs);
            let od_oracle = od_scan_scalar(&rel, &lhs, &rhs, &index);
            let split_oracle = split_scan_scalar(&rel, &lhs, &rhs, &index);
            for min in [CodeWidth::U8, CodeWidth::U16, CodeWidth::U32] {
                let mut r = rel.clone();
                r.widen_code_width(min);
                prop_assert_eq!(od_scan_blocks(&r, &lhs, &rhs, &index), od_oracle);
                prop_assert_eq!(split_scan_blocks(&r, &lhs, &rhs, &index), split_oracle);
            }
        }

        #[test]
        fn differential_tie_heavy_binary(bits in prop::collection::vec(0u64..4, 64..200)) {
            // Near-all-ties data: long eq runs stress the fold early
            // exits and the first-violation word filters.
            let a: Vec<i64> = bits.iter().map(|&b| i64::from(b == 0)).collect();
            let b: Vec<i64> = bits.iter().map(|&b| i64::from(b <= 1)).collect();
            let rel = rel_from(vec![a, b]);
            let index = sort_index_by(&rel, &[0]);
            prop_assert_eq!(
                od_scan_blocks(&rel, &[0], &[1], &index),
                od_scan_scalar(&rel, &[0], &[1], &index)
            );
            prop_assert_eq!(
                split_scan_blocks(&rel, &[0], &[1], &index),
                split_scan_scalar(&rel, &[0], &[1], &index)
            );
        }
    }
}
