//! Minimal CSV reader/writer (RFC-4180 subset) — no external dependency.
//!
//! Supports quoted fields with embedded separators, quotes (`""` escape) and
//! newlines; configurable separator and NULL tokens; optional header row.

use crate::datatype::TypingMode;
use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::value::Value;
use std::io::Read;
use std::path::Path;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Whether the first record is a header of column names (default true;
    /// otherwise columns are named `col0`, `col1`, ...).
    pub has_header: bool,
    /// Tokens parsed as NULL (default: empty string, `?`, `NULL`).
    pub null_tokens: Vec<String>,
    /// Typing mode applied when building the relation.
    pub typing: TypingMode,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            separator: ',',
            has_header: true,
            null_tokens: vec![String::new(), "?".to_owned(), "NULL".to_owned()],
            typing: TypingMode::Infer,
        }
    }
}

/// Split raw CSV text into records of string fields.
fn parse_records(text: &str, sep: char) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;

    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(Error::Csv {
                            line,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                '\r' => {} // tolerate CRLF
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                c if c == sep => record.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    // Final record without trailing newline.
    if saw_any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Parse CSV text into a [`Relation`].
pub fn read_csv_str(text: &str, opts: &CsvOptions) -> Result<Relation> {
    let records = parse_records(text, opts.separator)?;
    let mut iter = records.into_iter();
    let (names, first_data): (Vec<String>, Option<Vec<String>>) = if opts.has_header {
        match iter.next() {
            Some(h) => (h, None),
            None => return Relation::from_columns_typed(vec![], opts.typing),
        }
    } else {
        match iter.next() {
            Some(first) => {
                let names = (0..first.len()).map(|i| format!("col{i}")).collect();
                (names, Some(first))
            }
            None => return Relation::from_columns_typed(vec![], opts.typing),
        }
    };

    let arity = names.len();
    let null_refs: Vec<&str> = opts.null_tokens.iter().map(String::as_str).collect();
    let mut data: Vec<Vec<Value>> = vec![Vec::new(); arity];
    let mut push = |record: Vec<String>, line: usize| -> Result<()> {
        if record.len() != arity {
            return Err(Error::Csv {
                line,
                message: format!("expected {arity} fields, found {}", record.len()),
            });
        }
        for (col, tok) in record.into_iter().enumerate() {
            data[col].push(Value::parse(&tok, &null_refs));
        }
        Ok(())
    };

    let mut line = if opts.has_header { 2 } else { 1 };
    if let Some(first) = first_data {
        push(first, line)?;
        line += 1;
    }
    for record in iter {
        push(record, line)?;
        line += 1;
    }

    Relation::from_columns_typed(names.into_iter().zip(data).collect(), opts.typing)
}

/// Read a CSV file from disk.
pub fn read_csv_path(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<Relation> {
    let mut text = String::new();
    std::fs::File::open(path)?.read_to_string(&mut text)?;
    read_csv_str(&text, opts)
}

/// Quote a field if it contains the separator, quotes or newlines.
fn quote_field(field: &str, sep: char) -> String {
    if field.contains(sep) || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Serialize a relation back to CSV text (header included).
pub fn write_csv(rel: &Relation) -> String {
    let sep = ',';
    let mut out = String::new();
    let header: Vec<String> = rel
        .column_names()
        .iter()
        .map(|n| quote_field(n, sep))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in 0..rel.num_rows() {
        let fields: Vec<String> = (0..rel.num_columns())
            .map(|c| quote_field(&rel.value(row, c).to_string(), sep))
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse_with_header() {
        let r = read_csv_str("a,b\n1,x\n2,y\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.column_names(), vec!["a", "b"]);
        assert_eq!(r.value(0, 0), &Value::Int(1));
        assert_eq!(r.value(1, 1), &Value::Str("y".into()));
    }

    #[test]
    fn no_header_names_columns() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let r = read_csv_str("1,2\n3,4\n", &opts).unwrap();
        assert_eq!(r.column_names(), vec!["col0", "col1"]);
        assert_eq!(r.num_rows(), 2);
    }

    #[test]
    fn quoted_fields_with_separator_and_quotes() {
        let r = read_csv_str(
            "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(r.value(0, 0), &Value::Str("x,y".into()));
        assert_eq!(r.value(0, 1), &Value::Str("he said \"hi\"".into()));
    }

    #[test]
    fn quoted_field_with_newline() {
        let r = read_csv_str("a\n\"line1\nline2\"\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.value(0, 0), &Value::Str("line1\nline2".into()));
    }

    #[test]
    fn null_tokens_become_null() {
        let r = read_csv_str("a,b,c\n1,?,\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.value(0, 1), &Value::Null);
        assert_eq!(r.value(0, 2), &Value::Null);
    }

    #[test]
    fn crlf_tolerated() {
        let r = read_csv_str("a,b\r\n1,2\r\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.value(0, 1), &Value::Int(2));
    }

    #[test]
    fn missing_final_newline_ok() {
        let r = read_csv_str("a\n1\n2", &CsvOptions::default()).unwrap();
        assert_eq!(r.num_rows(), 2);
    }

    #[test]
    fn ragged_record_is_error() {
        let err = read_csv_str("a,b\n1\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, Error::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(read_csv_str("a\n\"oops\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn empty_input_empty_relation() {
        let r = read_csv_str("", &CsvOptions::default()).unwrap();
        assert_eq!(r.num_columns(), 0);
    }

    #[test]
    fn alternative_separator() {
        let opts = CsvOptions {
            separator: ';',
            ..CsvOptions::default()
        };
        let r = read_csv_str("a;b\n1;2\n", &opts).unwrap();
        assert_eq!(r.value(0, 1), &Value::Int(2));
    }

    #[test]
    fn write_then_read_round_trip() {
        let src = "a,b\n1,x\n2,\"y,z\"\n";
        let r = read_csv_str(src, &CsvOptions::default()).unwrap();
        let text = write_csv(&r);
        let r2 = read_csv_str(&text, &CsvOptions::default()).unwrap();
        assert_eq!(r2.num_rows(), r.num_rows());
        for row in 0..r.num_rows() {
            for col in 0..r.num_columns() {
                assert_eq!(r.value(row, col), r2.value(row, col));
            }
        }
    }

    #[test]
    fn null_round_trips_as_empty() {
        let r = read_csv_str("a\n?\n", &CsvOptions::default()).unwrap();
        let text = write_csv(&r);
        assert_eq!(text, "a\n\n");
        let r2 = read_csv_str(&text, &CsvOptions::default()).unwrap();
        assert_eq!(r2.value(0, 0), &Value::Null);
    }
}
