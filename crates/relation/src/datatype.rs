//! Column data types and type inference.
//!
//! ORDER and OCDDISCOVER "perform type inference over the datasets provided,
//! and use the natural ordering for real and integer numbers" (§5.2.2), while
//! FASTOD "considers all columns as if they contain data of type String".
//! Both behaviours are supported here through [`TypingMode`].

use crate::value::Value;

/// The inferred type of a column, forming the widening chain
/// `Int ⊂ Float ⊂ Str`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataType {
    /// All non-NULL values parse as 64-bit integers.
    Int,
    /// All non-NULL values parse as numbers, at least one needs a float.
    Float,
    /// Anything else.
    Str,
}

impl DataType {
    /// Widen `self` to also accommodate a value of type `other`.
    #[inline]
    pub fn widen(self, other: DataType) -> DataType {
        self.max(other)
    }

    /// Type of a single non-NULL value.
    pub fn of(v: &Value) -> Option<DataType> {
        match v {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }
}

/// How raw text tokens are interpreted when loading data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TypingMode {
    /// Infer `Int`/`Float`/`Str` per column; numbers get natural ordering.
    /// This is what ORDER and OCDDISCOVER do.
    #[default]
    Infer,
    /// Treat every token as a string (lexicographic ordering everywhere).
    /// This reproduces FASTOD's behaviour (§5.2.2).
    ForceLexicographic,
}

/// Infer the narrowest [`DataType`] covering every value in `values`.
///
/// NULLs do not influence the type; an all-NULL column is typed `Str` by
/// convention (it is constant anyway and removed by column reduction).
pub fn infer_type<'a>(values: impl IntoIterator<Item = &'a Value>) -> DataType {
    let mut ty: Option<DataType> = None;
    for v in values {
        if let Some(t) = DataType::of(v) {
            ty = Some(match ty {
                None => t,
                Some(prev) => prev.widen(t),
            });
            if ty == Some(DataType::Str) {
                break; // cannot widen further
            }
        }
    }
    ty.unwrap_or(DataType::Str)
}

/// Re-type a column's values for a given [`TypingMode`].
///
/// Under [`TypingMode::Infer`], if the column-wide inferred type is `Str`
/// then numeric-looking values that coexist with strings are converted to
/// their string form so the whole column orders lexicographically (this is
/// what a relational system with a `VARCHAR` column would do). Under
/// [`TypingMode::ForceLexicographic`] every non-NULL value becomes a string.
pub fn homogenize(values: &mut [Value], mode: TypingMode) {
    let target = match mode {
        TypingMode::ForceLexicographic => DataType::Str,
        TypingMode::Infer => infer_type(values.iter()),
    };
    if target != DataType::Str {
        return; // Int/Float mix orders numerically already.
    }
    for v in values.iter_mut() {
        match v {
            Value::Int(_) | Value::Float(_) => {
                // lint: allow(hot-loop-alloc, load-time homogenization; the string becomes the column's owned value)
                *v = Value::Str(v.to_string());
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_chain() {
        assert_eq!(DataType::Int.widen(DataType::Int), DataType::Int);
        assert_eq!(DataType::Int.widen(DataType::Float), DataType::Float);
        assert_eq!(DataType::Float.widen(DataType::Int), DataType::Float);
        assert_eq!(DataType::Float.widen(DataType::Str), DataType::Str);
        assert_eq!(DataType::Str.widen(DataType::Int), DataType::Str);
    }

    #[test]
    fn infer_pure_int() {
        let vals = [Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(infer_type(vals.iter()), DataType::Int);
    }

    #[test]
    fn infer_mixed_numeric_is_float() {
        let vals = [Value::Int(1), Value::Float(2.5)];
        assert_eq!(infer_type(vals.iter()), DataType::Float);
    }

    #[test]
    fn infer_any_string_wins() {
        let vals = [Value::Int(1), Value::Str("x".into())];
        assert_eq!(infer_type(vals.iter()), DataType::Str);
    }

    #[test]
    fn infer_all_null_defaults_to_str() {
        let vals = [Value::Null, Value::Null];
        assert_eq!(infer_type(vals.iter()), DataType::Str);
    }

    #[test]
    fn homogenize_mixed_column_stringifies_numbers() {
        let mut vals = vec![Value::Int(10), Value::Str("9".into()), Value::Null];
        homogenize(&mut vals, TypingMode::Infer);
        assert_eq!(vals[0], Value::Str("10".into()));
        assert_eq!(vals[2], Value::Null);
        // Now "10" < "9" lexicographically.
        assert!(vals[0] < vals[1]);
    }

    #[test]
    fn homogenize_keeps_numeric_column_numeric() {
        let mut vals = vec![Value::Int(10), Value::Int(9)];
        homogenize(&mut vals, TypingMode::Infer);
        assert_eq!(vals, vec![Value::Int(10), Value::Int(9)]);
    }

    #[test]
    fn force_lexicographic_stringifies_everything() {
        let mut vals = vec![Value::Int(10), Value::Int(9), Value::Null];
        homogenize(&mut vals, TypingMode::ForceLexicographic);
        assert_eq!(vals[0], Value::Str("10".into()));
        assert_eq!(vals[1], Value::Str("9".into()));
        assert!(vals[0] < vals[1], "lexicographic: \"10\" < \"9\"");
        assert_eq!(vals[2], Value::Null);
    }
}
