//! Error type shared across the relation substrate.

use std::fmt;

/// Errors produced while building, parsing or accessing relations.
#[derive(Debug)]
pub enum Error {
    /// A row had a different number of cells than the schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of cells in the offending row.
        got: usize,
    },
    /// A column name was referenced that does not exist.
    UnknownColumn(String),
    /// A column index was out of range.
    ColumnOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of columns in the relation.
        len: usize,
    },
    /// Malformed CSV input.
    Csv {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            Error::UnknownColumn(name) => write!(f, "unknown column: {name:?}"),
            Error::ColumnOutOfRange { index, len } => {
                write!(
                    f,
                    "column index {index} out of range for relation with {len} columns"
                )
            }
            Error::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("2"));

        let e = Error::UnknownColumn("foo".into());
        assert!(e.to_string().contains("foo"));

        let e = Error::ColumnOutOfRange { index: 9, len: 4 };
        assert!(e.to_string().contains("9"));

        let e = Error::Csv {
            line: 17,
            message: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("unterminated"));
    }

    #[test]
    fn io_error_round_trips_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
