//! Text rendering of relations for CLI tools and examples.

use crate::relation::Relation;

/// Render the first `max_rows` rows of `rel` as an aligned text table
/// (header, separator, rows; an ellipsis row when truncated).
pub fn render_table(rel: &Relation, max_rows: usize) -> String {
    let cols = rel.num_columns();
    if cols == 0 {
        return String::from("(empty relation)\n");
    }
    let shown = rel.num_rows().min(max_rows);

    let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown + 1);
    cells.push(rel.column_names().iter().map(|s| s.to_string()).collect());
    for row in 0..shown {
        cells.push((0..cols).map(|c| rel.value(row, c).to_string()).collect());
    }

    let widths: Vec<usize> = (0..cols)
        .map(|c| cells.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();

    let mut out = String::new();
    for (i, row) in cells.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(cell, w)| format!("{cell:<w$}"))
            .collect();
        out.push_str(line.join(" | ").trim_end());
        out.push('\n');
        if i == 0 {
            let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            out.push_str(&sep.join("-+-"));
            out.push('\n');
        }
    }
    if shown < rel.num_rows() {
        out.push_str(&format!("… ({} more rows)\n", rel.num_rows() - shown));
    }
    out
}

/// One-line summary: `name (rows×cols): col1:type, col2:type, …`.
pub fn render_summary(rel: &Relation) -> String {
    let cols: Vec<String> = rel
        .schema()
        .map(|m| {
            format!(
                "{}:{:?}{}",
                m.name,
                m.data_type,
                if m.is_constant() { "=const" } else { "" }
            )
        })
        .collect();
    format!(
        "{}×{}: {}",
        rel.num_rows(),
        rel.num_columns(),
        cols.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::value::Value;

    fn sample() -> Relation {
        Relation::from_columns(vec![
            (
                "id".to_string(),
                vec![Value::Int(1), Value::Int(2), Value::Int(3)],
            ),
            (
                "name".to_string(),
                vec![
                    Value::Str("ann".into()),
                    Value::Null,
                    Value::Str("bo".into()),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn renders_aligned_table() {
        let text = render_table(&sample(), 10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "id | name");
        assert!(lines[1].starts_with("---+"));
        assert_eq!(lines[2], "1  | ann");
        assert_eq!(lines[3], "2  |"); // NULL renders empty
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn truncation_adds_ellipsis() {
        let text = render_table(&sample(), 1);
        assert!(text.contains("… (2 more rows)"));
    }

    #[test]
    fn empty_relation_renders_placeholder() {
        let rel = Relation::from_columns(vec![]).unwrap();
        assert_eq!(render_table(&rel, 5), "(empty relation)\n");
    }

    #[test]
    fn summary_mentions_types_and_constants() {
        let rel = Relation::from_columns(vec![
            ("a".to_string(), vec![Value::Int(1), Value::Int(2)]),
            ("k".to_string(), vec![Value::Int(9), Value::Int(9)]),
        ])
        .unwrap();
        let s = render_summary(&rel);
        assert!(s.starts_with("2×2:"));
        assert!(s.contains("a:Int"));
        assert!(s.contains("k:Int=const"));
    }
}
