//! Typed columnar relation substrate for order dependency discovery.
//!
//! This crate provides everything the discovery algorithms need from the
//! data layer of the OCDDISCOVER reproduction (Consonni et al., EDBT 2019):
//!
//! * [`Value`] — a dynamically typed cell value with the paper's comparison
//!   semantics (§4.3): `NULL = NULL`, `NULLS FIRST`, natural ordering for
//!   numbers, lexicographic ordering for strings.
//! * [`DataType`] and type inference — columns are inferred as the narrowest
//!   of `Int ⊂ Float ⊂ Str`, mirroring the type inference that ORDER and
//!   OCDDISCOVER perform (and that FASTOD does not, see
//!   [`TypingMode::ForceLexicographic`]).
//! * [`Relation`] — an immutable, column-major table whose columns are
//!   **rank encoded**: every cell is compiled to a dense `u32` rank over the
//!   column's sorted distinct values, so the hot candidate-checking loop of
//!   the discovery algorithms compares plain integers.
//! * CSV reading/writing ([`csv`]) with NULL-token handling.
//! * Column statistics ([`stats`]): distinct counts, constancy and the
//!   Shannon entropy of Definition 5.1.
//! * Lexicographic index sorting ([`sort`]) — the `generateIndex` primitive
//!   of Algorithm 2.
//! * Blockwise, branchless adjacent-pair scan kernels ([`scan`]) — the
//!   check hot loop, width-dispatched over the narrowed code mirrors
//!   ([`CodeWidth`]) with an optional `simd` feature for explicit
//!   SSE2/AVX2 paths.
//! * Deterministic, seeded row sampling ([`sample`]) — provenance-carrying
//!   sample relations for the sample-first approximate discovery pipeline.
//!
//! # Example
//!
//! ```
//! use ocdd_relation::{Relation, RelationBuilder, Value};
//!
//! let mut b = RelationBuilder::new(vec!["income", "bracket"]);
//! b.push_row(vec![Value::Int(35_000), Value::Int(1)]).unwrap();
//! b.push_row(vec![Value::Int(55_000), Value::Int(2)]).unwrap();
//! let rel: Relation = b.finish();
//! assert_eq!(rel.num_rows(), 2);
//! assert_eq!(rel.num_columns(), 2);
//! // Rank codes preserve the column order.
//! assert!(rel.code(0, 0) < rel.code(1, 0));
//! ```

#![deny(missing_docs)]
// I/O and user-input paths must surface errors as `Result`, never panic;
// test code may still assert with unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
pub mod column;
pub mod csv;
pub mod datatype;
pub mod error;
pub mod manifest;
pub mod pretty;
pub mod relation;
pub mod sample;
pub mod scan;
pub mod sort;
pub mod stats;
pub mod value;

pub use column::{CodeWidth, Column, ColumnMeta, NarrowCodes};
pub use csv::{read_csv_path, read_csv_str, write_csv, CsvOptions};
pub use datatype::{DataType, TypingMode};
pub use error::{Error, Result};
pub use manifest::manifest_hash;
pub use relation::{ColumnId, Relation, RelationBuilder};
pub use sample::{Sample, SampleProvenance, SampleSpec, SampleStrategy};
pub use sort::{sort_index_by, sort_index_by_single};
pub use stats::{column_entropy, ColumnStats};
pub use value::Value;
