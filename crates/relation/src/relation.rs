//! The [`Relation`] type: an immutable, rank-encoded, column-major table.

use crate::column::{CodeWidth, Column, ColumnMeta, NarrowCodes};
use crate::datatype::{homogenize, TypingMode};
use crate::error::{Error, Result};
use crate::value::Value;

/// Index of a column within a relation (attribute identifier).
pub type ColumnId = usize;

/// An immutable instance `r` of a relation `R`, stored column-major with
/// rank-encoded cells.
///
/// Built through [`RelationBuilder`] (row-wise) or
/// [`Relation::from_columns`] (column-wise).
#[derive(Debug, Clone)]
pub struct Relation {
    columns: Vec<Column>,
    num_rows: usize,
}

impl Relation {
    /// Build a relation from named value columns, homogenizing each column
    /// under the given [`TypingMode`] before rank encoding.
    ///
    /// All columns must have the same length.
    pub fn from_columns_typed(
        named: Vec<(String, Vec<Value>)>,
        mode: TypingMode,
    ) -> Result<Relation> {
        let num_rows = named.first().map_or(0, |(_, v)| v.len());
        for (_, vals) in &named {
            if vals.len() != num_rows {
                return Err(Error::ArityMismatch {
                    expected: num_rows,
                    got: vals.len(),
                });
            }
        }
        let columns = named
            .into_iter()
            .map(|(name, mut vals)| {
                homogenize(&mut vals, mode);
                Column::encode(name, vals)
            })
            .collect();
        Ok(Relation { columns, num_rows })
    }

    /// [`Relation::from_columns_typed`] with the default [`TypingMode::Infer`].
    pub fn from_columns(named: Vec<(String, Vec<Value>)>) -> Result<Relation> {
        Self::from_columns_typed(named, TypingMode::Infer)
    }

    /// Number of tuples `|r|`.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of attributes `|U|`.
    #[inline]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Metadata of column `col`.
    #[inline]
    // lint: allow(panic-reachability, ColumnId contract: callers pass col < num_columns())
    pub fn meta(&self, col: ColumnId) -> &ColumnMeta {
        &self.columns[col].meta
    }

    /// All column metadata in schema order.
    pub fn schema(&self) -> impl Iterator<Item = &ColumnMeta> {
        self.columns.iter().map(|c| &c.meta)
    }

    /// Rank code of cell `(row, col)`. The hot accessor: two loads, no branch.
    #[inline(always)]
    // lint: allow(panic-reachability, ColumnId/row contract: col < num_columns() and row < num_rows() — this is the documented two-load no-branch accessor)
    pub fn code(&self, row: usize, col: ColumnId) -> u32 {
        self.columns[col].codes[row]
    }

    /// The full code vector of a column (for tight loops over one column).
    #[inline]
    // lint: allow(panic-reachability, ColumnId contract: callers pass col < num_columns())
    pub fn codes(&self, col: ColumnId) -> &[u32] {
        &self.columns[col].codes
    }

    /// Storage width of column `col`'s narrowest code mirror.
    #[inline]
    pub fn code_width(&self, col: ColumnId) -> CodeWidth {
        self.columns[col].code_width()
    }

    /// The narrowed code mirror of column `col` (see [`NarrowCodes`]) —
    /// what the blockwise scan kernels gather from.
    #[inline]
    // lint: allow(panic-reachability, ColumnId contract: callers pass col < num_columns())
    pub fn narrow_codes(&self, col: ColumnId) -> &NarrowCodes {
        &self.columns[col].narrow
    }

    /// Widen every column's code mirror to at least `min` (see
    /// [`Column::widen_code_width`]); checks are width-independent, so
    /// this only changes which kernels run, never what they return.
    pub fn widen_code_width(&mut self, min: CodeWidth) {
        for c in &mut self.columns {
            c.widen_code_width(min);
        }
    }

    /// Decode the original value of cell `(row, col)`.
    #[inline]
    // lint: allow(panic-reachability, ColumnId contract: callers pass col < num_columns())
    pub fn value(&self, row: usize, col: ColumnId) -> &Value {
        self.columns[col].value(row)
    }

    /// Find a column id by name.
    pub fn column_id(&self, name: &str) -> Result<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.meta.name == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_owned()))
    }

    /// Column names in schema order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.meta.name.as_str()).collect()
    }

    /// A new relation containing only `cols` (in the given order), sharing
    /// no storage with `self`. Used by the column-scalability experiments.
    pub fn project(&self, cols: &[ColumnId]) -> Result<Relation> {
        let mut columns = Vec::with_capacity(cols.len());
        for &c in cols {
            let col = self.columns.get(c).ok_or(Error::ColumnOutOfRange {
                index: c,
                len: self.columns.len(),
            })?;
            columns.push(col.clone());
        }
        Ok(Relation {
            columns,
            num_rows: self.num_rows,
        })
    }

    /// A new relation containing only the first `n` rows.
    /// Columns are re-encoded so ranks stay dense. Used by the
    /// row-scalability experiments.
    pub fn head(&self, n: usize) -> Relation {
        let rows: Vec<u32> = (0..n.min(self.num_rows) as u32).collect();
        self.select_rows(&rows)
    }

    /// A new relation containing exactly the rows of `rows` (parent row
    /// ids, in the given order; ids past the last row are skipped).
    /// Columns are re-encoded so ranks stay dense over the selected
    /// subset — the invariant every checker and the manifest hash rely
    /// on. This is the row-map materialization primitive of
    /// [`crate::sample`].
    pub fn select_rows(&self, rows: &[u32]) -> Relation {
        let keep: Vec<usize> = rows
            .iter()
            .map(|&r| r as usize)
            .filter(|&r| r < self.num_rows)
            .collect();
        let columns = self
            .columns
            .iter()
            .map(|c| {
                let vals: Vec<Value> = keep.iter().map(|&r| c.value(r).clone()).collect();
                Column::encode(c.meta.name.clone(), vals)
            })
            .collect();
        Relation {
            columns,
            num_rows: keep.len(),
        }
    }
}

/// Row-wise builder for [`Relation`].
#[derive(Debug)]
pub struct RelationBuilder {
    names: Vec<String>,
    data: Vec<Vec<Value>>, // column-major
    mode: TypingMode,
}

impl RelationBuilder {
    /// Start a builder with the given column names.
    pub fn new<S: Into<String>>(names: Vec<S>) -> RelationBuilder {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let data = names.iter().map(|_| Vec::new()).collect();
        RelationBuilder {
            names,
            data,
            mode: TypingMode::Infer,
        }
    }

    /// Override the typing mode (default: [`TypingMode::Infer`]).
    pub fn typing_mode(mut self, mode: TypingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Append one row.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.names.len() {
            return Err(Error::ArityMismatch {
                expected: self.names.len(),
                got: row.len(),
            });
        }
        for (col, v) in self.data.iter_mut().zip(row) {
            col.push(v);
        }
        Ok(())
    }

    /// Finish building, consuming the builder.
    pub fn finish(self) -> Relation {
        let named = self.names.into_iter().zip(self.data).collect();
        // lint: allow(no-panic, proven invariant: push_row rejects rows of the wrong arity, so all columns have equal length here)
        Relation::from_columns_typed(named, self.mode).expect("builder enforces equal lengths")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let mut b = RelationBuilder::new(vec!["a", "b", "c"]);
        b.push_row(vec![Value::Int(1), Value::Str("x".into()), Value::Int(7)])
            .unwrap();
        b.push_row(vec![Value::Int(3), Value::Str("y".into()), Value::Int(7)])
            .unwrap();
        b.push_row(vec![Value::Int(2), Value::Null, Value::Int(7)])
            .unwrap();
        b.finish()
    }

    #[test]
    fn builder_round_trip() {
        let r = sample();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.num_columns(), 3);
        assert_eq!(r.value(0, 0), &Value::Int(1));
        assert_eq!(r.value(2, 1), &Value::Null);
        assert_eq!(r.column_names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn builder_rejects_wrong_arity() {
        let mut b = RelationBuilder::new(vec!["a", "b"]);
        let err = b.push_row(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            Error::ArityMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn codes_reflect_column_order() {
        let r = sample();
        // column a: values 1,3,2 -> codes 0,2,1
        assert_eq!(r.codes(0), &[0, 2, 1]);
        // column c is constant -> all codes 0
        assert_eq!(r.codes(2), &[0, 0, 0]);
        assert!(r.meta(2).is_constant());
    }

    #[test]
    fn code_width_accessors_mirror_columns() {
        let r = sample();
        // 3 distinct values everywhere -> u8 mirrors.
        for c in 0..r.num_columns() {
            assert_eq!(r.code_width(c), CodeWidth::U8);
            match r.narrow_codes(c) {
                NarrowCodes::U8(n) => {
                    assert!(n.iter().zip(r.codes(c)).all(|(&a, &b)| a as u32 == b));
                }
                other => panic!("expected u8 mirror, got {other:?}"),
            }
        }
        let mut wide = r.clone();
        wide.widen_code_width(CodeWidth::U32);
        for c in 0..wide.num_columns() {
            assert_eq!(wide.code_width(c), CodeWidth::U32);
            // Full-width codes are untouched by widening.
            assert_eq!(wide.codes(c), r.codes(c));
        }
    }

    #[test]
    fn column_id_lookup() {
        let r = sample();
        assert_eq!(r.column_id("b").unwrap(), 1);
        assert!(matches!(r.column_id("zz"), Err(Error::UnknownColumn(_))));
    }

    #[test]
    fn project_selects_and_reorders() {
        let r = sample();
        let p = r.project(&[2, 0]).unwrap();
        assert_eq!(p.num_columns(), 2);
        assert_eq!(p.column_names(), vec!["c", "a"]);
        assert_eq!(p.value(1, 1), &Value::Int(3));
        assert!(r.project(&[9]).is_err());
    }

    #[test]
    fn head_truncates_and_reencodes() {
        let r = sample();
        let h = r.head(2);
        assert_eq!(h.num_rows(), 2);
        // After truncation 'a' has values 1,3 -> dense codes 0,1.
        assert_eq!(h.codes(0), &[0, 1]);
        // head(n) with n > rows is a no-op copy.
        assert_eq!(r.head(10).num_rows(), 3);
    }

    #[test]
    fn from_columns_rejects_ragged_input() {
        let named = vec![
            ("a".to_string(), vec![Value::Int(1)]),
            ("b".to_string(), vec![Value::Int(1), Value::Int(2)]),
        ];
        assert!(Relation::from_columns(named).is_err());
    }

    #[test]
    fn empty_relation() {
        let r = Relation::from_columns(vec![]).unwrap();
        assert_eq!(r.num_rows(), 0);
        assert_eq!(r.num_columns(), 0);
    }

    #[test]
    fn force_lexicographic_changes_ordering() {
        let named = vec![("n".to_string(), vec![Value::Int(10), Value::Int(9)])];
        let nat = Relation::from_columns_typed(named.clone(), TypingMode::Infer).unwrap();
        let lex = Relation::from_columns_typed(named, TypingMode::ForceLexicographic).unwrap();
        // Natural: 9 < 10. Lexicographic: "10" < "9".
        assert!(nat.code(1, 0) < nat.code(0, 0));
        assert!(lex.code(0, 0) < lex.code(1, 0));
    }
}
