//! Rank-encoded columns.
//!
//! Every column of a [`crate::Relation`] is compiled to a vector of dense
//! `u32` rank codes over the column's sorted distinct values (NULL, which
//! sorts first, always gets code 0 when present). Order comparisons between
//! two cells of the same column then reduce to integer comparisons, which is
//! what makes the candidate checker's inner loop cheap.

use crate::datatype::{infer_type, DataType};
use crate::value::Value;

/// Physical storage width of a column's rank codes.
///
/// Codes are always available at full `u32` width ([`Column::codes`]);
/// when the distinct count fits a narrower integer the column *also*
/// carries a narrowed mirror ([`NarrowCodes`]), so the blockwise scan
/// kernels ([`crate::scan`]) read 4×/2× more codes per cache line on
/// low-cardinality columns. The width is a storage property only — the
/// dense ranks are identical at every width, so comparisons (and thus
/// every check outcome) are width-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CodeWidth {
    /// Distinct count ≤ 256: every code fits one byte.
    U8,
    /// Distinct count ≤ 65 536: every code fits two bytes.
    U16,
    /// Full-width codes only.
    U32,
}

impl CodeWidth {
    /// Short lowercase label (`"u8"` / `"u16"` / `"u32"`) for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CodeWidth::U8 => "u8",
            CodeWidth::U16 => "u16",
            CodeWidth::U32 => "u32",
        }
    }
}

/// Width-adaptive mirror of a column's rank codes (see [`CodeWidth`]).
#[derive(Debug, Clone, PartialEq)]
pub enum NarrowCodes {
    /// Byte-wide mirror: `narrow[r] == codes[r]` for every row.
    U8(Vec<u8>),
    /// Two-byte mirror: `narrow[r] == codes[r]` for every row.
    U16(Vec<u16>),
    /// No mirror — codes exist only at full width.
    U32,
}

impl NarrowCodes {
    /// Build the narrowest mirror that fits `distinct` dense ranks
    /// (ranks are `0..distinct`, so `distinct ≤ 2^w` fits width `w`).
    fn build(codes: &[u32], distinct: usize) -> NarrowCodes {
        if distinct <= 1 << 8 {
            NarrowCodes::U8(codes.iter().map(|&c| c as u8).collect())
        } else if distinct <= 1 << 16 {
            NarrowCodes::U16(codes.iter().map(|&c| c as u16).collect())
        } else {
            NarrowCodes::U32
        }
    }

    /// The width this mirror stores.
    pub fn width(&self) -> CodeWidth {
        match self {
            NarrowCodes::U8(_) => CodeWidth::U8,
            NarrowCodes::U16(_) => CodeWidth::U16,
            NarrowCodes::U32 => CodeWidth::U32,
        }
    }
}

/// Metadata describing one column of a relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Column name (header).
    pub name: String,
    /// Inferred (or forced) data type used for ordering.
    pub data_type: DataType,
    /// Number of distinct values, counting NULL as one class.
    pub distinct: usize,
    /// Whether the column contains at least one NULL.
    pub has_nulls: bool,
}

impl ColumnMeta {
    /// A column is constant when every row carries the same value
    /// (an empty column is constant by convention).
    #[inline]
    pub fn is_constant(&self) -> bool {
        self.distinct <= 1
    }
}

/// One rank-encoded column: codes plus the decoded dictionary.
#[derive(Debug, Clone)]
pub struct Column {
    /// Per-row dense rank codes; `codes[r] < codes[s]` iff row `r`'s value
    /// sorts strictly before row `s`'s in this column.
    pub codes: Vec<u32>,
    /// Sorted distinct values; `dictionary[code]` decodes a rank.
    pub dictionary: Vec<Value>,
    /// Narrowed mirror of `codes` when the distinct count fits (see
    /// [`CodeWidth`]); kept in sync by [`Column::encode`] and
    /// [`Column::widen_code_width`].
    pub narrow: NarrowCodes,
    /// Column metadata.
    pub meta: ColumnMeta,
}

impl Column {
    /// Rank-encode `values` under the given name.
    ///
    /// The caller is responsible for having homogenized the values first
    /// (see [`crate::datatype::homogenize`]); encoding sorts whatever total
    /// order the values currently have.
    // lint: allow(panic-reachability, order is a permutation of 0..values.len(), so every order-derived index is in bounds)
    pub fn encode(name: impl Into<String>, values: Vec<Value>) -> Column {
        let data_type = infer_type(values.iter());
        let has_nulls = values.iter().any(Value::is_null);

        // Sort indices by value to assign dense ranks in O(m log m).
        let mut order: Vec<u32> = (0..values.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| values[a as usize].cmp(&values[b as usize]));

        let mut codes = vec![0u32; values.len()];
        let mut dictionary = Vec::new();
        let mut rank = 0u32;
        for (pos, &row) in order.iter().enumerate() {
            let v = &values[row as usize];
            if pos == 0 {
                // lint: allow(hot-loop-alloc, load-time dictionary build; each clone is the dictionary's owned entry for a new distinct value)
                dictionary.push(v.clone());
            } else {
                let prev = &values[order[pos - 1] as usize];
                if v != prev {
                    rank += 1;
                    // lint: allow(hot-loop-alloc, load-time dictionary build; each clone is the dictionary's owned entry for a new distinct value)
                    dictionary.push(v.clone());
                }
            }
            codes[row as usize] = rank;
        }

        let distinct = dictionary.len();
        let narrow = NarrowCodes::build(&codes, distinct);
        Column {
            codes,
            dictionary,
            narrow,
            meta: ColumnMeta {
                name: name.into(),
                data_type,
                distinct,
                has_nulls,
            },
        }
    }

    /// Storage width of this column's narrowest code mirror.
    #[inline]
    pub fn code_width(&self) -> CodeWidth {
        self.narrow.width()
    }

    /// Widen the narrow mirror to at least `min` (no-op when the natural
    /// width is already ≥ `min`); widening to [`CodeWidth::U32`] drops
    /// the mirror entirely.
    ///
    /// Checks are width-independent by construction; this exists so the
    /// determinism matrix and the kernel benches can sweep widths over
    /// the *same* data.
    pub fn widen_code_width(&mut self, min: CodeWidth) {
        if self.narrow.width() >= min {
            return;
        }
        self.narrow = match min {
            CodeWidth::U8 => NarrowCodes::build(&self.codes, self.meta.distinct),
            CodeWidth::U16 => NarrowCodes::U16(self.codes.iter().map(|&c| c as u16).collect()),
            CodeWidth::U32 => NarrowCodes::U32,
        };
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Decode the value of row `row`.
    #[inline]
    // lint: allow(panic-reachability, row contract: callers pass row < len(); codes index the dictionary by construction of encode)
    pub fn value(&self, row: usize) -> &Value {
        &self.dictionary[self.codes[row] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn encode_assigns_dense_ranks_in_value_order() {
        let col = Column::encode("a", ints(&[30, 10, 20, 10]));
        assert_eq!(col.codes, vec![2, 0, 1, 0]);
        assert_eq!(col.meta.distinct, 3);
        assert_eq!(col.dictionary, ints(&[10, 20, 30]));
    }

    #[test]
    fn encode_null_gets_rank_zero() {
        let col = Column::encode("a", vec![Value::Int(5), Value::Null, Value::Int(1)]);
        assert_eq!(col.codes[1], 0, "NULL sorts first");
        assert!(col.meta.has_nulls);
        assert_eq!(col.dictionary[0], Value::Null);
    }

    #[test]
    fn encode_preserves_comparison_order() {
        let values = vec![
            Value::Str("b".into()),
            Value::Null,
            Value::Str("a".into()),
            Value::Str("b".into()),
        ];
        let col = Column::encode("s", values.clone());
        for i in 0..values.len() {
            for j in 0..values.len() {
                assert_eq!(
                    values[i].cmp(&values[j]),
                    col.codes[i].cmp(&col.codes[j]),
                    "codes must mirror value order for rows {i},{j}"
                );
            }
        }
    }

    #[test]
    fn constant_column_detected() {
        let col = Column::encode("c", ints(&[7, 7, 7]));
        assert!(col.meta.is_constant());
        let col = Column::encode("c", vec![Value::Null, Value::Null]);
        assert!(col.meta.is_constant());
        let col = Column::encode("c", Vec::new());
        assert!(col.meta.is_constant());
    }

    #[test]
    fn value_decodes_original() {
        let vals = vec![Value::Str("x".into()), Value::Int(3), Value::Null];
        // Mixed columns are unusual but still encodable (typed Str overall).
        let col = Column::encode("m", vals.clone());
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(col.value(i), v);
        }
    }

    #[test]
    fn narrow_mirror_matches_full_width_codes() {
        // 3 distinct -> u8 mirror.
        let col = Column::encode("a", ints(&[30, 10, 20, 10]));
        assert_eq!(col.code_width(), CodeWidth::U8);
        match &col.narrow {
            NarrowCodes::U8(n) => {
                assert!(n.iter().zip(&col.codes).all(|(&a, &b)| a as u32 == b));
            }
            other => panic!("expected u8 mirror, got {other:?}"),
        }
        // 300 distinct -> u16 mirror.
        let col = Column::encode("b", ints(&(0..300).collect::<Vec<i64>>()));
        assert_eq!(col.code_width(), CodeWidth::U16);
        match &col.narrow {
            NarrowCodes::U16(n) => {
                assert!(n.iter().zip(&col.codes).all(|(&a, &b)| a as u32 == b));
            }
            other => panic!("expected u16 mirror, got {other:?}"),
        }
    }

    #[test]
    fn width_boundaries_are_exact() {
        let col = Column::encode("a", ints(&(0..256).collect::<Vec<i64>>()));
        assert_eq!(col.code_width(), CodeWidth::U8, "256 distinct fits u8");
        let col = Column::encode("a", ints(&(0..257).collect::<Vec<i64>>()));
        assert_eq!(col.code_width(), CodeWidth::U16, "257 distinct needs u16");
    }

    #[test]
    fn widen_code_width_only_widens() {
        let mut col = Column::encode("a", ints(&[1, 2, 1]));
        assert_eq!(col.code_width(), CodeWidth::U8);
        col.widen_code_width(CodeWidth::U16);
        assert_eq!(col.code_width(), CodeWidth::U16);
        col.widen_code_width(CodeWidth::U8); // no-op: never narrows
        assert_eq!(col.code_width(), CodeWidth::U16);
        col.widen_code_width(CodeWidth::U32);
        assert_eq!(col.code_width(), CodeWidth::U32);
        assert_eq!(col.narrow, NarrowCodes::U32);
    }

    #[test]
    fn duplicate_heavy_column_small_dictionary() {
        let vals: Vec<Value> = (0..1000).map(|i| Value::Int(i % 3)).collect();
        let col = Column::encode("q", vals);
        assert_eq!(col.meta.distinct, 3);
        assert_eq!(col.dictionary.len(), 3);
        assert_eq!(col.len(), 1000);
    }
}
