//! Deterministic, seeded row samples as first-class [`Relation`]s.
//!
//! The sample-first approximate discovery pipeline (DESIGN.md §14) runs
//! the levelwise traversal on a small row sample and escalates only
//! borderline candidates to full-data checks. For that to be resumable
//! and auditable, a sample must be (a) a real [`Relation`] — rank
//! encoded, checkable by every backend — and (b) *reproducible*: the same
//! parent relation, seed, size and strategy must always yield the same
//! rows, across runs, platforms and toolchains.
//!
//! [`Sample::build`] therefore uses a fully specified SplitMix64
//! generator (no `std` hasher, no platform entropy) and carries
//! provenance — the parent's [`manifest_hash`], the seed, the strategy,
//! and the ascending row map — so a checkpoint dump can record exactly
//! which sample a run was taken on, and a resume can rebuild and verify
//! it (rejecting on any mismatch, mirroring the manifest check).
//!
//! Two strategies are provided:
//!
//! * [`SampleStrategy::Uniform`] — classic reservoir sampling
//!   (Algorithm R) over the parent rows.
//! * [`SampleStrategy::Stratified`] — proportional allocation over the
//!   rank classes of one column (largest-remainder rounding, ties to the
//!   smaller rank), then a reservoir within each stratum. Guarantees
//!   every value class of a skewed column is represented, which
//!   stabilizes split-error estimates.
//!
//! When `rows >= parent.num_rows()` both strategies degenerate to the
//! identity sample (every parent row, original order) — the degenerate
//! case the pipeline's exactness differential is built on.

use crate::manifest::manifest_hash;
use crate::relation::{ColumnId, Relation};

/// How sample rows are drawn from the parent relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleStrategy {
    /// Uniform reservoir sample over all parent rows.
    Uniform,
    /// Proportional stratified sample over the rank classes of the given
    /// column (see the module docs).
    Stratified(ColumnId),
}

impl SampleStrategy {
    /// Stable tag used by dump serialization (`"uniform"` /
    /// `"stratified"`).
    pub fn label(&self) -> &'static str {
        match self {
            SampleStrategy::Uniform => "uniform",
            SampleStrategy::Stratified(_) => "stratified",
        }
    }

    /// The stratification column, when any.
    pub fn column(&self) -> Option<ColumnId> {
        match self {
            SampleStrategy::Uniform => None,
            SampleStrategy::Stratified(c) => Some(*c),
        }
    }
}

/// Requested sample: size, seed and strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Target number of sample rows (clamped to the parent's row count).
    pub rows: usize,
    /// Seed of the deterministic generator.
    pub seed: u64,
    /// Drawing strategy.
    pub strategy: SampleStrategy,
}

impl SampleSpec {
    /// Uniform spec with the given size and seed.
    pub fn uniform(rows: usize, seed: u64) -> SampleSpec {
        SampleSpec {
            rows,
            seed,
            strategy: SampleStrategy::Uniform,
        }
    }
}

/// Where a sample came from: everything needed to rebuild it from the
/// parent relation and to reject a resume against the wrong sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleProvenance {
    /// [`manifest_hash`] of the parent relation.
    pub parent_manifest: u64,
    /// Row count of the parent relation.
    pub parent_rows: usize,
    /// Seed the rows were drawn with.
    pub seed: u64,
    /// Strategy the rows were drawn with.
    pub strategy: SampleStrategy,
    /// Sample row → parent row, ascending (parent order is preserved).
    pub row_map: Vec<u32>,
    /// [`manifest_hash`] of the materialized sample relation — the
    /// single value a resume compares to detect sampling drift.
    pub sample_manifest: u64,
}

/// A materialized sample: a rank-encoded [`Relation`] plus its
/// [`SampleProvenance`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// The sample as a first-class relation (dense ranks over the
    /// selected rows).
    pub relation: Relation,
    /// Reproducibility metadata.
    pub provenance: SampleProvenance,
}

impl Sample {
    /// Draw a deterministic sample of `spec.rows` rows from `parent`.
    ///
    /// The row map is sorted ascending after drawing, so the sample
    /// preserves parent row order; with `spec.rows >=
    /// parent.num_rows()` the map is the identity and the sample is the
    /// parent relation re-encoded (rank-identical, equal manifest).
    pub fn build(parent: &Relation, spec: &SampleSpec) -> Sample {
        let m = parent.num_rows();
        let take = spec.rows.min(m);
        let mut row_map: Vec<u32> = if take == m {
            (0..m as u32).collect()
        } else {
            match spec.strategy {
                SampleStrategy::Uniform => {
                    let mut rng = SplitMix64::new(spec.seed);
                    reservoir(&mut (0..m as u32), take, &mut rng)
                }
                SampleStrategy::Stratified(col) if col < parent.num_columns() => {
                    stratified(parent, col, take, spec.seed)
                }
                // Out-of-range stratification column: fall back to
                // uniform rather than panicking — the provenance still
                // records the requested strategy, so a resume under a
                // different schema is caught by the parent manifest.
                SampleStrategy::Stratified(_) => {
                    let mut rng = SplitMix64::new(spec.seed);
                    reservoir(&mut (0..m as u32), take, &mut rng)
                }
            }
        };
        row_map.sort_unstable();
        let relation = parent.select_rows(&row_map);
        let provenance = SampleProvenance {
            parent_manifest: manifest_hash(parent),
            parent_rows: m,
            seed: spec.seed,
            strategy: spec.strategy,
            sample_manifest: manifest_hash(&relation),
            row_map,
        };
        Sample {
            relation,
            provenance,
        }
    }

    /// True when the sample contains every parent row — estimates on it
    /// are exact, and the pipeline degenerates to full-data discovery.
    pub fn is_exhaustive(&self) -> bool {
        self.provenance.row_map.len() == self.provenance.parent_rows
    }
}

/// Fully specified SplitMix64 (Steele et al.): the standard 64-bit
/// mix, stable across platforms and toolchains by construction. Dumps
/// record only the seed; this generator is part of the dump contract.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` by rejection (no modulo bias).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Algorithm R reservoir sample of `k` items from an iterator.
fn reservoir(items: &mut dyn Iterator<Item = u32>, k: usize, rng: &mut SplitMix64) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::with_capacity(k);
    for (i, item) in items.enumerate() {
        if out.len() < k {
            out.push(item);
        } else {
            let j = rng.below(i as u64 + 1) as usize;
            if let Some(slot) = out.get_mut(j) {
                *slot = item;
            }
        }
    }
    out
}

/// Proportional stratified sample over the rank classes of `col`:
/// largest-remainder quota per class (ties to the smaller rank), then a
/// per-class reservoir. Every non-empty class gets at least the floor of
/// its proportional share; remainders are spent on the classes with the
/// largest fractional part.
fn stratified(parent: &Relation, col: ColumnId, take: usize, seed: u64) -> Vec<u32> {
    let m = parent.num_rows();
    let codes = parent.codes(col);
    let classes = codes.iter().copied().max().map_or(0, |c| c as usize + 1);
    let mut counts = vec![0u64; classes];
    for &c in codes {
        if let Some(n) = counts.get_mut(c as usize) {
            *n += 1;
        }
    }
    // Allocation: one base row per non-empty class (coverage guarantee —
    // when `take` is smaller than the class count, the first `take`
    // classes in rank order get it), then the rest proportionally by
    // largest remainder.
    let mut quota = vec![0usize; classes];
    let mut spent = 0usize;
    for (class, &count) in counts.iter().enumerate() {
        if count > 0 && spent < take {
            if let Some(q) = quota.get_mut(class) {
                *q = 1;
                spent += 1;
            }
        }
    }
    let extra = take - spent;
    let mut remainders: Vec<(u64, usize)> = Vec::with_capacity(classes);
    for (class, &count) in counts.iter().enumerate() {
        let exact_num = count * extra as u64;
        let floor = (exact_num / m as u64) as usize;
        if let Some(q) = quota.get_mut(class) {
            let add = floor.min((count as usize).saturating_sub(*q));
            *q += add;
            spent += add;
        }
        remainders.push((exact_num % m as u64, class));
    }
    // Spend the remainder on the largest fractional parts; ties go to
    // the smaller rank (deterministic).
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut left = take.saturating_sub(spent);
    for &(_, class) in remainders.iter().cycle().take(classes * 2) {
        if left == 0 {
            break;
        }
        let (Some(q), Some(&count)) = (quota.get_mut(class), counts.get(class)) else {
            continue;
        };
        if (*q as u64) < count {
            *q += 1;
            left -= 1;
        }
    }
    // One reservoir per class, single pass over the parent rows. Each
    // class gets its own generator stream (seed mixed with the rank) so
    // quota order cannot perturb the draws.
    let mut rngs: Vec<SplitMix64> = (0..classes)
        .map(|class| SplitMix64::new(seed ^ (class as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        .collect();
    let mut pools: Vec<Vec<u32>> = quota.iter().map(|&q| Vec::with_capacity(q)).collect();
    let mut seen = vec![0u64; classes];
    for (row, &code) in codes.iter().enumerate() {
        let class = code as usize;
        let (Some(pool), Some(rng), Some(n), Some(&q)) = (
            pools.get_mut(class),
            rngs.get_mut(class),
            seen.get_mut(class),
            quota.get(class),
        ) else {
            continue;
        };
        if pool.len() < q {
            pool.push(row as u32);
        } else if q > 0 {
            let j = rng.below(*n + 1) as usize;
            if j < q {
                if let Some(slot) = pool.get_mut(j) {
                    *slot = row as u32;
                }
            }
        }
        *n += 1;
    }
    pools.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    fn big(rows: usize) -> Relation {
        let a: Vec<i64> = (0..rows as i64).collect();
        let b: Vec<i64> = (0..rows as i64).map(|i| i % 7).collect();
        rel(&[("a", &a), ("b", &b)])
    }

    #[test]
    fn same_seed_same_sample() {
        let r = big(500);
        let spec = SampleSpec::uniform(50, 42);
        let s1 = Sample::build(&r, &spec);
        let s2 = Sample::build(&r, &spec);
        assert_eq!(s1.provenance, s2.provenance);
        assert_eq!(
            s1.provenance.sample_manifest,
            manifest_hash(&s2.relation),
            "identical draws materialize identical relations"
        );
    }

    #[test]
    fn different_seed_different_sample() {
        let r = big(500);
        let s1 = Sample::build(&r, &SampleSpec::uniform(50, 1));
        let s2 = Sample::build(&r, &SampleSpec::uniform(50, 2));
        assert_ne!(s1.provenance.row_map, s2.provenance.row_map);
        assert_ne!(s1.provenance.sample_manifest, s2.provenance.sample_manifest);
    }

    #[test]
    fn row_map_is_ascending_and_in_range() {
        let r = big(300);
        let s = Sample::build(&r, &SampleSpec::uniform(64, 9));
        assert_eq!(s.relation.num_rows(), 64);
        assert_eq!(s.provenance.row_map.len(), 64);
        assert!(s.provenance.row_map.windows(2).all(|w| w[0] < w[1]));
        assert!(s.provenance.row_map.iter().all(|&p| (p as usize) < 300));
    }

    #[test]
    fn oversized_request_is_the_identity_sample() {
        let r = big(40);
        for spec in [
            SampleSpec::uniform(40, 3),
            SampleSpec::uniform(1000, 3),
            SampleSpec {
                rows: 1000,
                seed: 3,
                strategy: SampleStrategy::Stratified(1),
            },
        ] {
            let s = Sample::build(&r, &spec);
            assert!(s.is_exhaustive());
            assert_eq!(s.provenance.row_map, (0..40).collect::<Vec<u32>>());
            assert_eq!(
                s.provenance.sample_manifest,
                manifest_hash(&r),
                "identity sample re-encodes to the same ranks"
            );
        }
    }

    #[test]
    fn sample_values_match_parent_rows() {
        let r = big(200);
        let s = Sample::build(&r, &SampleSpec::uniform(30, 7));
        for (srow, &prow) in s.provenance.row_map.iter().enumerate() {
            for col in 0..r.num_columns() {
                assert_eq!(s.relation.value(srow, col), r.value(prow as usize, col));
            }
        }
    }

    #[test]
    fn stratified_covers_every_class() {
        // Heavily skewed column: 190 rows of class 0, 10 spread over 5
        // rare classes. A 20-row uniform sample can miss rare classes;
        // the stratified one must hit each (every class's proportional
        // share rounds up to ≥ 1 via the remainder pass).
        let mut b: Vec<i64> = vec![0; 190];
        for i in 0..10 {
            b.push(1 + (i % 5));
        }
        let a: Vec<i64> = (0..200).collect();
        let r = rel(&[("a", &a), ("strat", &b)]);
        let s = Sample::build(
            &r,
            &SampleSpec {
                rows: 20,
                seed: 5,
                strategy: SampleStrategy::Stratified(1),
            },
        );
        assert_eq!(s.relation.num_rows(), 20);
        let mut seen = [false; 6];
        for &row in &s.provenance.row_map {
            seen[b[row as usize] as usize] = true;
        }
        assert!(seen.iter().all(|&v| v), "classes covered: {seen:?}");
    }

    #[test]
    fn stratified_is_deterministic_too() {
        let r = big(400);
        let spec = SampleSpec {
            rows: 60,
            seed: 11,
            strategy: SampleStrategy::Stratified(1),
        };
        assert_eq!(
            Sample::build(&r, &spec).provenance,
            Sample::build(&r, &spec).provenance
        );
    }

    #[test]
    fn reservoir_is_exact_for_small_populations() {
        let mut rng = SplitMix64::new(1);
        let out = reservoir(&mut (0..5u32), 10, &mut rng);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn splitmix_is_pinned() {
        // The generator is part of the dump contract: pin its first
        // outputs so an accidental algorithm change cannot slip through.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn strategy_labels_are_stable() {
        assert_eq!(SampleStrategy::Uniform.label(), "uniform");
        assert_eq!(SampleStrategy::Stratified(3).label(), "stratified");
        assert_eq!(SampleStrategy::Stratified(3).column(), Some(3));
        assert_eq!(SampleStrategy::Uniform.column(), None);
    }

    #[test]
    fn empty_parent_yields_empty_sample() {
        let r = rel(&[("a", &[]), ("b", &[])]);
        let s = Sample::build(&r, &SampleSpec::uniform(10, 1));
        assert_eq!(s.relation.num_rows(), 0);
        assert!(s.is_exhaustive());
    }
}
