//! Dynamically typed cell values with the paper's comparison semantics.
//!
//! §4.3 of the paper fixes the semantics for real-world data: `NULL` compares
//! equal to `NULL` (`SET ANSI_NULLS ON`) and sorts before every non-NULL
//! value (`NULLS FIRST`). Numeric columns use the natural numeric order;
//! string columns use lexicographic (byte-wise UTF-8) order.

use std::cmp::Ordering;
use std::fmt;

/// A single typed cell value.
///
/// A [`Value`] forms a **total order** within its own type. Heterogeneous
/// comparisons rank by type (`Null < Int/Float < Str`) so that a column that
/// failed strict type inference still has a deterministic total order; in
/// practice columns are homogenised by type inference before comparisons
/// happen (see [`crate::datatype`]).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Equal to itself, smaller than everything else.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalised to [`Value::Null`] at parse time, so
    /// stored floats are always comparable.
    Float(f64),
    /// UTF-8 string, compared lexicographically.
    Str(String),
}

impl Value {
    /// True if this value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric rank of the type used to order heterogeneous values.
    #[inline]
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }

    /// Numeric view of an `Int` or `Float` value.
    #[inline]
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Parse a raw text token into a value, trying `Int`, then `Float`,
    /// then falling back to `Str`. `null_tokens` (e.g. `""`, `"?"`,
    /// `"NULL"`) map to [`Value::Null`]. Float NaN parses to NULL to keep
    /// the total-order invariant.
    pub fn parse(token: &str, null_tokens: &[&str]) -> Value {
        if null_tokens.contains(&token) {
            return Value::Null;
        }
        if let Ok(i) = token.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = token.parse::<f64>() {
            if f.is_nan() {
                return Value::Null;
            }
            return Value::Float(f);
        }
        Value::Str(token.to_owned())
    }
}

impl PartialEq for Value {
    /// Equality consistent with [`Ord`]: `Int(2) == Float(2.0)`.
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                // Both numeric: natural numeric order. Stored floats are
                // never NaN, so partial_cmp cannot fail.
                // lint: allow(no-panic, proven invariant: Value construction rejects NaN, so partial_cmp of stored floats is total)
                (Some(x), Some(y)) => x.partial_cmp(&y).expect("no NaN stored in Value"),
                _ => a.type_rank().cmp(&b.type_rank()),
            },
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                // Hash consistent with Ord/Eq: an integral float hashes like
                // the equal Int (Int(2) == Float(2.0) under our Ord).
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    1u8.hash(state);
                    (*f as i64).hash(state);
                } else {
                    2u8.hash(state);
                    f.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Float(v)
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_equals_null_and_sorts_first() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Float(f64::NEG_INFINITY));
        assert!(Value::Null < Value::Str(String::new()));
    }

    #[test]
    fn numeric_order_is_natural_not_lexicographic() {
        assert!(Value::Int(9) < Value::Int(10)); // "10" < "9" lexicographically
        assert!(Value::Float(2.5) < Value::Int(3));
        assert!(Value::Int(2) < Value::Float(2.5));
    }

    #[test]
    fn mixed_int_float_compare_numerically() {
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.0)), Ordering::Equal);
        assert!(Value::Float(1.999) < Value::Int(2));
    }

    #[test]
    fn string_order_is_lexicographic() {
        assert!(Value::Str("10".into()) < Value::Str("9".into()));
        assert!(Value::Str("abc".into()) < Value::Str("abd".into()));
    }

    #[test]
    fn numbers_sort_before_strings() {
        assert!(Value::Int(999) < Value::Str("0".into()));
    }

    #[test]
    fn parse_infers_int_then_float_then_str() {
        assert_eq!(Value::parse("42", &[]), Value::Int(42));
        assert_eq!(Value::parse("-7", &[]), Value::Int(-7));
        assert_eq!(Value::parse("2.75", &[]), Value::Float(2.75));
        assert_eq!(Value::parse("1e3", &[]), Value::Float(1000.0));
        assert_eq!(Value::parse("abc", &[]), Value::Str("abc".into()));
    }

    #[test]
    fn parse_null_tokens() {
        assert_eq!(Value::parse("", &[""]), Value::Null);
        assert_eq!(Value::parse("?", &["", "?"]), Value::Null);
        assert_eq!(Value::parse("NULL", &["NULL"]), Value::Null);
        // Not a null token -> string.
        assert_eq!(Value::parse("?", &[""]), Value::Str("?".into()));
    }

    #[test]
    fn nan_becomes_null() {
        assert_eq!(Value::parse("NaN", &[]), Value::Null);
        assert_eq!(Value::from(f64::NAN), Value::Null);
    }

    #[test]
    fn ord_is_total_on_samples() {
        let vals = [
            Value::Null,
            Value::Int(-5),
            Value::Int(0),
            Value::Float(0.5),
            Value::Int(1),
            Value::Str("a".into()),
            Value::Str("b".into()),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                match i.cmp(&j) {
                    Ordering::Less => assert!(a < b, "{a:?} < {b:?}"),
                    Ordering::Equal => assert_eq!(a, b),
                    Ordering::Greater => assert!(a > b, "{a:?} > {b:?}"),
                }
            }
        }
    }

    #[test]
    fn hash_consistent_with_eq_for_int_float() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(h(&Value::Int(2)), h(&Value::Float(2.0)));
    }

    #[test]
    fn display_round_trip_for_common_values() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Null.to_string(), "");
    }
}
