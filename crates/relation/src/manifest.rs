//! Content manifest of a relation: a stable 64-bit fingerprint used by the
//! checkpoint subsystem to reject resuming a dump against the wrong input.
//!
//! Discovery never reads raw cell values — every check compares the dense
//! rank codes produced by the column encoder. The manifest therefore hashes
//! exactly the state discovery observes: row/column counts, column names,
//! inferred data types, distinct counts, null flags, and the full rank-code
//! vectors. Two relations with the same manifest are indistinguishable to
//! every checker backend, so a checkpoint taken on one resumes correctly on
//! the other; any difference in the hashed fields changes candidate
//! verdicts somewhere and must reject the resume.
//!
//! The hash is FNV-1a over a framed little-endian byte stream — fully
//! specified here (not `std`'s `DefaultHasher`, whose output may change
//! between Rust releases) so dumps stay valid across toolchain upgrades.

use crate::datatype::DataType;
use crate::relation::Relation;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 over framed fields.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Length-prefixed frame: `len || bytes`, so adjacent variable-length
    /// fields (e.g. column names) can never alias each other.
    fn frame(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.bytes(bytes);
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
}

/// Stable tag for a [`DataType`] (independent of discriminant order).
fn type_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
    }
}

/// The manifest hash of `rel`: a stable FNV-1a 64 fingerprint of the
/// rank-encoded content (see the module docs for exactly what is hashed
/// and why that is the right equivalence for checkpoint resume).
pub fn manifest_hash(rel: &Relation) -> u64 {
    let mut h = Fnv::new();
    // Version the framing itself so the hashing scheme can evolve.
    h.bytes(b"ocdd-manifest/1");
    h.u64(rel.num_rows() as u64);
    h.u64(rel.num_columns() as u64);
    for col in 0..rel.num_columns() {
        let meta = rel.meta(col);
        h.frame(meta.name.as_bytes());
        h.bytes(&[type_tag(meta.data_type), u8::from(meta.has_nulls)]);
        h.u64(meta.distinct as u64);
        for &code in rel.codes(col) {
            h.u32(code);
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::value::Value;

    fn rel(rows: &[(i64, &str)]) -> Relation {
        let mut b = RelationBuilder::new(vec!["n", "s"]);
        for &(n, s) in rows {
            b.push_row(vec![Value::Int(n), Value::Str(s.into())])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn equal_relations_hash_equal() {
        let a = rel(&[(1, "x"), (3, "y"), (2, "z")]);
        let b = rel(&[(1, "x"), (3, "y"), (2, "z")]);
        assert_eq!(manifest_hash(&a), manifest_hash(&b));
    }

    #[test]
    fn row_permutation_changes_hash() {
        let a = rel(&[(1, "x"), (3, "y"), (2, "z")]);
        let b = rel(&[(3, "y"), (1, "x"), (2, "z")]);
        assert_ne!(manifest_hash(&a), manifest_hash(&b));
    }

    #[test]
    fn renamed_column_changes_hash() {
        let mut b1 = RelationBuilder::new(vec!["a"]);
        b1.push_row(vec![Value::Int(1)]).unwrap();
        let mut b2 = RelationBuilder::new(vec!["b"]);
        b2.push_row(vec![Value::Int(1)]).unwrap();
        assert_ne!(manifest_hash(&b1.finish()), manifest_hash(&b2.finish()));
    }

    #[test]
    fn rank_equivalent_values_hash_equal() {
        // Discovery only sees rank codes: (10, 20) and (7, 9) are the same
        // single-column instance to every checker, and the manifest agrees.
        let mut b1 = RelationBuilder::new(vec!["n"]);
        b1.push_row(vec![Value::Int(10)]).unwrap();
        b1.push_row(vec![Value::Int(20)]).unwrap();
        let mut b2 = RelationBuilder::new(vec!["n"]);
        b2.push_row(vec![Value::Int(7)]).unwrap();
        b2.push_row(vec![Value::Int(9)]).unwrap();
        assert_eq!(manifest_hash(&b1.finish()), manifest_hash(&b2.finish()));
    }

    #[test]
    fn distinct_count_guards_rank_collisions() {
        let a = rel(&[(1, "x"), (1, "x")]);
        let b = rel(&[(1, "x"), (2, "x")]);
        assert_ne!(manifest_hash(&a), manifest_hash(&b));
    }

    #[test]
    fn name_framing_does_not_alias() {
        // ("ab", "c") vs ("a", "bc") — length prefixes keep these apart.
        let mut b1 = RelationBuilder::new(vec!["ab", "c"]);
        b1.push_row(vec![Value::Int(1), Value::Int(1)]).unwrap();
        let mut b2 = RelationBuilder::new(vec!["a", "bc"]);
        b2.push_row(vec![Value::Int(1), Value::Int(1)]).unwrap();
        assert_ne!(manifest_hash(&b1.finish()), manifest_hash(&b2.finish()));
    }
}
