//! Column statistics: distinct counts and the Shannon entropy of
//! Definition 5.1, used by the quasi-constant analysis (§5.4).

use crate::relation::{ColumnId, Relation};

/// Aggregated statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column index.
    pub column: ColumnId,
    /// Number of distinct equivalence classes (NULL is one class).
    pub distinct: usize,
    /// Shannon entropy `H(A) = -Σ p log p` over value frequencies, in nats.
    pub entropy: f64,
    /// True if the column has a single equivalence class.
    pub is_constant: bool,
}

/// Compute the Shannon entropy of column `col` (Definition 5.1).
///
/// Constant columns have entropy 0; an all-distinct column of `m` rows has
/// entropy `ln m`.
pub fn column_entropy(rel: &Relation, col: ColumnId) -> f64 {
    let m = rel.num_rows();
    if m == 0 {
        return 0.0;
    }
    // Codes are dense ranks in [0, distinct), so a frequency table suffices.
    let mut freq = vec![0usize; rel.meta(col).distinct.max(1)];
    for &c in rel.codes(col) {
        freq[c as usize] += 1;
    }
    let m = m as f64;
    freq.iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / m;
            -p * p.ln()
        })
        .sum()
}

/// Statistics for every column of `rel`.
pub fn all_column_stats(rel: &Relation) -> Vec<ColumnStats> {
    (0..rel.num_columns())
        .map(|c| {
            let meta = rel.meta(c);
            ColumnStats {
                column: c,
                distinct: meta.distinct,
                entropy: column_entropy(rel, c),
                is_constant: meta.is_constant(),
            }
        })
        .collect()
}

/// Column ids sorted by decreasing entropy (the order in which the Figure 7
/// experiment adds columns; constant columns come last).
pub fn columns_by_decreasing_entropy(rel: &Relation) -> Vec<ColumnId> {
    let mut stats = all_column_stats(rel);
    stats.sort_by(|a, b| {
        b.entropy
            .partial_cmp(&a.entropy)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.column.cmp(&b.column))
    });
    stats.into_iter().map(|s| s.column).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::value::Value;

    fn one_col(vals: Vec<i64>) -> Relation {
        Relation::from_columns(vec![(
            "a".to_string(),
            vals.into_iter().map(Value::Int).collect(),
        )])
        .unwrap()
    }

    #[test]
    fn constant_column_entropy_zero() {
        let r = one_col(vec![5, 5, 5, 5]);
        assert_eq!(column_entropy(&r, 0), 0.0);
    }

    #[test]
    fn all_distinct_entropy_is_log_m() {
        let r = one_col(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let h = column_entropy(&r, 0);
        assert!((h - (8f64).ln()).abs() < 1e-12, "H = {h}");
    }

    #[test]
    fn uniform_two_class_entropy_is_ln2() {
        let r = one_col(vec![0, 1, 0, 1]);
        assert!((column_entropy(&r, 0) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn skewed_entropy_below_uniform() {
        let uniform = one_col(vec![0, 0, 1, 1]);
        let skewed = one_col(vec![0, 0, 0, 1]);
        assert!(column_entropy(&skewed, 0) < column_entropy(&uniform, 0));
    }

    #[test]
    fn empty_relation_entropy_zero() {
        let r = one_col(vec![]);
        assert_eq!(column_entropy(&r, 0), 0.0);
    }

    #[test]
    fn nulls_form_a_single_class() {
        let r = Relation::from_columns(vec![(
            "a".to_string(),
            vec![Value::Null, Value::Null, Value::Int(1), Value::Int(1)],
        )])
        .unwrap();
        assert!((column_entropy(&r, 0) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn entropy_ordering_ranks_diverse_columns_first() {
        let r = Relation::from_columns(vec![
            ("const".to_string(), vec![Value::Int(0); 6]),
            ("diverse".to_string(), (0..6).map(Value::Int).collect()),
            (
                "quasi".to_string(),
                vec![0, 0, 0, 0, 0, 1].into_iter().map(Value::Int).collect(),
            ),
        ])
        .unwrap();
        assert_eq!(columns_by_decreasing_entropy(&r), vec![1, 2, 0]);
    }

    #[test]
    fn all_stats_cover_all_columns() {
        let r = Relation::from_columns(vec![
            ("a".to_string(), vec![Value::Int(1), Value::Int(2)]),
            ("b".to_string(), vec![Value::Int(1), Value::Int(1)]),
        ])
        .unwrap();
        let stats = all_column_stats(&r);
        assert_eq!(stats.len(), 2);
        assert!(!stats[0].is_constant);
        assert!(stats[1].is_constant);
        assert_eq!(stats[0].distinct, 2);
    }
}
