//! Lexicographic index sorting — the `generateIndex` primitive of
//! Algorithm 2 in the paper.
//!
//! Given a relation and a list of columns `X`, [`sort_index_by`] returns the
//! permutation of row ids that orders the rows by `X` under the operator
//! `⪯` of Definition 2.1 (lexicographic, NULLS FIRST). Because columns are
//! rank encoded over dense `u32` codes in `[0, distinct)`, the sort never
//! needs a general comparator: every kernel below is distribution-based.
//!
//! # Kernel selection
//!
//! * `[]` — identity permutation.
//! * `[A]` — one **counting sort** over `[0, distinct(A))`: `O(m + d)`.
//! * Short lists whose code widths sum to ≤ 64 bits — rows are packed into
//!   a single `u64` key and sorted by a stable **LSD radix sort**:
//!   `O(p·(m + 2^digit))` for `p = ⌈bits/digit⌉` passes.
//! * Anything else — **chained counting refinement**: the list is processed
//!   column by column, each step two stable counting scatters
//!   (`O(m + d_i)`), carrying run ids so earlier columns stay dominant.
//!
//! All kernels are stable, so ties keep their original row order, exactly
//! like the comparison sorts they replace. The comparator path survives as
//! [`sort_index_by_comparator`] / [`refine_index_comparator`] — the
//! differential-test oracle and the paper-literal fallback.
//!
//! [`kernel_stats`] counts which kernel ran (process-global relaxed
//! atomics; snapshot deltas feed the discovery result and the ablation
//! bench).

use crate::relation::{ColumnId, Relation};
use std::cmp::Ordering;

/// Compare rows `a` and `b` of `rel` on the attribute list `cols`
/// (lexicographic over the list, per-column by rank code).
#[inline]
pub fn cmp_rows(rel: &Relation, cols: &[ColumnId], a: usize, b: usize) -> Ordering {
    for &c in cols {
        let ca = rel.code(a, c);
        let cb = rel.code(b, c);
        if ca != cb {
            return ca.cmp(&cb);
        }
    }
    Ordering::Equal
}

pub mod kernel_stats {
    //! Process-global counters of which sort kernel ran.
    //!
    //! Relaxed atomics: cheap enough for the hot path, and observability
    //! only — values are monotone counters, never part of a result.

    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTING: AtomicU64 = AtomicU64::new(0);
    static PACKED_RADIX: AtomicU64 = AtomicU64::new(0);
    static CHAINED_REFINE: AtomicU64 = AtomicU64::new(0);
    static COMPARATOR: AtomicU64 = AtomicU64::new(0);
    static SCAN_SCALAR: AtomicU64 = AtomicU64::new(0);
    static SCAN_BLOCK: AtomicU64 = AtomicU64::new(0);
    static SCAN_SIMD: AtomicU64 = AtomicU64::new(0);

    #[inline]
    pub(super) fn bump_counting() {
        // lint: allow(atomics-audit, monotone observability counter; reported in stats only, never on the result path)
        COUNTING.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(super) fn bump_packed_radix() {
        // lint: allow(atomics-audit, monotone observability counter; reported in stats only, never on the result path)
        PACKED_RADIX.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(super) fn bump_chained_refine() {
        // lint: allow(atomics-audit, monotone observability counter; reported in stats only, never on the result path)
        CHAINED_REFINE.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(super) fn bump_comparator() {
        // lint: allow(atomics-audit, monotone observability counter; reported in stats only, never on the result path)
        COMPARATOR.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn bump_scan_scalar() {
        // lint: allow(atomics-audit, monotone observability counter; reported in stats only, never on the result path)
        SCAN_SCALAR.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn bump_scan_block() {
        // lint: allow(atomics-audit, monotone observability counter; reported in stats only, never on the result path)
        SCAN_BLOCK.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub(crate) fn bump_scan_simd() {
        // lint: allow(atomics-audit, monotone observability counter; reported in stats only, never on the result path)
        SCAN_SIMD.fetch_add(1, Ordering::Relaxed);
    }

    /// Monotone totals since process start.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct KernelCounts {
        /// Single-column counting sorts.
        pub counting: u64,
        /// Packed-`u64` LSD radix sorts.
        pub packed_radix: u64,
        /// Chained counting-refinement passes (one per column refined).
        pub chained_refine: u64,
        /// Comparator (oracle / fallback) sorts.
        pub comparator: u64,
        /// Adjacent-pair scans run by the scalar kernel (small inputs
        /// and the differential oracle).
        pub scan_scalar: u64,
        /// Adjacent-pair scans run by the portable blockwise kernels.
        pub scan_block: u64,
        /// Adjacent-pair scans run by the explicit SIMD kernels
        /// (`simd` cargo feature).
        pub scan_simd: u64,
    }

    impl KernelCounts {
        /// Counter increments between `earlier` and `self`.
        pub fn since(&self, earlier: &KernelCounts) -> KernelCounts {
            KernelCounts {
                counting: self.counting - earlier.counting,
                packed_radix: self.packed_radix - earlier.packed_radix,
                chained_refine: self.chained_refine - earlier.chained_refine,
                comparator: self.comparator - earlier.comparator,
                scan_scalar: self.scan_scalar - earlier.scan_scalar,
                scan_block: self.scan_block - earlier.scan_block,
                scan_simd: self.scan_simd - earlier.scan_simd,
            }
        }

        /// Field-wise sum — used by checkpoint resume to add the kernel
        /// work recorded in a snapshot to the counters of the resuming
        /// process, so `resumed == uninterrupted` holds for kernel totals
        /// too.
        pub fn plus(&self, other: &KernelCounts) -> KernelCounts {
            KernelCounts {
                counting: self.counting + other.counting,
                packed_radix: self.packed_radix + other.packed_radix,
                chained_refine: self.chained_refine + other.chained_refine,
                comparator: self.comparator + other.comparator,
                scan_scalar: self.scan_scalar + other.scan_scalar,
                scan_block: self.scan_block + other.scan_block,
                scan_simd: self.scan_simd + other.scan_simd,
            }
        }

        /// Sum over all sort kernels (scans are counted separately —
        /// one candidate check usually pairs one sort with one scan).
        pub fn total(&self) -> u64 {
            self.counting + self.packed_radix + self.chained_refine + self.comparator
        }

        /// Sum over all scan kernels.
        pub fn total_scans(&self) -> u64 {
            self.scan_scalar + self.scan_block + self.scan_simd
        }
    }

    /// Read the current totals.
    pub fn snapshot() -> KernelCounts {
        KernelCounts {
            // lint: allow(atomics-audit, observability snapshot; approximate totals are acceptable and never feed results)
            counting: COUNTING.load(Ordering::Relaxed),
            // lint: allow(atomics-audit, observability snapshot; approximate totals are acceptable and never feed results)
            packed_radix: PACKED_RADIX.load(Ordering::Relaxed),
            // lint: allow(atomics-audit, observability snapshot; approximate totals are acceptable and never feed results)
            chained_refine: CHAINED_REFINE.load(Ordering::Relaxed),
            // lint: allow(atomics-audit, observability snapshot; approximate totals are acceptable and never feed results)
            comparator: COMPARATOR.load(Ordering::Relaxed),
            // lint: allow(atomics-audit, observability snapshot; approximate totals are acceptable and never feed results)
            scan_scalar: SCAN_SCALAR.load(Ordering::Relaxed),
            // lint: allow(atomics-audit, observability snapshot; approximate totals are acceptable and never feed results)
            scan_block: SCAN_BLOCK.load(Ordering::Relaxed),
            // lint: allow(atomics-audit, observability snapshot; approximate totals are acceptable and never feed results)
            scan_simd: SCAN_SIMD.load(Ordering::Relaxed),
        }
    }
}

/// Bits needed to store codes of a column with `distinct` values
/// (0 for constant columns — they never affect an ordering).
#[inline]
fn code_bits(distinct: usize) -> u32 {
    if distinct <= 1 {
        0
    } else {
        usize::BITS - (distinct - 1).leading_zeros()
    }
}

/// Total packed-key width of `cols`, or `None` when it exceeds 64 bits.
fn packed_bits(rel: &Relation, cols: &[ColumnId]) -> Option<u32> {
    let mut total = 0u32;
    for &c in cols {
        total += code_bits(rel.meta(c).distinct);
        if total > 64 {
            return None;
        }
    }
    Some(total)
}

/// Stable counting sort of the identity permutation by one code column.
// lint: allow(panic-reachability, codes are dense ranks < distinct and starts is sized distinct+1, so every histogram index is in bounds)
fn counting_sort_single(codes: &[u32], distinct: usize) -> Vec<u32> {
    kernel_stats::bump_counting();
    let m = codes.len();
    let d = distinct.max(1);
    let mut starts = vec![0u32; d + 1];
    for &c in codes {
        starts[c as usize + 1] += 1;
    }
    for i in 1..=d {
        starts[i] += starts[i - 1];
    }
    let mut out = vec![0u32; m];
    for (row, &c) in codes.iter().enumerate() {
        let slot = &mut starts[c as usize];
        out[*slot as usize] = row as u32;
        *slot += 1;
    }
    out
}

/// Pack each row's codes on `cols` into one `u64` (leftmost column in the
/// most significant bits). Constant columns contribute zero bits.
fn pack_keys(rel: &Relation, cols: &[ColumnId], rows: impl Iterator<Item = u32>) -> Vec<u64> {
    let widths: Vec<(ColumnId, u32)> = cols
        .iter()
        .map(|&c| (c, code_bits(rel.meta(c).distinct)))
        .collect();
    rows.map(|r| {
        let mut key = 0u64;
        for &(c, bits) in &widths {
            key = (key << bits) | u64::from(rel.code(r as usize, c));
        }
        key
    })
    .collect()
}

/// Stable LSD radix sort of `(keys, rows)` pairs by `total_bits` key bits.
// lint: allow(panic-reachability, digits are masked to buckets-1 with starts sized buckets+1, and scatter targets are sized m)
fn radix_sort_packed(mut keys: Vec<u64>, mut rows: Vec<u32>, total_bits: u32) -> Vec<u32> {
    kernel_stats::bump_packed_radix();
    let m = rows.len();
    if m <= 1 || total_bits == 0 {
        return rows;
    }
    // Narrow digits keep the bucket table cache-resident for small inputs.
    let digit_bits: u32 = if m < (1 << 14) { 8 } else { 16 };
    let buckets = 1usize << digit_bits;
    let mask = (buckets - 1) as u64;

    let mut scratch_keys = vec![0u64; m];
    let mut scratch_rows = vec![0u32; m];
    let mut starts = vec![0u32; buckets + 1];

    let mut shift = 0u32;
    while shift < total_bits {
        starts.fill(0);
        for &k in &keys {
            starts[((k >> shift) & mask) as usize + 1] += 1;
        }
        for i in 1..=buckets {
            starts[i] += starts[i - 1];
        }
        for i in 0..m {
            let digit = ((keys[i] >> shift) & mask) as usize;
            let slot = &mut starts[digit];
            scratch_keys[*slot as usize] = keys[i];
            scratch_rows[*slot as usize] = rows[i];
            *slot += 1;
        }
        std::mem::swap(&mut keys, &mut scratch_keys);
        std::mem::swap(&mut rows, &mut scratch_rows);
        shift += digit_bits;
    }
    rows
}

/// State carried by the chained counting-refinement kernel: a permutation
/// plus the run (equivalence-class) id of every position under the columns
/// refined so far.
struct RefineState {
    rows: Vec<u32>,
    runs: Vec<u32>,
    num_runs: usize,
}

impl RefineState {
    /// Everything in one run, original row order: the empty-prefix state.
    fn identity(m: usize) -> RefineState {
        RefineState {
            rows: (0..m as u32).collect(),
            runs: vec![0; m],
            num_runs: if m == 0 { 0 } else { 1 },
        }
    }

    /// State for an existing permutation already sorted by `prefix`.
    // lint: allow(panic-reachability, i ranges over 1..m with base and runs both of length m)
    fn from_sorted(rel: &Relation, base: &[u32], prefix: &[ColumnId]) -> RefineState {
        let m = base.len();
        let mut runs = vec![0u32; m];
        let mut current = 0u32;
        for i in 1..m {
            if cmp_rows(rel, prefix, base[i - 1] as usize, base[i] as usize) != Ordering::Equal {
                current += 1;
            }
            runs[i] = current;
        }
        RefineState {
            rows: base.to_vec(),
            runs,
            num_runs: if m == 0 { 0 } else { current as usize + 1 },
        }
    }

    /// Refine by one more column: two stable counting scatters. After the
    /// call, `rows` is ordered by (previous runs, `col`) and `runs` holds
    /// the new, finer run ids.
    // lint: allow(panic-reachability, rows hold row ids < m, codes are dense ranks < d, and both scatter tables are sized by their counting pass)
    fn refine_by(&mut self, rel: &Relation, col: ColumnId) {
        kernel_stats::bump_chained_refine();
        let m = self.rows.len();
        if m <= 1 {
            return;
        }
        let codes = rel.codes(col);
        let d = rel.meta(col).distinct.max(1);

        // Pass 1: stable counting sort by the new column's code.
        let mut starts = vec![0u32; d + 1];
        for &r in &self.rows {
            starts[codes[r as usize] as usize + 1] += 1;
        }
        for i in 1..=d {
            starts[i] += starts[i - 1];
        }
        let mut rows_by_code = vec![0u32; m];
        let mut runs_by_code = vec![0u32; m];
        for (i, &r) in self.rows.iter().enumerate() {
            let slot = &mut starts[codes[r as usize] as usize];
            rows_by_code[*slot as usize] = r;
            runs_by_code[*slot as usize] = self.runs[i];
            *slot += 1;
        }

        // Pass 2: stable counting sort by run id — restores the dominance
        // of the already-sorted prefix; within a run, pass 1's code order
        // survives by stability.
        let mut starts = vec![0u32; self.num_runs + 1];
        for &g in &runs_by_code {
            starts[g as usize + 1] += 1;
        }
        for i in 1..=self.num_runs {
            starts[i] += starts[i - 1];
        }
        let mut rows_out = vec![0u32; m];
        let mut runs_old = vec![0u32; m];
        for i in 0..m {
            let slot = &mut starts[runs_by_code[i] as usize];
            rows_out[*slot as usize] = rows_by_code[i];
            runs_old[*slot as usize] = runs_by_code[i];
            *slot += 1;
        }

        // New run ids: split whenever the old run or the new code changes.
        let mut runs_new = vec![0u32; m];
        let mut current = 0u32;
        for i in 1..m {
            if runs_old[i] != runs_old[i - 1]
                || codes[rows_out[i] as usize] != codes[rows_out[i - 1] as usize]
            {
                current += 1;
            }
            runs_new[i] = current;
        }
        self.rows = rows_out;
        self.runs = runs_new;
        self.num_runs = current as usize + 1;
    }
}

/// Row-id permutation sorting `rel` by the attribute list `cols`.
///
/// The sort is stable, so ties keep their original row order; callers that
/// scan adjacent pairs must treat equal-`cols` neighbours explicitly.
pub fn sort_index_by(rel: &Relation, cols: &[ColumnId]) -> Vec<u32> {
    let m = rel.num_rows();
    match cols {
        [] => (0..m as u32).collect(),
        [single] => counting_sort_single(rel.codes(*single), rel.meta(*single).distinct),
        _ => match packed_bits(rel, cols) {
            Some(bits) => {
                let keys = pack_keys(rel, cols, 0..m as u32);
                radix_sort_packed(keys, (0..m as u32).collect(), bits)
            }
            None => {
                let mut state = RefineState::identity(m);
                for &c in cols {
                    state.refine_by(rel, c);
                }
                state.rows
            }
        },
    }
}

/// Row-id permutation for a single column (common fast path for level-2
/// candidates and column reduction).
pub fn sort_index_by_single(rel: &Relation, col: ColumnId) -> Vec<u32> {
    sort_index_by(rel, &[col])
}

/// Refine an existing permutation `base` (already sorted by some prefix `P`)
/// into one sorted by `P ++ cols`, reusing the work done for the prefix.
///
/// This is the building block of the cached-prefix optimization: run ids of
/// the `P`-equal classes are recovered in one scan, then each extra column
/// costs two stable counting scatters (`O(m + distinct)`), never a
/// comparison sort.
pub fn refine_index(
    rel: &Relation,
    base: &[u32],
    prefix: &[ColumnId],
    cols: &[ColumnId],
) -> Vec<u32> {
    if cols.is_empty() || base.len() <= 1 {
        return base.to_vec();
    }
    let mut state = RefineState::from_sorted(rel, base, prefix);
    for &c in cols {
        state.refine_by(rel, c);
    }
    state.rows
}

/// Comparison-sort implementation of [`sort_index_by`]: the paper-literal
/// path, kept as the differential-test oracle and fallback.
pub fn sort_index_by_comparator(rel: &Relation, cols: &[ColumnId]) -> Vec<u32> {
    kernel_stats::bump_comparator();
    let mut index: Vec<u32> = (0..rel.num_rows() as u32).collect();
    match cols {
        [] => index,
        [single] => {
            let codes = rel.codes(*single);
            index.sort_by_key(|&r| codes[r as usize]);
            index
        }
        _ => {
            index.sort_by(|&a, &b| cmp_rows(rel, cols, a as usize, b as usize));
            index
        }
    }
}

/// Comparison-sort implementation of [`refine_index`] (oracle/fallback).
pub fn refine_index_comparator(
    rel: &Relation,
    base: &[u32],
    prefix: &[ColumnId],
    cols: &[ColumnId],
) -> Vec<u32> {
    kernel_stats::bump_comparator();
    let mut out = base.to_vec();
    let n = out.len();
    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n
            && cmp_rows(rel, prefix, out[start] as usize, out[end] as usize) == Ordering::Equal
        {
            end += 1;
        }
        if end - start > 1 {
            out[start..end].sort_by(|&a, &b| cmp_rows(rel, cols, a as usize, b as usize));
        }
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::value::Value;

    fn rel(rows: &[(i64, i64)]) -> Relation {
        let mut b = RelationBuilder::new(vec!["a", "b"]);
        for &(x, y) in rows {
            b.push_row(vec![Value::Int(x), Value::Int(y)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn single_column_sort() {
        let r = rel(&[(3, 0), (1, 0), (2, 0)]);
        assert_eq!(sort_index_by_single(&r, 0), vec![1, 2, 0]);
    }

    #[test]
    fn lexicographic_two_column_sort() {
        let r = rel(&[(2, 1), (1, 9), (2, 0), (1, 3)]);
        // Sorted by [a, b]: (1,3), (1,9), (2,0), (2,1) -> rows 3,1,2,0
        assert_eq!(sort_index_by(&r, &[0, 1]), vec![3, 1, 2, 0]);
        // Sorted by [b, a]: values b: 1,9,0,3 -> rows 2,0,3,1
        assert_eq!(sort_index_by(&r, &[1, 0]), vec![2, 0, 3, 1]);
    }

    #[test]
    fn empty_list_returns_identity() {
        let r = rel(&[(5, 5), (4, 4)]);
        assert_eq!(sort_index_by(&r, &[]), vec![0, 1]);
    }

    #[test]
    fn stable_on_ties() {
        let r = rel(&[(1, 7), (1, 3), (1, 5)]);
        // All tie on column a; stability keeps original order.
        assert_eq!(sort_index_by(&r, &[0]), vec![0, 1, 2]);
    }

    #[test]
    fn nulls_sort_first() {
        let mut b = RelationBuilder::new(vec!["a"]);
        b.push_row(vec![Value::Int(1)]).unwrap();
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![Value::Int(-5)]).unwrap();
        let r = b.finish();
        assert_eq!(sort_index_by_single(&r, 0), vec![1, 2, 0]);
    }

    #[test]
    fn refine_matches_full_sort() {
        let r = rel(&[(2, 1), (1, 9), (2, 0), (1, 3), (2, 1)]);
        let by_a = sort_index_by(&r, &[0]);
        let refined = refine_index(&r, &by_a, &[0], &[1]);
        assert_eq!(refined, sort_index_by(&r, &[0, 1]));
    }

    #[test]
    fn cmp_rows_agrees_with_sort() {
        let r = rel(&[(2, 1), (1, 9), (2, 0)]);
        let idx = sort_index_by(&r, &[0, 1]);
        for w in idx.windows(2) {
            assert_ne!(
                cmp_rows(&r, &[0, 1], w[0] as usize, w[1] as usize),
                Ordering::Greater
            );
        }
    }

    /// Deterministic pseudo-random relation with `cols` columns over a small
    /// domain (many ties, many runs).
    fn pseudo_random_relation(cols: usize, rows: usize, domain: i64, seed: u64) -> Relation {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let named = (0..cols)
            .map(|c| {
                (
                    format!("c{c}"),
                    (0..rows)
                        .map(|_| Value::Int((next() % domain as u64) as i64))
                        .collect(),
                )
            })
            .collect();
        Relation::from_columns(named).unwrap()
    }

    #[test]
    fn kernels_match_comparator_oracle() {
        for seed in 0..12u64 {
            let r = pseudo_random_relation(4, 64, 5, seed + 1);
            let lists: Vec<Vec<ColumnId>> = vec![
                vec![0],
                vec![3],
                vec![0, 1],
                vec![2, 1, 0],
                vec![3, 2, 1, 0],
                vec![1, 1, 2], // duplicate columns: later copies are no-ops
            ];
            for cols in &lists {
                assert_eq!(
                    sort_index_by(&r, cols),
                    sort_index_by_comparator(&r, cols),
                    "seed {seed}, cols {cols:?}"
                );
            }
        }
    }

    #[test]
    fn chained_kernel_matches_oracle_beyond_packing_width() {
        // Eight near-key columns at ~9 bits each exceed 64 packed bits,
        // forcing the chained counting-refinement kernel.
        let rows = 512;
        let r = pseudo_random_relation(8, rows, 60_000, 99);
        let cols: Vec<ColumnId> = (0..8).collect();
        assert!(
            packed_bits(&r, &cols).is_none(),
            "test must exercise the non-packable path"
        );
        assert_eq!(
            sort_index_by(&r, &cols),
            sort_index_by_comparator(&r, &cols)
        );
    }

    #[test]
    fn refine_matches_comparator_oracle() {
        for seed in 0..12u64 {
            let r = pseudo_random_relation(4, 48, 4, seed + 101);
            let base = sort_index_by(&r, &[2]);
            for cols in [vec![0], vec![0, 1], vec![3, 1, 0]] {
                assert_eq!(
                    refine_index(&r, &base, &[2], &cols),
                    refine_index_comparator(&r, &base, &[2], &cols),
                    "seed {seed}, cols {cols:?}"
                );
            }
        }
    }

    #[test]
    fn packed_radix_large_input_uses_wide_digits() {
        // > 2^14 rows exercises the 16-bit digit path.
        let rows = 20_000;
        let r = pseudo_random_relation(2, rows, 300, 7);
        let sorted = sort_index_by(&r, &[0, 1]);
        assert_eq!(sorted.len(), rows);
        for w in sorted.windows(2) {
            assert_ne!(
                cmp_rows(&r, &[0, 1], w[0] as usize, w[1] as usize),
                Ordering::Greater
            );
        }
        // Stability: ties keep ascending row order.
        for w in sorted.windows(2) {
            if cmp_rows(&r, &[0, 1], w[0] as usize, w[1] as usize) == Ordering::Equal {
                assert!(w[0] < w[1], "stable sort keeps original order on ties");
            }
        }
    }

    #[test]
    fn constant_columns_cost_no_key_bits() {
        assert_eq!(code_bits(0), 0);
        assert_eq!(code_bits(1), 0);
        assert_eq!(code_bits(2), 1);
        assert_eq!(code_bits(3), 2);
        assert_eq!(code_bits(256), 8);
        assert_eq!(code_bits(257), 9);
    }

    #[test]
    fn kernel_stats_count_up() {
        let before = kernel_stats::snapshot();
        let r = rel(&[(3, 1), (1, 2), (2, 0)]);
        let _ = sort_index_by(&r, &[0]);
        let _ = sort_index_by(&r, &[0, 1]);
        let _ = sort_index_by_comparator(&r, &[0, 1]);
        let delta = kernel_stats::snapshot().since(&before);
        assert!(delta.counting >= 1);
        assert!(delta.packed_radix >= 1);
        assert!(delta.comparator >= 1);
    }

    #[test]
    fn empty_relation_all_kernels() {
        let r = Relation::from_columns(vec![
            ("a".to_string(), Vec::new()),
            ("b".to_string(), Vec::new()),
        ])
        .unwrap();
        assert!(sort_index_by(&r, &[0]).is_empty());
        assert!(sort_index_by(&r, &[0, 1]).is_empty());
        assert!(refine_index(&r, &[], &[0], &[1]).is_empty());
    }
}
