//! Lexicographic index sorting — the `generateIndex` primitive of
//! Algorithm 2 in the paper.
//!
//! Given a relation and a list of columns `X`, [`sort_index_by`] returns the
//! permutation of row ids that orders the rows by `X` under the operator
//! `⪯` of Definition 2.1 (lexicographic, NULLS FIRST). Because columns are
//! rank encoded, the comparator is a short loop of `u32` comparisons.

use crate::relation::{ColumnId, Relation};
use std::cmp::Ordering;

/// Compare rows `a` and `b` of `rel` on the attribute list `cols`
/// (lexicographic over the list, per-column by rank code).
#[inline]
pub fn cmp_rows(rel: &Relation, cols: &[ColumnId], a: usize, b: usize) -> Ordering {
    for &c in cols {
        let ca = rel.code(a, c);
        let cb = rel.code(b, c);
        if ca != cb {
            return ca.cmp(&cb);
        }
    }
    Ordering::Equal
}

/// Row-id permutation sorting `rel` by the attribute list `cols`.
///
/// The sort is stable, so ties keep their original row order; callers that
/// scan adjacent pairs must treat equal-`cols` neighbours explicitly.
pub fn sort_index_by(rel: &Relation, cols: &[ColumnId]) -> Vec<u32> {
    let mut index: Vec<u32> = (0..rel.num_rows() as u32).collect();
    match cols {
        [] => index,
        [single] => {
            let codes = rel.codes(*single);
            index.sort_by_key(|&r| codes[r as usize]);
            index
        }
        _ => {
            index.sort_by(|&a, &b| cmp_rows(rel, cols, a as usize, b as usize));
            index
        }
    }
}

/// Row-id permutation for a single column (common fast path for level-2
/// candidates and column reduction).
pub fn sort_index_by_single(rel: &Relation, col: ColumnId) -> Vec<u32> {
    sort_index_by(rel, &[col])
}

/// Refine an existing permutation `base` (already sorted by some prefix `P`)
/// into one sorted by `P ++ cols`, reusing the work done for the prefix.
///
/// This is the building block of the cached-prefix optimization: within each
/// run of `P`-equal rows the permutation is re-sorted by `cols` only.
pub fn refine_index(
    rel: &Relation,
    base: &[u32],
    prefix: &[ColumnId],
    cols: &[ColumnId],
) -> Vec<u32> {
    let mut out = base.to_vec();
    let n = out.len();
    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n
            && cmp_rows(rel, prefix, out[start] as usize, out[end] as usize) == Ordering::Equal
        {
            end += 1;
        }
        if end - start > 1 {
            out[start..end].sort_by(|&a, &b| cmp_rows(rel, cols, a as usize, b as usize));
        }
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::value::Value;

    fn rel(rows: &[(i64, i64)]) -> Relation {
        let mut b = RelationBuilder::new(vec!["a", "b"]);
        for &(x, y) in rows {
            b.push_row(vec![Value::Int(x), Value::Int(y)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn single_column_sort() {
        let r = rel(&[(3, 0), (1, 0), (2, 0)]);
        assert_eq!(sort_index_by_single(&r, 0), vec![1, 2, 0]);
    }

    #[test]
    fn lexicographic_two_column_sort() {
        let r = rel(&[(2, 1), (1, 9), (2, 0), (1, 3)]);
        // Sorted by [a, b]: (1,3), (1,9), (2,0), (2,1) -> rows 3,1,2,0
        assert_eq!(sort_index_by(&r, &[0, 1]), vec![3, 1, 2, 0]);
        // Sorted by [b, a]: (2,0), (0? no)... values b: 1,9,0,3 -> rows 2,0,3,1
        assert_eq!(sort_index_by(&r, &[1, 0]), vec![2, 0, 3, 1]);
    }

    #[test]
    fn empty_list_returns_identity() {
        let r = rel(&[(5, 5), (4, 4)]);
        assert_eq!(sort_index_by(&r, &[]), vec![0, 1]);
    }

    #[test]
    fn stable_on_ties() {
        let r = rel(&[(1, 7), (1, 3), (1, 5)]);
        // All tie on column a; stability keeps original order.
        assert_eq!(sort_index_by(&r, &[0]), vec![0, 1, 2]);
    }

    #[test]
    fn nulls_sort_first() {
        let mut b = RelationBuilder::new(vec!["a"]);
        b.push_row(vec![Value::Int(1)]).unwrap();
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![Value::Int(-5)]).unwrap();
        let r = b.finish();
        assert_eq!(sort_index_by_single(&r, 0), vec![1, 2, 0]);
    }

    #[test]
    fn refine_matches_full_sort() {
        let r = rel(&[(2, 1), (1, 9), (2, 0), (1, 3), (2, 1)]);
        let by_a = sort_index_by(&r, &[0]);
        let refined = refine_index(&r, &by_a, &[0], &[1]);
        assert_eq!(refined, sort_index_by(&r, &[0, 1]));
    }

    #[test]
    fn cmp_rows_agrees_with_sort() {
        let r = rel(&[(2, 1), (1, 9), (2, 0)]);
        let idx = sort_index_by(&r, &[0, 1]);
        for w in idx.windows(2) {
            assert_ne!(
                cmp_rows(&r, &[0, 1], w[0] as usize, w[1] as usize),
                Ordering::Greater
            );
        }
    }
}
