//! Loop-region extraction (ISSUE 9): brace-matched `for`/`while`/`loop`
//! regions over the masked token stream, attached to the call graph's fn
//! nodes so the dataflow passes ([`crate::dataflow`]) can reason about
//! what happens *inside* a loop body versus merely inside a fn.
//!
//! A region is the loop keyword plus its brace-matched body. The header
//! scan walks from the keyword to the first `{` at paren/bracket depth
//! zero, which skips closure braces inside iterator adaptors
//! (`for x in v.iter().map(|v| { .. }) {`) because those sit inside the
//! adaptor's parentheses. `for<'a>` higher-ranked trait bounds are not
//! loops and are skipped. Nested loops each get their own region; a
//! region's token span contains every nested region's span, which is what
//! lets the cancellation pass treat a probe in an inner loop as evidence
//! for the enclosing one.

use crate::callgraph::{FileModel, FnItem};
use crate::tokens::{matching_close, TokenKind};

/// Which looping construct heads the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `for <pat> in <expr> { .. }`
    For,
    /// `while <cond> { .. }` (including `while let`).
    While,
    /// `loop { .. }`
    Loop,
}

impl LoopKind {
    /// The source keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            LoopKind::For => "for",
            LoopKind::While => "while",
            LoopKind::Loop => "loop",
        }
    }
}

/// One brace-matched loop region inside a fn body.
#[derive(Debug, Clone)]
pub struct LoopRegion {
    /// Looping construct.
    pub kind: LoopKind,
    /// Token index of the loop keyword.
    pub head_tok: usize,
    /// 0-based line of the loop keyword.
    pub head_line: usize,
    /// Token index range of the body including both braces.
    pub body: (usize, usize),
    /// 0-based line of the closing brace.
    pub end_line: usize,
}

impl LoopRegion {
    /// Whether token index `tok` sits inside this region's body.
    pub fn contains(&self, tok: usize) -> bool {
        tok >= self.body.0 && tok <= self.body.1
    }
}

/// Extract every loop region of `f`'s body, in header-token order
/// (outer regions precede the regions nested inside them).
pub fn extract_loops(model: &FileModel, f: &FnItem) -> Vec<LoopRegion> {
    let toks = &model.tokens;
    let Some((b0, b1)) = f.body else {
        return Vec::new();
    };
    let hi = b1.min(toks.len().saturating_sub(1));
    let mut out = Vec::new();
    let mut i = b0;
    while i <= hi {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let kind = match t.text.as_str() {
            "for" => Some(LoopKind::For),
            "while" => Some(LoopKind::While),
            "loop" => Some(LoopKind::Loop),
            _ => None,
        };
        let Some(kind) = kind else {
            i += 1;
            continue;
        };
        // `for<'a>` is a higher-ranked bound, not a loop.
        if kind == LoopKind::For && toks.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            i += 1;
            continue;
        }
        // Find the body `{` at paren/bracket depth 0; a `;` first means
        // this was not a loop header after all.
        let mut depth: i64 = 0;
        let mut open = None;
        let mut j = i + 1;
        while j <= hi {
            let tj = &toks[j];
            if tj.kind == TokenKind::Punct {
                match tj.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if let Some(open) = open {
            let close = matching_close(toks, open);
            out.push(LoopRegion {
                kind,
                head_tok: i,
                head_line: t.line,
                body: (open, close),
                end_line: toks.get(close).map_or(t.line, |c| c.line),
            });
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;

    fn loops_of(content: &str) -> Vec<(LoopKind, usize, usize)> {
        let ws = Workspace::build(vec![(
            "crates/core/src/check.rs".to_owned(),
            content.to_owned(),
        )]);
        assert_eq!(ws.fns.len(), 1, "fixture must define exactly one fn");
        ws.loops[0]
            .iter()
            .map(|l| (l.kind, l.head_line, l.end_line))
            .collect()
    }

    #[test]
    fn all_three_constructs_are_extracted() {
        let l = loops_of(
            "pub fn f(v: &[u32]) {\n\
                 for x in v {\n        let _ = x;\n    }\n\
                 while v.len() > 0 {\n        break;\n    }\n\
                 loop {\n        break;\n    }\n\
             }\n",
        );
        assert_eq!(
            l,
            vec![
                (LoopKind::For, 1, 3),
                (LoopKind::While, 4, 6),
                (LoopKind::Loop, 7, 9),
            ]
        );
    }

    #[test]
    fn nested_loops_yield_nested_regions() {
        let ws = Workspace::build(vec![(
            "crates/core/src/check.rs".to_owned(),
            "pub fn f(v: &[u32]) {\n    for x in v {\n        for y in v {\n            let _ = (x, y);\n        }\n    }\n}\n"
                .to_owned(),
        )]);
        let loops = &ws.loops[0];
        assert_eq!(loops.len(), 2);
        let (outer, inner) = (&loops[0], &loops[1]);
        assert!(outer.body.0 < inner.body.0 && inner.body.1 < outer.body.1);
    }

    #[test]
    fn closure_braces_in_the_header_do_not_end_the_header() {
        let l = loops_of(
            "pub fn f(v: &[u32]) {\n    for x in v.iter().filter(|x| { **x > 0 }) {\n        let _ = x;\n    }\n}\n",
        );
        assert_eq!(l, vec![(LoopKind::For, 1, 3)]);
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let l = loops_of(
            "pub fn f(v: &[u32]) {\n    let g: Box<dyn for<'a> Fn(&'a u32)> = Box::new(|_| {});\n    let _ = (g, v);\n}\n",
        );
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn while_let_is_a_loop() {
        let l = loops_of(
            "pub fn f(mut v: Vec<u32>) {\n    while let Some(x) = v.pop() {\n        let _ = x;\n    }\n}\n",
        );
        assert_eq!(l, vec![(LoopKind::While, 1, 3)]);
    }
}
