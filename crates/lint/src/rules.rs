//! The workspace invariant rules (see DESIGN.md §10–§11 for the rationale
//! of each). Every rule supports the `// lint: allow(<rule>, <reason>)`
//! escape hatch; the linter itself keeps the allowlist honest by flagging
//! unused annotations and unknown rule names.
//!
//! Since ISSUE 5 the rules come in two kinds: **line rules** checked here
//! per file, and **semantic rules** ([`crate::callgraph`],
//! [`crate::locks`], [`crate::taint`]) computed over the whole-workspace
//! token model. The old per-line `no-panic` and `determinism-hash` rules
//! are subsumed by `panic-reachability` and `determinism-taint`; their
//! names remain valid in annotations as aliases.

use crate::source::SourceFile;

/// Semantic rule: no panic (unwrap/expect/`panic!`/slice indexing)
/// transitively reachable from the hot-path entry points.
pub const PANIC_REACHABILITY: &str = "panic-reachability";
/// Semantic rule: the lock-order graph must be acyclic.
pub const LOCK_ORDER: &str = "lock-order";
/// Semantic rule: nondeterministic iteration/clock values must not flow
/// into results or emission buffers.
pub const DETERMINISM_TAINT: &str = "determinism-taint";
/// Rule identifier: wall-clock reads confined to `runtime.rs`.
pub const CLOCK_CONFINEMENT: &str = "clock-confinement";
/// Rule identifier: thread spawns confined to `search.rs`/`runtime.rs`.
pub const SPAWN_CONFINEMENT: &str = "spawn-confinement";
/// Rule identifier: `Ordering::Relaxed` requires a justification outside
/// the shared-cache stats counters.
pub const ATOMICS_AUDIT: &str = "atomics-audit";
/// Rule identifier: `.lock().unwrap()` banned in favor of poison recovery.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Rule identifier: file writes confined to the `ocdd-iosafe` helper.
pub const IO_CONFINEMENT: &str = "io-confinement";
/// Semantic rule (ISSUE 9): every loop reachable from the `discover*`
/// entry points must probe the cancellation budget.
pub const UNPROBED_LOOP: &str = "unprobed-loop";
/// Semantic rule (ISSUE 9): snapshot/JSON writer, parser, and documented
/// schema key sets must agree.
pub const SCHEMA_PARITY: &str = "schema-parity";
/// Semantic rule (ISSUE 9): no allocation inside loops reachable from the
/// scan/check/sort hot-path roots.
pub const HOT_LOOP_ALLOC: &str = "hot-loop-alloc";
/// Meta rule: an annotation that suppressed nothing.
pub const UNUSED_ALLOW: &str = "unused-allow";
/// Meta rule: an annotation naming a rule that does not exist.
pub const UNKNOWN_ALLOW: &str = "unknown-allow";

/// Every real (annotatable) rule name.
pub const ALL_RULES: &[&str] = &[
    PANIC_REACHABILITY,
    LOCK_ORDER,
    DETERMINISM_TAINT,
    CLOCK_CONFINEMENT,
    SPAWN_CONFINEMENT,
    ATOMICS_AUDIT,
    LOCK_DISCIPLINE,
    IO_CONFINEMENT,
    UNPROBED_LOOP,
    SCHEMA_PARITY,
    HOT_LOOP_ALLOC,
];

/// Canonical rule id for an annotation's rule name. The pre-ISSUE-5 names
/// keep working: `no-panic` annotations now justify `panic-reachability`
/// findings, `determinism-hash` ones justify `determinism-taint`.
pub fn canonical_rule(name: &str) -> Option<&'static str> {
    match name {
        "no-panic" => Some(PANIC_REACHABILITY),
        "determinism-hash" => Some(DETERMINISM_TAINT),
        _ => ALL_RULES.iter().find(|r| **r == name).copied(),
    }
}

/// `--explain` text per rule: what it enforces and why the invariant
/// matters for the paper's correctness claims.
pub fn explain(rule: &str) -> Option<&'static str> {
    let canonical = canonical_rule(rule)?;
    Some(match canonical {
        PANIC_REACHABILITY => {
            "panic-reachability (alias: no-panic)\n\
             \n\
             Flags any function reachable over the workspace call graph from\n\
             the hot-path roots (every fn in check.rs, search.rs,\n\
             scheduler.rs, shared_cache.rs) that directly contains a panic\n\
             source: `panic!`-family macros, `.unwrap()`, `.expect(..)`, or\n\
             slice indexing `v[i]` (full-range `v[..]` excluded). A panic\n\
             inside a worker tears down the whole level unless quarantined;\n\
             Thm 3.7/3.9 soundness of partial results depends on workers\n\
             never aborting mid-batch. The finding carries a shortest\n\
             call-chain witness from a root to the panic site. Suppress at\n\
             the site line or at the fn with a comment annotation\n\
             `lint: allow(panic-reachability, <proven invariant>)`."
        }
        LOCK_ORDER => {
            "lock-order\n\
             \n\
             Builds a lock-order graph: an edge A -> B is recorded when a\n\
             Mutex/RwLock guard for A is still live (a `let`-bound guard in\n\
             an enclosing scope) while B is acquired — directly or inside\n\
             any function transitively called at that point. A cycle means\n\
             two executions can acquire the same locks in opposite orders:\n\
             a potential deadlock. This statically re-derives what the loom\n\
             models check dynamically for StealQueues and EpochPrefixCache\n\
             (DESIGN.md §10); guards consumed within a single statement\n\
             (temporaries) hold no edge, which is exactly why the\n\
             owner/thief steal protocol passes clean."
        }
        DETERMINISM_TAINT => {
            "determinism-taint (alias: determinism-hash)\n\
             \n\
             Values produced by iterating a HashMap/HashSet (`.iter()`,\n\
             `.keys()`, `.values()`, `.drain()`, `for _ in map`) or read\n\
             from the clock (`.elapsed()`, `Instant`) are tainted; taint\n\
             propagates through let-bindings, assignments and container\n\
             pushes, and is cleansed by sorting (`.sort*()`), by\n\
             order-insensitive folds (`.sum()`, `.count()`, `.min()`,\n\
             `.max()`, `.len()`), or by collecting into a BTreeMap/BTreeSet.\n\
             Taint flowing into a DiscoveryResult, ApproximateResult or\n\
             Emission constructor (the approximate pipeline of\n\
             approximate.rs emits through the same deterministic-container\n\
             contract), or into json.rs at all, is a finding:\n\
             byte-identical output\n\
             across Sequential/Rayon/WorkStealing backends is the\n\
             determinism contract of DESIGN.md §9. Local HashMaps whose\n\
             contents are sorted before escape are fine — this rule\n\
             subsumes the old blanket HashMap ban."
        }
        CLOCK_CONFINEMENT => {
            "clock-confinement\n\
             \n\
             `Instant::now`/`SystemTime` reads are confined to runtime.rs\n\
             (`runtime::now()`), so determinism reviews have one audit\n\
             point for wall-clock entering the system."
        }
        SPAWN_CONFINEMENT => {
            "spawn-confinement\n\
             \n\
             Thread spawns are confined to search.rs/runtime.rs: worker\n\
             lifecycles must stay under the panic-quarantine machinery."
        }
        ATOMICS_AUDIT => {
            "atomics-audit\n\
             \n\
             Every `Ordering::Relaxed` needs a justification (or the\n\
             shared-cache stats-counter allowlist): relaxed reads must\n\
             never order result data."
        }
        LOCK_DISCIPLINE => {
            "lock-discipline\n\
             \n\
             `.lock().unwrap()` turns poisoning into a second panic; use\n\
             the poison-recovery idiom\n\
             `unwrap_or_else(PoisonError::into_inner)`."
        }
        IO_CONFINEMENT => {
            "io-confinement\n\
             \n\
             Direct file writes (`fs::write`, `File::create`,\n\
             `OpenOptions`) are confined to crates/iosafe: every artifact\n\
             the workspace persists — checkpoint dumps, BENCH_check.json,\n\
             lint findings, bench TSVs — must go through\n\
             `ocdd_iosafe::atomic_write` (tmp + fsync + rename), so a\n\
             crash or SIGKILL can truncate a private tmp file but never a\n\
             published one. The checkpoint/resume contract (DESIGN.md §13)\n\
             depends on dumps being whole-or-absent."
        }
        UNPROBED_LOOP => {
            "unprobed-loop\n\
             \n\
             Bounded cancellation latency (DESIGN.md §8): every loop in\n\
             search.rs / scheduler.rs / check.rs / approximate.rs whose\n\
             enclosing fn is reachable over the call graph from a\n\
             `discover*` entry point must call `Budget::probe` /\n\
             `probe_now` — directly in its body, or through a callee whose\n\
             interprocedural summary probes. Otherwise a long run inside\n\
             that loop ignores `RunController` cancellation and deadline\n\
             budgets for unboundedly long. Only the outermost unsatisfied\n\
             loop of a nest is reported (fixing it fixes the nest). The\n\
             witness is the entry-point call chain plus the loop span.\n\
             Suppress with `lint: allow(unprobed-loop, <bound>)` on the\n\
             loop header or the fn when iteration is provably bounded\n\
             (column count, fixed block width) — state the bound in the\n\
             reason."
        }
        SCHEMA_PARITY => {
            "schema-parity\n\
             \n\
             The snapshot dump (`ocdd-snapshot/1`, snapshot.rs) and the\n\
             result report (json.rs) are hand-rolled writers; snapshot.rs\n\
             also hand-rolls the parser that resume trusts. This rule\n\
             extracts the string-literal key sets on each side — `\\\"k\\\":`\n\
             emissions in writer fns, `req(obj, \"k\")` / `get(obj, \"k\")`\n\
             lookups in parser fns — and diffs writer keys vs reader keys\n\
             vs the documented schema tables (crates/lint/src/schema.rs).\n\
             A key written but never parsed is silently dropped on resume\n\
             (the PR 8 `approx`-object drift class); a key parsed but\n\
             never written makes resume reject every dump; an undocumented\n\
             key means the schema doc lies. Fix by updating whichever of\n\
             the three legs drifted — including the documented table when\n\
             the format genuinely grew."
        }
        HOT_LOOP_ALLOC => {
            "hot-loop-alloc\n\
             \n\
             The scan/check/sort kernels are allocation-free by design\n\
             (DESIGN.md §6): scratch buffers are reused across calls, and\n\
             BENCH_check.json regressions historically trace back to an\n\
             allocation creeping into a per-row or per-candidate loop.\n\
             This rule flags allocation sites — `Vec::new` /\n\
             `with_capacity` / `vec![..]`, `String` / `format!` /\n\
             `.to_string()` / `.to_owned()`, `Box::new`, `.clone()`,\n\
             `.to_vec()`, `.collect()` — inside loops whose enclosing fn\n\
             is reachable from the hot-path roots (check.rs,\n\
             sorted_partitions.rs, relation scan/sort kernels). Bare\n\
             `.push(..)` is deliberately not flagged: pushing into a\n\
             pre-sized or reused buffer is the documented idiom, and\n\
             growth-by-allocation is caught at the buffer's constructor\n\
             site instead. Suppress documented scratch-buffer reuse or\n\
             setup-phase sites with\n\
             `lint: allow(hot-loop-alloc, <why this is not per-row>)`."
        }
        _ => return None,
    })
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of the constants in this module).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Call-chain / flow witness for the semantic rules, outermost first.
    /// Empty for line rules.
    pub chain: Vec<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )?;
        for (i, hop) in self.chain.iter().enumerate() {
            write!(
                f,
                "\n    {}{}",
                if i == 0 { "witness: " } else { "-> " },
                hop
            )?;
        }
        Ok(())
    }
}

/// Scope: the panic-free core crates.
fn in_core_or_relation(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/relation/src/")
}

/// Stats-counter field accesses allowlisted for `Ordering::Relaxed` inside
/// `shared_cache.rs` — observability counters that, by construction, never
/// feed back into discovery results.
const SHARED_CACHE_STATS_FIELDS: &[&str] = &[
    ".hits",
    ".misses",
    ".evictions",
    ".resident",
    ".entries",
    ".clock",
    ".next_epoch",
    ".publishes",
];

/// Check one preprocessed file against the line rules, returning
/// diagnostics sorted by line plus the `(0-based line, canonical rule)`
/// pairs whose annotations justified a finding. Annotation hygiene is a
/// workspace concern (semantic passes also consume allows) and lives in
/// the final hygiene pass of [`crate::analyze`].
pub fn check_file(f: &SourceFile) -> (Vec<Diagnostic>, Vec<(usize, &'static str)>) {
    let mut out: Vec<Diagnostic> = Vec::new();
    let mut used: Vec<(usize, &'static str)> = Vec::new();

    let finding = |out: &mut Vec<Diagnostic>,
                   used: &mut Vec<(usize, &'static str)>,
                   line: usize,
                   rule: &'static str,
                   message: String| {
        let justified = f
            .allows_for_line
            .get(line)
            .into_iter()
            .flatten()
            .any(|a| canonical_rule(&a.rule) == Some(rule));
        if justified {
            used.push((line, rule));
        } else {
            out.push(Diagnostic {
                path: f.path.clone(),
                line: line + 1,
                rule,
                message,
                chain: Vec::new(),
            });
        }
    };

    for (i, masked) in f.masked_lines.iter().enumerate() {
        if f.test_line[i] {
            continue;
        }

        if in_core_or_relation(&f.path)
            && f.path != "crates/core/src/runtime.rs"
            && (masked.contains("Instant::now") || masked.contains("SystemTime"))
        {
            finding(
                &mut out,
                &mut used,
                i,
                CLOCK_CONFINEMENT,
                "wall-clock read outside runtime.rs — route it through \
                 `crate::runtime::now()` so determinism reviews have one audit point"
                    .to_owned(),
            );
        }

        if f.path.starts_with("crates/core/src/")
            && f.path != "crates/core/src/search.rs"
            && f.path != "crates/core/src/runtime.rs"
            && masked.contains("spawn(")
        {
            finding(
                &mut out,
                &mut used,
                i,
                SPAWN_CONFINEMENT,
                "thread spawn outside search.rs/runtime.rs — worker lifecycles must \
                 stay under the quarantine machinery"
                    .to_owned(),
            );
        }

        if masked.contains("::Relaxed") {
            let allowlisted = f.path == "crates/core/src/shared_cache.rs"
                && SHARED_CACHE_STATS_FIELDS
                    .iter()
                    .any(|field| masked.contains(field));
            if !allowlisted {
                finding(
                    &mut out,
                    &mut used,
                    i,
                    ATOMICS_AUDIT,
                    "`Ordering::Relaxed` outside the shared-cache stats allowlist — \
                     justify why relaxed ordering cannot feed back into results"
                        .to_owned(),
                );
            }
        }

        if masked.contains(".lock().unwrap()") || masked.contains(".lock().expect(") {
            finding(
                &mut out,
                &mut used,
                i,
                LOCK_DISCIPLINE,
                "`.lock().unwrap()` propagates poisoning as a second panic — use the \
                 poison-recovery idiom (`unwrap_or_else(PoisonError::into_inner)`)"
                    .to_owned(),
            );
        }

        if !f.path.starts_with("crates/iosafe/src/")
            && (masked.contains("fs::write(")
                || masked.contains("File::create(")
                || masked.contains("OpenOptions"))
        {
            finding(
                &mut out,
                &mut used,
                i,
                IO_CONFINEMENT,
                "direct file write outside crates/iosafe — route it through \
                 `ocdd_iosafe::atomic_write` so a crash never publishes a torn file"
                    .to_owned(),
            );
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (out, used)
}
