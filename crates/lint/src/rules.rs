//! The workspace invariant rules (see DESIGN.md §10–§11 for the rationale
//! of each). Every rule supports the `// lint: allow(<rule>, <reason>)`
//! escape hatch; the linter itself keeps the allowlist honest by flagging
//! unused annotations and unknown rule names.
//!
//! Since ISSUE 5 the rules come in two kinds: **line rules** checked here
//! per file, and **semantic rules** ([`crate::callgraph`],
//! [`crate::locks`], [`crate::taint`]) computed over the whole-workspace
//! token model. The old per-line `no-panic` and `determinism-hash` rules
//! are subsumed by `panic-reachability` and `determinism-taint`; their
//! names remain valid in annotations as aliases.

use crate::source::SourceFile;

/// Semantic rule: no panic (unwrap/expect/`panic!`/slice indexing)
/// transitively reachable from the hot-path entry points.
pub const PANIC_REACHABILITY: &str = "panic-reachability";
/// Semantic rule: the lock-order graph must be acyclic.
pub const LOCK_ORDER: &str = "lock-order";
/// Semantic rule: nondeterministic iteration/clock values must not flow
/// into results or emission buffers.
pub const DETERMINISM_TAINT: &str = "determinism-taint";
/// Rule identifier: wall-clock reads confined to `runtime.rs`.
pub const CLOCK_CONFINEMENT: &str = "clock-confinement";
/// Rule identifier: thread spawns confined to `search.rs`/`runtime.rs`.
pub const SPAWN_CONFINEMENT: &str = "spawn-confinement";
/// Rule identifier: `Ordering::Relaxed` requires a justification outside
/// the shared-cache stats counters.
pub const ATOMICS_AUDIT: &str = "atomics-audit";
/// Rule identifier: `.lock().unwrap()` banned in favor of poison recovery.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Rule identifier: file writes confined to the `ocdd-iosafe` helper.
pub const IO_CONFINEMENT: &str = "io-confinement";
/// Meta rule: an annotation that suppressed nothing.
pub const UNUSED_ALLOW: &str = "unused-allow";
/// Meta rule: an annotation naming a rule that does not exist.
pub const UNKNOWN_ALLOW: &str = "unknown-allow";

/// Every real (annotatable) rule name.
pub const ALL_RULES: &[&str] = &[
    PANIC_REACHABILITY,
    LOCK_ORDER,
    DETERMINISM_TAINT,
    CLOCK_CONFINEMENT,
    SPAWN_CONFINEMENT,
    ATOMICS_AUDIT,
    LOCK_DISCIPLINE,
    IO_CONFINEMENT,
];

/// Canonical rule id for an annotation's rule name. The pre-ISSUE-5 names
/// keep working: `no-panic` annotations now justify `panic-reachability`
/// findings, `determinism-hash` ones justify `determinism-taint`.
pub fn canonical_rule(name: &str) -> Option<&'static str> {
    match name {
        "no-panic" => Some(PANIC_REACHABILITY),
        "determinism-hash" => Some(DETERMINISM_TAINT),
        _ => ALL_RULES.iter().find(|r| **r == name).copied(),
    }
}

/// `--explain` text per rule: what it enforces and why the invariant
/// matters for the paper's correctness claims.
pub fn explain(rule: &str) -> Option<&'static str> {
    let canonical = canonical_rule(rule)?;
    Some(match canonical {
        PANIC_REACHABILITY => {
            "panic-reachability (alias: no-panic)\n\
             \n\
             Flags any function reachable over the workspace call graph from\n\
             the hot-path roots (every fn in check.rs, search.rs,\n\
             scheduler.rs, shared_cache.rs) that directly contains a panic\n\
             source: `panic!`-family macros, `.unwrap()`, `.expect(..)`, or\n\
             slice indexing `v[i]` (full-range `v[..]` excluded). A panic\n\
             inside a worker tears down the whole level unless quarantined;\n\
             Thm 3.7/3.9 soundness of partial results depends on workers\n\
             never aborting mid-batch. The finding carries a shortest\n\
             call-chain witness from a root to the panic site. Suppress at\n\
             the site line or at the fn with a comment annotation\n\
             `lint: allow(panic-reachability, <proven invariant>)`."
        }
        LOCK_ORDER => {
            "lock-order\n\
             \n\
             Builds a lock-order graph: an edge A -> B is recorded when a\n\
             Mutex/RwLock guard for A is still live (a `let`-bound guard in\n\
             an enclosing scope) while B is acquired — directly or inside\n\
             any function transitively called at that point. A cycle means\n\
             two executions can acquire the same locks in opposite orders:\n\
             a potential deadlock. This statically re-derives what the loom\n\
             models check dynamically for StealQueues and EpochPrefixCache\n\
             (DESIGN.md §10); guards consumed within a single statement\n\
             (temporaries) hold no edge, which is exactly why the\n\
             owner/thief steal protocol passes clean."
        }
        DETERMINISM_TAINT => {
            "determinism-taint (alias: determinism-hash)\n\
             \n\
             Values produced by iterating a HashMap/HashSet (`.iter()`,\n\
             `.keys()`, `.values()`, `.drain()`, `for _ in map`) or read\n\
             from the clock (`.elapsed()`, `Instant`) are tainted; taint\n\
             propagates through let-bindings, assignments and container\n\
             pushes, and is cleansed by sorting (`.sort*()`), by\n\
             order-insensitive folds (`.sum()`, `.count()`, `.min()`,\n\
             `.max()`, `.len()`), or by collecting into a BTreeMap/BTreeSet.\n\
             Taint flowing into a DiscoveryResult, ApproximateResult or\n\
             Emission constructor (the approximate pipeline of\n\
             approximate.rs emits through the same deterministic-container\n\
             contract), or into json.rs at all, is a finding:\n\
             byte-identical output\n\
             across Sequential/Rayon/WorkStealing backends is the\n\
             determinism contract of DESIGN.md §9. Local HashMaps whose\n\
             contents are sorted before escape are fine — this rule\n\
             subsumes the old blanket HashMap ban."
        }
        CLOCK_CONFINEMENT => {
            "clock-confinement\n\
             \n\
             `Instant::now`/`SystemTime` reads are confined to runtime.rs\n\
             (`runtime::now()`), so determinism reviews have one audit\n\
             point for wall-clock entering the system."
        }
        SPAWN_CONFINEMENT => {
            "spawn-confinement\n\
             \n\
             Thread spawns are confined to search.rs/runtime.rs: worker\n\
             lifecycles must stay under the panic-quarantine machinery."
        }
        ATOMICS_AUDIT => {
            "atomics-audit\n\
             \n\
             Every `Ordering::Relaxed` needs a justification (or the\n\
             shared-cache stats-counter allowlist): relaxed reads must\n\
             never order result data."
        }
        LOCK_DISCIPLINE => {
            "lock-discipline\n\
             \n\
             `.lock().unwrap()` turns poisoning into a second panic; use\n\
             the poison-recovery idiom\n\
             `unwrap_or_else(PoisonError::into_inner)`."
        }
        IO_CONFINEMENT => {
            "io-confinement\n\
             \n\
             Direct file writes (`fs::write`, `File::create`,\n\
             `OpenOptions`) are confined to crates/iosafe: every artifact\n\
             the workspace persists — checkpoint dumps, BENCH_check.json,\n\
             lint findings, bench TSVs — must go through\n\
             `ocdd_iosafe::atomic_write` (tmp + fsync + rename), so a\n\
             crash or SIGKILL can truncate a private tmp file but never a\n\
             published one. The checkpoint/resume contract (DESIGN.md §13)\n\
             depends on dumps being whole-or-absent."
        }
        _ => return None,
    })
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of the constants in this module).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Call-chain / flow witness for the semantic rules, outermost first.
    /// Empty for line rules.
    pub chain: Vec<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )?;
        for (i, hop) in self.chain.iter().enumerate() {
            write!(
                f,
                "\n    {}{}",
                if i == 0 { "witness: " } else { "-> " },
                hop
            )?;
        }
        Ok(())
    }
}

/// Scope: the panic-free core crates.
fn in_core_or_relation(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/relation/src/")
}

/// Stats-counter field accesses allowlisted for `Ordering::Relaxed` inside
/// `shared_cache.rs` — observability counters that, by construction, never
/// feed back into discovery results.
const SHARED_CACHE_STATS_FIELDS: &[&str] = &[
    ".hits",
    ".misses",
    ".evictions",
    ".resident",
    ".entries",
    ".clock",
    ".next_epoch",
    ".publishes",
];

/// Check one preprocessed file against the line rules, returning
/// diagnostics sorted by line plus the `(0-based line, canonical rule)`
/// pairs whose annotations justified a finding. Annotation hygiene is a
/// workspace concern (semantic passes also consume allows) and lives in
/// the final hygiene pass of [`crate::analyze`].
pub fn check_file(f: &SourceFile) -> (Vec<Diagnostic>, Vec<(usize, &'static str)>) {
    let mut out: Vec<Diagnostic> = Vec::new();
    let mut used: Vec<(usize, &'static str)> = Vec::new();

    let finding = |out: &mut Vec<Diagnostic>,
                   used: &mut Vec<(usize, &'static str)>,
                   line: usize,
                   rule: &'static str,
                   message: String| {
        let justified = f
            .allows_for_line
            .get(line)
            .into_iter()
            .flatten()
            .any(|a| canonical_rule(&a.rule) == Some(rule));
        if justified {
            used.push((line, rule));
        } else {
            out.push(Diagnostic {
                path: f.path.clone(),
                line: line + 1,
                rule,
                message,
                chain: Vec::new(),
            });
        }
    };

    for (i, masked) in f.masked_lines.iter().enumerate() {
        if f.test_line[i] {
            continue;
        }

        if in_core_or_relation(&f.path)
            && f.path != "crates/core/src/runtime.rs"
            && (masked.contains("Instant::now") || masked.contains("SystemTime"))
        {
            finding(
                &mut out,
                &mut used,
                i,
                CLOCK_CONFINEMENT,
                "wall-clock read outside runtime.rs — route it through \
                 `crate::runtime::now()` so determinism reviews have one audit point"
                    .to_owned(),
            );
        }

        if f.path.starts_with("crates/core/src/")
            && f.path != "crates/core/src/search.rs"
            && f.path != "crates/core/src/runtime.rs"
            && masked.contains("spawn(")
        {
            finding(
                &mut out,
                &mut used,
                i,
                SPAWN_CONFINEMENT,
                "thread spawn outside search.rs/runtime.rs — worker lifecycles must \
                 stay under the quarantine machinery"
                    .to_owned(),
            );
        }

        if masked.contains("::Relaxed") {
            let allowlisted = f.path == "crates/core/src/shared_cache.rs"
                && SHARED_CACHE_STATS_FIELDS
                    .iter()
                    .any(|field| masked.contains(field));
            if !allowlisted {
                finding(
                    &mut out,
                    &mut used,
                    i,
                    ATOMICS_AUDIT,
                    "`Ordering::Relaxed` outside the shared-cache stats allowlist — \
                     justify why relaxed ordering cannot feed back into results"
                        .to_owned(),
                );
            }
        }

        if masked.contains(".lock().unwrap()") || masked.contains(".lock().expect(") {
            finding(
                &mut out,
                &mut used,
                i,
                LOCK_DISCIPLINE,
                "`.lock().unwrap()` propagates poisoning as a second panic — use the \
                 poison-recovery idiom (`unwrap_or_else(PoisonError::into_inner)`)"
                    .to_owned(),
            );
        }

        if !f.path.starts_with("crates/iosafe/src/")
            && (masked.contains("fs::write(")
                || masked.contains("File::create(")
                || masked.contains("OpenOptions"))
        {
            finding(
                &mut out,
                &mut used,
                i,
                IO_CONFINEMENT,
                "direct file write outside crates/iosafe — route it through \
                 `ocdd_iosafe::atomic_write` so a crash never publishes a torn file"
                    .to_owned(),
            );
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (out, used)
}
