//! The workspace invariant rules (see DESIGN.md §10 for the rationale of
//! each). Every rule supports the `// lint: allow(<rule>, <reason>)`
//! escape hatch; the linter itself keeps the allowlist honest by flagging
//! unused annotations and unknown rule names.

use crate::source::SourceFile;

/// Rule identifier: no `unwrap`/`expect`/`panic!` family in non-test code
/// of the core crates.
pub const NO_PANIC: &str = "no-panic";
/// Rule identifier: no `HashMap`/`HashSet` in result-emitting modules.
pub const DETERMINISM_HASH: &str = "determinism-hash";
/// Rule identifier: wall-clock reads confined to `runtime.rs`.
pub const CLOCK_CONFINEMENT: &str = "clock-confinement";
/// Rule identifier: thread spawns confined to `search.rs`/`runtime.rs`.
pub const SPAWN_CONFINEMENT: &str = "spawn-confinement";
/// Rule identifier: `Ordering::Relaxed` requires a justification outside
/// the shared-cache stats counters.
pub const ATOMICS_AUDIT: &str = "atomics-audit";
/// Rule identifier: `.lock().unwrap()` banned in favor of poison recovery.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Meta rule: an annotation that suppressed nothing.
pub const UNUSED_ALLOW: &str = "unused-allow";
/// Meta rule: an annotation naming a rule that does not exist.
pub const UNKNOWN_ALLOW: &str = "unknown-allow";

/// Every real (annotatable) rule name.
pub const ALL_RULES: &[&str] = &[
    NO_PANIC,
    DETERMINISM_HASH,
    CLOCK_CONFINEMENT,
    SPAWN_CONFINEMENT,
    ATOMICS_AUDIT,
    LOCK_DISCIPLINE,
];

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of the constants in this module).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Scope: the panic-free core crates.
fn in_core_or_relation(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/relation/src/")
}

/// Scope: modules whose output feeds user-visible results byte-for-byte.
fn in_result_emitting_module(path: &str) -> bool {
    matches!(
        path,
        "crates/core/src/search.rs" | "crates/core/src/results.rs" | "crates/core/src/json.rs"
    )
}

/// Tokens of the `no-panic` rule (matched on masked text, so strings and
/// comments never fire).
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "panic_any(",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Stats-counter field accesses allowlisted for `Ordering::Relaxed` inside
/// `shared_cache.rs` — observability counters that, by construction, never
/// feed back into discovery results.
const SHARED_CACHE_STATS_FIELDS: &[&str] = &[
    ".hits",
    ".misses",
    ".evictions",
    ".resident",
    ".entries",
    ".clock",
    ".next_epoch",
    ".publishes",
];

/// Check one preprocessed file against every rule, returning diagnostics
/// sorted by line. Annotation bookkeeping (unused / unknown allows) is
/// included.
pub fn check_file(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    // (0-based line, rule) pairs whose annotation justified a finding.
    let mut used: Vec<(usize, &'static str)> = Vec::new();

    let finding = |out: &mut Vec<Diagnostic>,
                   used: &mut Vec<(usize, &'static str)>,
                   line: usize,
                   rule: &'static str,
                   message: String| {
        if f.allows(line, rule).is_some() {
            used.push((line, rule));
        } else {
            out.push(Diagnostic {
                path: f.path.clone(),
                line: line + 1,
                rule,
                message,
            });
        }
    };

    for (i, masked) in f.masked_lines.iter().enumerate() {
        if f.test_line[i] {
            continue;
        }
        let trimmed = masked.trim_start();

        if in_core_or_relation(&f.path) {
            if let Some(tok) = PANIC_TOKENS.iter().find(|t| masked.contains(**t)) {
                finding(
                    &mut out,
                    &mut used,
                    i,
                    NO_PANIC,
                    format!(
                        "`{tok}` in non-test core-crate code — convert to a typed error, \
                         the poison-recovery idiom, or annotate a proven invariant"
                    ),
                );
            }

            if f.path != "crates/core/src/runtime.rs"
                && (masked.contains("Instant::now") || masked.contains("SystemTime"))
            {
                finding(
                    &mut out,
                    &mut used,
                    i,
                    CLOCK_CONFINEMENT,
                    "wall-clock read outside runtime.rs — route it through \
                     `crate::runtime::now()` so determinism reviews have one audit point"
                        .to_owned(),
                );
            }
        }

        if in_result_emitting_module(&f.path)
            && !trimmed.starts_with("use ")
            && (masked.contains("HashMap") || masked.contains("HashSet"))
        {
            finding(
                &mut out,
                &mut used,
                i,
                DETERMINISM_HASH,
                "HashMap/HashSet in a result-emitting module — iteration order is \
                 nondeterministic; use a sorted structure or annotate why ordering \
                 cannot reach results"
                    .to_owned(),
            );
        }

        if f.path.starts_with("crates/core/src/")
            && f.path != "crates/core/src/search.rs"
            && f.path != "crates/core/src/runtime.rs"
            && masked.contains("spawn(")
        {
            finding(
                &mut out,
                &mut used,
                i,
                SPAWN_CONFINEMENT,
                "thread spawn outside search.rs/runtime.rs — worker lifecycles must \
                 stay under the quarantine machinery"
                    .to_owned(),
            );
        }

        if masked.contains("::Relaxed") {
            let allowlisted = f.path == "crates/core/src/shared_cache.rs"
                && SHARED_CACHE_STATS_FIELDS
                    .iter()
                    .any(|field| masked.contains(field));
            if !allowlisted {
                finding(
                    &mut out,
                    &mut used,
                    i,
                    ATOMICS_AUDIT,
                    "`Ordering::Relaxed` outside the shared-cache stats allowlist — \
                     justify why relaxed ordering cannot feed back into results"
                        .to_owned(),
                );
            }
        }

        if masked.contains(".lock().unwrap()") || masked.contains(".lock().expect(") {
            finding(
                &mut out,
                &mut used,
                i,
                LOCK_DISCIPLINE,
                "`.lock().unwrap()` propagates poisoning as a second panic — use the \
                 poison-recovery idiom (`unwrap_or_else(PoisonError::into_inner)`)"
                    .to_owned(),
            );
        }
    }

    // Annotation hygiene: unknown rule names and unused annotations.
    for (i, allows) in f.allows_for_line.iter().enumerate() {
        if f.test_line[i] {
            continue;
        }
        for a in allows {
            if !ALL_RULES.contains(&a.rule.as_str()) {
                out.push(Diagnostic {
                    path: f.path.clone(),
                    line: a.line,
                    rule: UNKNOWN_ALLOW,
                    message: format!(
                        "annotation names unknown rule `{}` (known: {})",
                        a.rule,
                        ALL_RULES.join(", ")
                    ),
                });
            } else if !used.iter().any(|&(line, rule)| line == i && rule == a.rule) {
                out.push(Diagnostic {
                    path: f.path.clone(),
                    line: a.line,
                    rule: UNUSED_ALLOW,
                    message: format!(
                        "`lint: allow({}, …)` suppresses nothing on its target line — \
                         stale annotation, remove it",
                        a.rule
                    ),
                });
            }
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}
