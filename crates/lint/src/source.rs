//! Source preprocessing for the linter: comment/string masking, test-region
//! detection, and `// lint: allow(rule, reason)` annotation parsing.
//!
//! The linter is deliberately a *text* pass, not a `syn` parse — the
//! workspace has no crates.io access, and every rule it enforces is a
//! token-level property (a banned method call, a banned type name, a
//! memory-ordering literal). Masking strips comments and string/char
//! literal *contents* so rules never fire on prose or embedded examples,
//! and a brace-matching scan classifies `#[cfg(test)]` / `#[cfg(all(test,
//! …))]` / `#[test]` items as test regions, which most rules exempt.

/// One parsed `// lint: allow(rule, reason)` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule name the annotation suppresses.
    pub rule: String,
    /// Mandatory human justification.
    pub reason: String,
    /// 1-based line the annotation comment sits on.
    pub line: usize,
}

/// A source file prepared for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (rules scope on it).
    pub path: String,
    /// Verbatim lines, for annotation parsing and display.
    pub raw_lines: Vec<String>,
    /// Lines with comment and string/char-literal contents blanked.
    pub masked_lines: Vec<String>,
    /// `true` for every line inside a test-only region.
    pub test_line: Vec<bool>,
    /// Annotations applying to each 0-based line (trailing annotations
    /// apply to their own line; annotation-only lines apply to the next
    /// code line, stacking).
    pub allows_for_line: Vec<Vec<Allow>>,
}

impl SourceFile {
    /// Preprocess `content` as the file at `path` (workspace-relative).
    pub fn parse(path: &str, content: &str) -> SourceFile {
        let raw_lines: Vec<String> = content.split('\n').map(str::to_owned).collect();
        let masked = mask(content);
        let masked_lines: Vec<String> = masked.split('\n').map(str::to_owned).collect();
        debug_assert_eq!(raw_lines.len(), masked_lines.len());
        let test_line = test_regions(&masked_lines);
        let allows_for_line = collect_allows(&raw_lines, &masked_lines);
        SourceFile {
            path: path.to_owned(),
            raw_lines,
            masked_lines,
            test_line,
            allows_for_line,
        }
    }

    /// Annotations that can justify a finding of `rule` on 0-based `line`.
    pub fn allows(&self, line: usize, rule: &str) -> Option<&Allow> {
        self.allows_for_line
            .get(line)?
            .iter()
            .find(|a| a.rule == rule)
    }
}

/// Blank comment bodies and string/char-literal contents, preserving line
/// structure and all other characters (so token offsets stay meaningful).
///
/// Blanking is *byte-length preserving*: a masked char is replaced by one
/// space per UTF-8 byte, so token byte offsets computed on the masked text
/// index directly into the raw text (rules slice `raw[t.start..t.end]`).
fn mask(content: &str) -> String {
    /// Blank `c`, keeping newlines and emitting `len_utf8` spaces otherwise.
    fn blank(out: &mut String, c: char) {
        if c == '\n' {
            out.push('\n');
        } else {
            for _ in 0..c.len_utf8() {
                out.push(' ');
            }
        }
    }
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let bytes: Vec<char> = content.chars().collect();
    let mut out = String::with_capacity(content.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                }
                '"' => {
                    // Raw string? Look back for r / r# / br## prefixes —
                    // those chars are already emitted, which is fine: the
                    // prefix itself is not string *content*.
                    let mut hashes = 0u32;
                    let mut j = i;
                    while j > 0 && bytes[j - 1] == '#' {
                        hashes += 1;
                        j -= 1;
                    }
                    let is_raw = j > 0 && (bytes[j - 1] == 'r');
                    if is_raw {
                        state = State::RawStr(hashes);
                    } else {
                        state = State::Str;
                    }
                    out.push('"');
                    i += 1;
                }
                '\'' => {
                    // Char literal vs lifetime: a literal is 'x' or an
                    // escape '\…'. Lifetimes ('a, 'static) keep only the
                    // quote and continue as code.
                    if next == Some('\\') {
                        // Escaped char literal: emit quotes, blank body.
                        out.push('\'');
                        i += 1;
                        while i < bytes.len() && bytes[i] != '\'' {
                            blank(&mut out, bytes[i]);
                            i += 1;
                        }
                        if i < bytes.len() {
                            out.push('\'');
                            i += 1;
                        }
                    } else if bytes.get(i + 2).copied() == Some('\'') {
                        out.push('\'');
                        blank(&mut out, bytes[i + 1]);
                        out.push('\'');
                        i += 3;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    blank(&mut out, c);
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    blank(&mut out, c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push(' ');
                    if let Some(n) = next {
                        blank(&mut out, n);
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    state = State::Code;
                    out.push('"');
                    i += 1;
                } else {
                    blank(&mut out, c);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    // Closing only when followed by `hashes` hash marks.
                    let mut ok = true;
                    for h in 0..hashes as usize {
                        if bytes.get(i + 1 + h).copied() != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        continue;
                    }
                }
                blank(&mut out, c);
                i += 1;
            }
        }
    }
    debug_assert_eq!(out.len(), content.len());
    out
}

/// True when the masked line is a test-gating attribute: `#[test]`,
/// `#[cfg(test)]`, or `#[cfg(all(test, …))]` (which implies `test`).
/// `#[cfg(any(test, …))]` is deliberately *not* test-only — such code is
/// compiled into feature builds and stays lintable.
fn is_test_attr(masked: &str) -> bool {
    let squeezed: String = masked.chars().filter(|c| !c.is_whitespace()).collect();
    squeezed.starts_with("#[test]")
        || squeezed.starts_with("#[cfg(test)]")
        || squeezed.starts_with("#[cfg(all(test,")
}

/// Mark every line belonging to a test-gated item: from the gating
/// attribute through the end of the item's brace block (or its `;`).
fn test_regions(masked_lines: &[String]) -> Vec<bool> {
    let n = masked_lines.len();
    let mut test = vec![false; n];
    let mut i = 0;
    while i < n {
        if !is_test_attr(&masked_lines[i]) {
            i += 1;
            continue;
        }
        // Scan forward from the attribute for the item body.
        let mut depth: i64 = 0;
        let mut seen_open = false;
        let mut end = n - 1;
        'scan: for (j, line) in masked_lines.iter().enumerate().skip(i) {
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => {
                        depth -= 1;
                        if seen_open && depth == 0 {
                            end = j;
                            break 'scan;
                        }
                    }
                    ';' if !seen_open && j > i => {
                        end = j;
                        break 'scan;
                    }
                    _ => {}
                }
            }
        }
        for t in test.iter_mut().take(end + 1).skip(i) {
            *t = true;
        }
        i = end + 1;
    }
    test
}

/// Parse one `lint: allow(rule, reason)` clause out of a comment body.
/// The clause must open the comment (`// lint: allow(…)`) — mentions of
/// the grammar inside prose or doc comments never count as annotations.
fn parse_allow(comment: &str, line: usize) -> Option<Allow> {
    let body = comment.strip_prefix("//")?.trim_start();
    let rest = body.strip_prefix("lint: allow(")?;
    let close = rest.rfind(')')?;
    let body = &rest[..close];
    let (rule, reason) = body.split_once(',')?;
    let (rule, reason) = (rule.trim(), reason.trim());
    if rule.is_empty() || reason.is_empty() {
        return None;
    }
    Some(Allow {
        rule: rule.to_owned(),
        reason: reason.to_owned(),
        line,
    })
}

/// Attach annotations to the lines they justify: a trailing annotation
/// justifies its own line; a standalone annotation line (possibly several,
/// stacked) justifies the next line that carries code.
fn collect_allows(raw_lines: &[String], masked_lines: &[String]) -> Vec<Vec<Allow>> {
    let n = raw_lines.len();
    let mut allows: Vec<Vec<Allow>> = vec![Vec::new(); n];
    let mut pending: Vec<Allow> = Vec::new();
    for i in 0..n {
        let raw = &raw_lines[i];
        let masked = &masked_lines[i];
        let has_code = !masked.trim().is_empty();
        let annotation = raw
            .find("//")
            .and_then(|pos| parse_allow(&raw[pos..], i + 1));
        match (has_code, annotation) {
            (true, Some(a)) => {
                // Trailing annotation: applies here, along with pending.
                allows[i].push(a);
                allows[i].append(&mut pending);
            }
            (true, None) => {
                allows[i].append(&mut pending);
            }
            (false, Some(a)) => pending.push(a),
            (false, None) => {
                // Blank or comment-only line without annotation: keep the
                // pending stack (doc comments may sit between annotation
                // and item).
            }
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = \"unwrap() inside\"; // .unwrap() in comment\nlet b = 1;",
        );
        assert!(!f.masked_lines[0].contains("unwrap"));
        assert!(f.masked_lines[1].contains("let b"));
    }

    #[test]
    fn masking_handles_raw_strings_and_chars() {
        let src = "let s = r#\"panic!(\"x\")\"#;\nlet c = 'a';\nlet lt: &'static str = \"y\";";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.masked_lines[0].contains("panic"));
        assert!(f.masked_lines[2].contains("'static"));
    }

    #[test]
    fn masking_preserves_byte_length_with_multibyte_chars() {
        // Em dashes and accents in comments/strings must blank to one
        // space per UTF-8 *byte*, or token offsets drift off the raw text.
        let src = "// naïve — prose\nlet s = \"café — ok\";\nlet c = '—';\nfn f() {}";
        let f = SourceFile::parse("x.rs", src);
        for (raw, masked) in f.raw_lines.iter().zip(&f.masked_lines) {
            assert_eq!(raw.len(), masked.len(), "byte length drifted: {raw:?}");
        }
        assert!(f.masked_lines[3].contains("fn f"));
    }

    #[test]
    fn cfg_test_region_covers_the_module() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.test_line[0]);
        assert!(f.test_line[1] && f.test_line[2] && f.test_line[3] && f.test_line[4]);
        assert!(!f.test_line[5]);
    }

    #[test]
    fn cfg_all_test_counts_as_test_but_any_does_not() {
        let src = "#[cfg(all(test, feature = \"loom\"))]\nmod m { }\n#[cfg(any(test, feature = \"fi\"))]\nmod n { }";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.test_line[0] && f.test_line[1]);
        assert!(!f.test_line[2] && !f.test_line[3]);
    }

    #[test]
    fn trailing_and_standalone_annotations_attach() {
        let src = "// lint: allow(no-panic, invariant A)\nlet x = m.pop().unwrap();\nlet y = 1; // lint: allow(atomics-audit, stat only)";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(
            f.allows(1, "no-panic").map(|a| a.reason.as_str()),
            Some("invariant A")
        );
        assert!(f.allows(1, "atomics-audit").is_none());
        assert_eq!(f.allows(2, "atomics-audit").map(|a| a.line), Some(3));
    }

    #[test]
    fn annotation_requires_reason() {
        let src = "// lint: allow(no-panic)\nx.unwrap();";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allows(1, "no-panic").is_none());
    }
}
