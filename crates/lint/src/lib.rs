//! `ocdd-lint` — the workspace-specific static-analysis pass (ISSUE 4,
//! upgraded to a cross-file semantic analyzer in ISSUE 5).
//!
//! The compiler cannot see the invariants this reproduction's correctness
//! rests on: byte-identical results across Sequential/Rayon/WorkStealing
//! backends, panic-quarantined workers, and `Relaxed` stats counters that
//! must never feed back into results. `ocdd-lint` enforces them over every
//! workspace `.rs` file — line rules on masked text, and three semantic
//! rules over a token-level workspace model with a conservative call
//! graph:
//!
//! | rule | kind | invariant |
//! |---|---|---|
//! | `panic-reachability` | semantic | no panic source reachable from the hot-path roots |
//! | `lock-order` | semantic | the lock-order graph is acyclic (no AB/BA deadlock) |
//! | `determinism-taint` | semantic | no hash-iteration/clock value flows into results |
//! | `unprobed-loop` | semantic | every loop reachable from `discover*` probes the budget |
//! | `schema-parity` | semantic | snapshot/JSON writer, parser, and doc key sets agree |
//! | `hot-loop-alloc` | semantic | no allocation in loops reachable from the hot kernels |
//! | `clock-confinement` | line | `Instant::now`/`SystemTime` only in `runtime.rs` |
//! | `spawn-confinement` | line | thread spawns only in `search.rs`/`runtime.rs` |
//! | `atomics-audit` | line | every `Ordering::Relaxed` justified or allowlisted |
//! | `lock-discipline` | line | `.lock().unwrap()` banned; poison is recovered |
//!
//! A finding is silenced by `// lint: allow(<rule>, <reason>)` — trailing
//! on the offending line, standalone on the line(s) above, or (for the
//! semantic rules) on the `fn` definition line to cover the whole
//! function. The pre-ISSUE-5 rule names `no-panic` and `determinism-hash`
//! are accepted as aliases. The reason is mandatory, stale annotations are
//! themselves findings (`unused-allow`, fixable via `--fix-allows`), and
//! unknown rule names are rejected (`unknown-allow`), so the allowlist
//! cannot rot.
//!
//! Run as `cargo run -p ocdd-lint` from the workspace root (ci.sh gates on
//! it before clippy); the binary exits non-zero on any finding. See
//! [`crate::callgraph`], [`crate::locks`], [`crate::taint`] for the
//! semantic passes and `--explain <rule>` for the rationale of each rule.

pub mod callgraph;
pub mod dataflow;
pub mod locks;
pub mod loops;
pub mod rules;
pub mod schema;
pub mod source;
pub mod taint;
pub mod tokens;

pub use rules::{canonical_rule, check_file, explain, Diagnostic, ALL_RULES};
pub use source::SourceFile;

use callgraph::{AllowUses, Workspace};
use rules::{UNKNOWN_ALLOW, UNUSED_ALLOW};
use std::path::{Path, PathBuf};

/// Directories scanned relative to the workspace root. Test trees
/// (`tests/`, `benches/`) are skipped wholesale — every rule exempts test
/// code — as are the linter's own violation fixtures.
const SCAN_ROOTS: &[&str] = &["crates", "src"];

/// Path fragments that must never be scanned.
const SKIP_FRAGMENTS: &[&str] = &["/target/", "/tests/", "/benches/", "/fixtures/"];

/// Recursively collect `.rs` files under `dir` into `out`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let unixy = path.to_string_lossy().replace('\\', "/");
        if SKIP_FRAGMENTS
            .iter()
            .any(|frag| unixy.contains(frag) || unixy.ends_with(frag.trim_end_matches('/')))
        {
            continue;
        }
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Read every scannable `.rs` file under `root` as path-sorted
/// `(workspace-relative path, content)` pairs.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut paths = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for file in &paths {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, std::fs::read_to_string(file)?));
    }
    Ok(out)
}

/// An allow annotation that suppressed nothing — `--fix-allows` deletes
/// these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleAllow {
    /// Workspace-relative path of the file carrying the annotation.
    pub path: String,
    /// 1-based line the annotation comment sits on.
    pub line: usize,
    /// Rule name exactly as written (possibly an alias).
    pub rule: String,
}

/// The result of a full workspace analysis.
pub struct Analysis {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by `(path, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Annotations that suppressed nothing (each also yields an
    /// `unused-allow` diagnostic).
    pub stale_allows: Vec<StaleAllow>,
}

/// Analyze a set of `(path, content)` files as one workspace: line rules
/// per file, then the three semantic passes over the shared model, then
/// annotation hygiene across everything.
pub fn analyze(files: Vec<(String, String)>) -> Analysis {
    let files_scanned = files.len();
    let ws = Workspace::build(files);
    let mut uses = AllowUses::default();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    for (fi, model) in ws.files.iter().enumerate() {
        let (diags, used) = check_file(&model.src);
        diagnostics.extend(diags);
        for (line, rule) in used {
            uses.mark(fi, line, rule);
        }
    }

    diagnostics.extend(callgraph::panic_reachability(&ws, &mut uses));
    diagnostics.extend(locks::lock_order(&ws, &mut uses));
    diagnostics.extend(taint::determinism_taint(&ws, &mut uses));
    diagnostics.extend(dataflow::unprobed_loops(&ws, &mut uses));
    diagnostics.extend(dataflow::hot_loop_alloc(&ws, &mut uses));
    diagnostics.extend(schema::schema_parity(&ws, &mut uses));

    // Annotation hygiene, after every pass has had its chance to consume
    // an allow. Allows targeting test-only lines are exempt: test code is
    // outside every rule's scope, so "unused there" carries no signal.
    let mut stale_allows = Vec::new();
    for (fi, model) in ws.files.iter().enumerate() {
        for (target_line, allows) in model.src.allows_for_line.iter().enumerate() {
            for a in allows {
                if model.is_test_line(target_line) {
                    continue;
                }
                let Some(canon) = canonical_rule(&a.rule) else {
                    diagnostics.push(Diagnostic {
                        path: model.src.path.clone(),
                        line: a.line,
                        rule: UNKNOWN_ALLOW,
                        message: format!(
                            "annotation names unknown rule `{}` — known rules: {}",
                            a.rule,
                            ALL_RULES.join(", ")
                        ),
                        chain: Vec::new(),
                    });
                    continue;
                };
                if !uses.is_used(fi, target_line, canon) {
                    diagnostics.push(Diagnostic {
                        path: model.src.path.clone(),
                        line: a.line,
                        rule: UNUSED_ALLOW,
                        message: format!(
                            "allow(`{}`) suppressed nothing — remove it (or run \
                             `ocdd-lint --fix-allows --apply`)",
                            a.rule
                        ),
                        chain: Vec::new(),
                    });
                    stale_allows.push(StaleAllow {
                        path: model.src.path.clone(),
                        line: a.line,
                        rule: a.rule.clone(),
                    });
                }
            }
        }
    }

    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    stale_allows.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Analysis {
        files_scanned,
        diagnostics,
        stale_allows,
    }
}

/// Analyze one file's `content` as workspace-relative `rel_path`, running
/// the full pipeline (the single file is the whole workspace).
pub fn scan_content(rel_path: &str, content: &str) -> Vec<Diagnostic> {
    analyze(vec![(rel_path.to_owned(), content.to_owned())]).diagnostics
}

/// Scan the workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Analysis> {
    Ok(analyze(collect_files(root)?))
}

/// JSON string escaping shared by [`to_json`] and [`to_sarif`].
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Every rule name a finding can carry, in the order the `rules` counts
/// object is emitted: the annotatable rules, then the meta rules.
fn emitted_rules() -> Vec<&'static str> {
    let mut all: Vec<&'static str> = ALL_RULES.to_vec();
    all.push(UNUSED_ALLOW);
    all.push(UNKNOWN_ALLOW);
    all
}

/// Render diagnostics as the stable `ocdd-lint/2` JSON schema consumed by
/// ci.sh and `scripts/lint_diff.sh`:
///
/// ```json
/// {
///   "schema": "ocdd-lint/2",
///   "count": 1,
///   "rules": {"panic-reachability": 1, "lock-order": 0, "...": 0},
///   "findings": [
///     {"rule": "...", "file": "...", "line": 1, "message": "...",
///      "chain": ["root (file:line)", "... at file:line"]}
///   ]
/// }
/// ```
///
/// `/2` extends `/1` with the `rules` object: per-rule finding counts for
/// *every* known rule (zeros included), so the ci.sh baseline gate and
/// `scripts/lint_diff.sh` can diff per rule without parsing findings.
/// `chain` is the call-chain / flow witness for semantic rules, outermost
/// first; empty for line rules. Fields are emitted in exactly this order.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"ocdd-lint/2\",\n");
    s.push_str(&format!("  \"count\": {},\n", diags.len()));
    s.push_str("  \"rules\": {");
    for (i, rule) in emitted_rules().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let n = diags.iter().filter(|d| d.rule == *rule).count();
        s.push_str(&format!("\"{rule}\": {n}"));
    }
    s.push_str("},\n");
    s.push_str("  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"rule\": \"{}\", ", esc(d.rule)));
        s.push_str(&format!("\"file\": \"{}\", ", esc(&d.path)));
        s.push_str(&format!("\"line\": {}, ", d.line));
        s.push_str(&format!("\"message\": \"{}\", ", esc(&d.message)));
        s.push_str("\"chain\": [");
        for (j, hop) in d.chain.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", esc(hop)));
        }
        s.push_str("]}");
    }
    if !diags.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Render diagnostics as a minimal SARIF 2.1.0 document — a thin mapping
/// from the `ocdd-lint/2` JSON schema so findings annotate code review
/// directly. One run, one `ocdd-lint` driver carrying every known rule id,
/// one `error`-level result per finding; the witness chain is appended to
/// the message text (SARIF `codeFlows` would be overkill for a text pass).
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [{\n");
    s.push_str("    \"tool\": {\"driver\": {\"name\": \"ocdd-lint\", \"rules\": [");
    for (i, rule) in emitted_rules().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("{{\"id\": \"{rule}\"}}"));
    }
    s.push_str("]}},\n");
    s.push_str("    \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let mut text = d.message.clone();
        if !d.chain.is_empty() {
            text.push_str("; witness: ");
            text.push_str(&d.chain.join(" -> "));
        }
        s.push_str("\n      {");
        s.push_str(&format!("\"ruleId\": \"{}\", ", esc(d.rule)));
        s.push_str("\"level\": \"error\", ");
        s.push_str(&format!("\"message\": {{\"text\": \"{}\"}}, ", esc(&text)));
        s.push_str(&format!(
            "\"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]",
            esc(&d.path),
            d.line
        ));
        s.push('}');
    }
    if !diags.is_empty() {
        s.push_str("\n    ");
    }
    s.push_str("]\n  }]\n}\n");
    s
}

/// Compute (and with `apply` perform) the deletions for stale allow
/// annotations under `root`. Returns the stale allows that were (or would
/// be) removed. Annotation-only lines are deleted whole; trailing
/// annotations are stripped back to the code they ride on.
pub fn fix_allows(root: &Path, apply: bool) -> std::io::Result<Vec<StaleAllow>> {
    let analysis = analyze(collect_files(root)?);
    if analysis.stale_allows.is_empty() || !apply {
        return Ok(analysis.stale_allows);
    }
    let mut by_path: std::collections::BTreeMap<&str, Vec<&StaleAllow>> =
        std::collections::BTreeMap::new();
    for sa in &analysis.stale_allows {
        by_path.entry(sa.path.as_str()).or_default().push(sa);
    }
    for (path, stales) in by_path {
        let abs = root.join(path);
        let content = std::fs::read_to_string(&abs)?;
        let had_trailing_newline = content.ends_with('\n');
        let mut lines: Vec<String> = content.split('\n').map(str::to_owned).collect();
        if had_trailing_newline {
            lines.pop();
        }
        // Highest line first so earlier indices stay valid across removals.
        let mut sorted: Vec<&StaleAllow> = stales;
        sorted.sort_by_key(|sa| std::cmp::Reverse(sa.line));
        for sa in sorted {
            let idx = sa.line - 1;
            let Some(line) = lines.get(idx) else { continue };
            let Some(pos) = line.find("//") else { continue };
            if line[..pos].trim().is_empty() {
                lines.remove(idx);
            } else {
                let code = line[..pos].trim_end().to_owned();
                lines[idx] = code;
            }
        }
        let mut rewritten = lines.join("\n");
        if had_trailing_newline {
            rewritten.push('\n');
        }
        ocdd_iosafe::atomic_write_str(&abs, &rewritten)?;
    }
    Ok(analysis.stale_allows)
}

/// Locate the workspace root: walk up from `start` until a directory with
/// a `Cargo.toml` containing `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_content_has_no_findings() {
        let d = scan_content(
            "crates/core/src/check.rs",
            "pub fn f() -> Option<u32> { Some(1) }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn workspace_root_is_discoverable_from_here() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates/core/src/lib.rs").is_file());
    }

    #[test]
    fn unused_allow_is_reported_at_the_annotation_line() {
        let d = scan_content(
            "crates/core/src/util.rs",
            "// lint: allow(panic-reachability, nothing here panics)\n\
             pub fn fine() -> u32 { 1 }\n",
        );
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, "unused-allow");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn unknown_allow_is_reported() {
        let d = scan_content(
            "crates/core/src/util.rs",
            "pub fn fine() -> u32 { 1 } // lint: allow(no-such-rule, why)\n",
        );
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, "unknown-allow");
    }

    #[test]
    fn json_schema_is_stable() {
        let diags = vec![Diagnostic {
            path: "crates/core/src/x.rs".into(),
            line: 3,
            rule: "panic-reachability",
            message: "a \"quoted\" message".into(),
            chain: vec!["root (a.rs:1)".into(), "`.unwrap()` at b.rs:2".into()],
        }];
        let json = to_json(&diags);
        assert!(json.contains("\"schema\": \"ocdd-lint/2\""));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"rules\": {\"panic-reachability\": 1, \"lock-order\": 0,"));
        assert!(json.contains("\"unprobed-loop\": 0"));
        assert!(json.contains("\"schema-parity\": 0"));
        assert!(json.contains("\"hot-loop-alloc\": 0"));
        assert!(json.contains("\"unknown-allow\": 0"));
        assert!(json.contains(
            "{\"rule\": \"panic-reachability\", \"file\": \"crates/core/src/x.rs\", \
             \"line\": 3, \"message\": \"a \\\"quoted\\\" message\", \
             \"chain\": [\"root (a.rs:1)\", \"`.unwrap()` at b.rs:2\"]}"
        ));
        assert!(to_json(&[]).contains("\"findings\": []"));
    }

    #[test]
    fn sarif_maps_findings_with_rule_location_and_witness() {
        let diags = vec![Diagnostic {
            path: "crates/core/src/x.rs".into(),
            line: 3,
            rule: "unprobed-loop",
            message: "loop never probes".into(),
            chain: vec!["root (a.rs:1)".into(), "`for` loop at x.rs:3".into()],
        }];
        let sarif = to_sarif(&diags);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"ocdd-lint\""));
        assert!(sarif.contains("{\"id\": \"unprobed-loop\"}"));
        assert!(sarif.contains("\"ruleId\": \"unprobed-loop\""));
        assert!(sarif.contains("loop never probes; witness: root (a.rs:1) -> `for` loop at x.rs:3"));
        assert!(sarif.contains("\"uri\": \"crates/core/src/x.rs\""));
        assert!(sarif.contains("\"startLine\": 3"));
        assert!(to_sarif(&[]).contains("\"results\": []"));
    }
}
