//! `ocdd-lint` — the workspace-specific static-analysis pass (ISSUE 4).
//!
//! The compiler cannot see the invariants this reproduction's correctness
//! rests on: byte-identical results across Sequential/Rayon/WorkStealing
//! backends, panic-quarantined workers, and `Relaxed` stats counters that
//! must never feed back into results. `ocdd-lint` enforces them as a text
//! pass over every workspace `.rs` file:
//!
//! | rule | invariant |
//! |---|---|
//! | `no-panic` | no `unwrap`/`expect`/`panic!` in non-test core-crate code |
//! | `determinism-hash` | no `HashMap`/`HashSet` in `search`/`results`/`json` |
//! | `clock-confinement` | `Instant::now`/`SystemTime` only in `runtime.rs` |
//! | `spawn-confinement` | thread spawns only in `search.rs`/`runtime.rs` |
//! | `atomics-audit` | every `Ordering::Relaxed` justified or allowlisted |
//! | `lock-discipline` | `.lock().unwrap()` banned; poison is recovered |
//!
//! A finding is silenced by `// lint: allow(<rule>, <reason>)` — trailing
//! on the offending line or standalone on the line(s) above. The reason is
//! mandatory, stale annotations are themselves findings (`unused-allow`),
//! and unknown rule names are rejected (`unknown-allow`), so the allowlist
//! cannot rot.
//!
//! Run as `cargo run -p ocdd-lint` from the workspace root (ci.sh gates on
//! it before clippy); the binary exits non-zero on any finding.

pub mod rules;
pub mod source;

pub use rules::{check_file, Diagnostic};
pub use source::SourceFile;

use std::path::{Path, PathBuf};

/// Directories scanned relative to the workspace root. Test trees
/// (`tests/`, `benches/`) are skipped wholesale — every rule exempts test
/// code — as are the linter's own violation fixtures.
const SCAN_ROOTS: &[&str] = &["crates", "src"];

/// Path fragments that must never be scanned.
const SKIP_FRAGMENTS: &[&str] = &["/target/", "/tests/", "/benches/", "/fixtures/"];

/// Recursively collect `.rs` files under `dir` into `out`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let unixy = path.to_string_lossy().replace('\\', "/");
        if SKIP_FRAGMENTS
            .iter()
            .any(|frag| unixy.contains(frag) || unixy.ends_with(frag.trim_end_matches('/')))
        {
            continue;
        }
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan one file's `content` as workspace-relative `rel_path`.
pub fn scan_content(rel_path: &str, content: &str) -> Vec<Diagnostic> {
    check_file(&SourceFile::parse(rel_path, content))
}

/// Scan the workspace rooted at `root`, returning all diagnostics sorted
/// by path and line.
pub fn scan_workspace(root: &Path) -> std::io::Result<(usize, Vec<Diagnostic>)> {
    let mut files = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut diagnostics = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let content = std::fs::read_to_string(file)?;
        diagnostics.extend(scan_content(&rel, &content));
    }
    diagnostics.sort_by_key(|d| (d.path.clone(), d.line));
    Ok((files.len(), diagnostics))
}

/// Locate the workspace root: walk up from `start` until a directory with
/// a `Cargo.toml` containing `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_content_has_no_findings() {
        let d = scan_content(
            "crates/core/src/check.rs",
            "pub fn f() -> Option<u32> { Some(1) }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn workspace_root_is_discoverable_from_here() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates/core/src/lib.rs").is_file());
    }
}
