//! Workspace model and call graph (ISSUE 5): per-file `fn` extraction over
//! the token stream, conservative name resolution, and the
//! **panic-reachability** pass.
//!
//! The model is deliberately approximate — there is no type information in
//! a text pass — and every approximation errs toward *more* edges:
//!
//! * method calls `.name(...)` resolve to every workspace `impl` fn named
//!   `name` (any owner type);
//! * qualified calls `Seg::name(...)` resolve by the last path segment:
//!   first as an `impl`/`trait` owner, then as a module (file stem);
//! * bare calls `name(...)` resolve to module-level fns of the same file,
//!   falling back to any module-level fn of that name when the file `use`s
//!   the name;
//! * calls into `std` or the vendored shims resolve to nothing and are
//!   assumed total (shims never run on the discovery hot path's panic
//!   budget; see DESIGN.md §11);
//! * macro bodies other than the panicking macros themselves are opaque.
//!
//! Closure bodies belong to their enclosing fn, so worker closures spawned
//! by the search are analyzed as part of it.

use crate::loops::{extract_loops, LoopRegion};
use crate::rules::{canonical_rule, Diagnostic, PANIC_REACHABILITY};
use crate::source::SourceFile;
use crate::tokens::{matching_close, tokenize, Token, TokenKind};
use std::collections::{HashMap, HashSet, VecDeque};

/// Files whose non-test fns are the roots of panic-reachability: the
/// single-check kernel, the level-synchronous search, the work-stealing
/// scheduler, and the epoch-published shared caches.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/check.rs",
    "crates/core/src/search.rs",
    "crates/core/src/scheduler.rs",
    "crates/core/src/shared_cache.rs",
];

/// Scope of the panic-free discipline (and of the workspace call graph):
/// the algorithmic crates whose code runs inside discovery workers.
pub fn in_analysis_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/relation/src/")
}

/// Rust keywords that must not be mistaken for call or index receivers.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield",
];

pub(crate) fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// One `.rs` file prepared for the semantic passes.
pub struct FileModel {
    /// Masked/annotated source (line rules and allows live here).
    pub src: SourceFile,
    /// Token stream of the masked text.
    pub tokens: Vec<Token>,
    /// Terminal identifiers this file `use`-imports.
    pub imports: HashSet<String>,
}

impl FileModel {
    /// Prepare `content` at workspace-relative `path`.
    pub fn parse(path: &str, content: &str) -> FileModel {
        let src = SourceFile::parse(path, content);
        let masked = src.masked_lines.join("\n");
        let tokens = tokenize(&masked);
        let imports = collect_imports(&tokens);
        FileModel {
            src,
            tokens,
            imports,
        }
    }

    /// Whether 0-based `line` sits in a test-only region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.src.test_line.get(line).copied().unwrap_or(false)
    }
}

/// A `fn` item extracted from a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index into the workspace file list.
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// `impl`/`trait` owner type, when the fn is a method.
    pub owner: Option<String>,
    /// Module display path, e.g. `core::check`.
    pub module: String,
    /// 0-based line of the `fn` keyword.
    pub def_line: usize,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token index range of the body including braces, `None` for
    /// body-less declarations.
    pub body: Option<(usize, usize)>,
    /// True when the fn sits in a test-only region.
    pub is_test: bool,
}

impl FnItem {
    /// Human-readable name: `core::check::SortCache::index_for`.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}::{}", self.module, o, self.name),
            None => format!("{}::{}", self.module, self.name),
        }
    }
}

/// A direct panic source inside a fn body.
#[derive(Debug, Clone)]
pub struct PanicSource {
    /// 0-based line of the source token.
    pub line: usize,
    /// What can panic: `` `.unwrap()` ``, `` `panic!` ``, `` slice indexing `[..]` ``…
    pub what: &'static str,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
enum CallSite {
    /// `.name(...)` — receiver type unknown.
    Method(String),
    /// `Qualifier::name(...)` — last path segment kept.
    Qualified(String, String),
    /// `name(...)`.
    Bare(String),
}

/// The whole-workspace model shared by the semantic passes.
pub struct Workspace {
    /// Files in deterministic (path-sorted) order.
    pub files: Vec<FileModel>,
    /// Extracted fns across all in-scope files.
    pub fns: Vec<FnItem>,
    /// Call-graph adjacency: `calls[f]` lists callee fn ids, sorted.
    pub calls: Vec<Vec<usize>>,
    /// Direct panic sources per fn.
    pub sources: Vec<Vec<PanicSource>>,
    /// Resolved call sites per fn: `(token index, callee fn id)` pairs in
    /// token order — the lock pass needs positions, not just edges.
    pub call_sites: Vec<Vec<(usize, usize)>>,
    /// Loop regions per fn, in header-token order (outer before nested);
    /// see [`crate::loops`].
    pub loops: Vec<Vec<LoopRegion>>,
    /// Fn id by `(file, def_line)`.
    pub fn_of_file_line: HashMap<(usize, usize), usize>,
}

impl Workspace {
    /// Build the model over `(path, content)` pairs. Files outside the
    /// analysis scope still get line rules (via their `FileModel`) but
    /// contribute no fns to the graph.
    pub fn build(files: Vec<(String, String)>) -> Workspace {
        let models: Vec<FileModel> = files.iter().map(|(p, c)| FileModel::parse(p, c)).collect();

        let mut fns: Vec<FnItem> = Vec::new();
        for (fi, m) in models.iter().enumerate() {
            if !in_analysis_scope(&m.src.path) {
                continue;
            }
            extract_fns(fi, m, &mut fns);
        }

        // Name-resolution indexes.
        let mut method_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_owner_name: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut module_level: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_module_name: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        for (id, f) in fns.iter().enumerate() {
            match &f.owner {
                Some(o) => {
                    method_by_name.entry(&f.name).or_default().push(id);
                    by_owner_name.entry((o, &f.name)).or_default().push(id);
                }
                None => {
                    module_level.entry(&f.name).or_default().push(id);
                }
            }
            let stem = f.module.rsplit("::").next().unwrap_or(f.module.as_str());
            by_module_name.entry((stem, &f.name)).or_default().push(id);
        }

        let mut calls: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut call_sites: Vec<Vec<(usize, usize)>> = vec![Vec::new(); fns.len()];
        let mut sources: Vec<Vec<PanicSource>> = vec![Vec::new(); fns.len()];
        for (id, f) in fns.iter().enumerate() {
            let model = &models[f.file];
            let Some((b0, b1)) = f.body else { continue };
            // Exclude nested fn items from this fn's own body scan.
            let nested: Vec<(usize, usize)> = fns
                .iter()
                .filter(|g| g.file == f.file && g.sig_start > b0 && g.sig_start < b1)
                .map(|g| (g.sig_start, g.body.map_or(g.sig_start, |(_, e)| e)))
                .collect();
            let in_nested = |idx: usize| nested.iter().any(|&(s, e)| idx >= s && idx <= e);

            let mut callees: HashSet<usize> = HashSet::new();
            let toks = &model.tokens;
            let mut idx = b0;
            while idx <= b1.min(toks.len().saturating_sub(1)) {
                if in_nested(idx) {
                    idx += 1;
                    continue;
                }
                let t = &toks[idx];
                // Panic sources.
                if let Some(src) = panic_source_at(toks, idx) {
                    sources[id].push(src);
                }
                // Call sites.
                if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
                    if let Some(call) = call_at(toks, idx) {
                        let resolved: Vec<usize> = match &call {
                            CallSite::Method(n) => {
                                method_by_name.get(n.as_str()).cloned().unwrap_or_default()
                            }
                            CallSite::Qualified(q, n) => {
                                if q == "Self" {
                                    match &f.owner {
                                        Some(o) => by_owner_name
                                            .get(&(o.as_str(), n.as_str()))
                                            .cloned()
                                            .unwrap_or_default(),
                                        None => Vec::new(),
                                    }
                                } else if let Some(v) = by_owner_name.get(&(q.as_str(), n.as_str()))
                                {
                                    v.clone()
                                } else {
                                    by_module_name
                                        .get(&(q.as_str(), n.as_str()))
                                        .cloned()
                                        .unwrap_or_default()
                                }
                            }
                            CallSite::Bare(n) => {
                                let same_file: Vec<usize> = module_level
                                    .get(n.as_str())
                                    .map(|v| {
                                        v.iter()
                                            .copied()
                                            .filter(|&g| fns[g].file == f.file)
                                            .collect()
                                    })
                                    .unwrap_or_default();
                                if !same_file.is_empty() {
                                    same_file
                                } else if model.imports.contains(n.as_str()) {
                                    module_level.get(n.as_str()).cloned().unwrap_or_default()
                                } else {
                                    Vec::new()
                                }
                            }
                        };
                        for &callee in &resolved {
                            call_sites[id].push((idx, callee));
                        }
                        callees.extend(resolved);
                    }
                }
                idx += 1;
            }
            let mut list: Vec<usize> = callees.into_iter().collect();
            list.sort_unstable();
            calls[id] = list;
        }

        // Loop regions, attributed to the innermost fn: a nested fn's
        // loops belong to the nested item, not the enclosing one.
        let mut loops: Vec<Vec<LoopRegion>> = Vec::with_capacity(fns.len());
        for f in &fns {
            let model = &models[f.file];
            let mut ls = extract_loops(model, f);
            if let Some((b0, b1)) = f.body {
                let nested: Vec<(usize, usize)> = fns
                    .iter()
                    .filter(|g| g.file == f.file && g.sig_start > b0 && g.sig_start < b1)
                    .map(|g| (g.sig_start, g.body.map_or(g.sig_start, |(_, e)| e)))
                    .collect();
                ls.retain(|l| {
                    !nested
                        .iter()
                        .any(|&(s, e)| l.head_tok >= s && l.head_tok <= e)
                });
            }
            loops.push(ls);
        }

        let mut fn_of_file_line = HashMap::new();
        for (id, f) in fns.iter().enumerate() {
            fn_of_file_line.insert((f.file, f.def_line), id);
        }

        Workspace {
            files: models,
            fns,
            calls,
            sources,
            call_sites,
            loops,
            fn_of_file_line,
        }
    }

    /// The fn whose body covers token index `tok` in file `file`, if any
    /// (innermost wins).
    pub fn enclosing_fn(&self, file: usize, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (id, f) in self.fns.iter().enumerate() {
            if f.file != file {
                continue;
            }
            if let Some((b0, b1)) = f.body {
                if tok >= b0 && tok <= b1 {
                    match best {
                        Some(b) if self.fns[b].sig_start >= f.sig_start => {}
                        _ => best = Some(id),
                    }
                }
            }
        }
        best
    }
}

/// Collect `use` terminal identifiers: in `use a::b::{c, d as e};` the
/// names `c` and `e` (and `b` for `use a::b;`) become referable.
fn collect_imports(tokens: &[Token]) -> HashSet<String> {
    let mut out = HashSet::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("use") {
            let mut j = i + 1;
            while j < tokens.len() && !tokens[j].is_punct(";") {
                if tokens[j].kind == TokenKind::Ident {
                    let next = tokens.get(j + 1);
                    let terminal = match next {
                        Some(t) => t.is_punct(",") || t.is_punct("}") || t.is_punct(";"),
                        None => true,
                    };
                    if terminal {
                        out.insert(tokens[j].text.clone());
                    }
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Module display path for a workspace-relative file path:
/// `crates/core/src/check.rs` → `core::check`, `crates/core/src/lib.rs` →
/// `core`, `src/lib.rs` → `ocdd`.
fn module_path(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    let stem = parts
        .last()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    if parts.first() == Some(&"crates") && parts.len() >= 2 {
        let krate = parts[1];
        if stem == "lib" || stem == "main" || stem.is_empty() {
            krate.to_owned()
        } else {
            format!("{krate}::{stem}")
        }
    } else if stem == "lib" || stem == "main" {
        "ocdd".to_owned()
    } else {
        format!("ocdd::{stem}")
    }
}

/// Skip a generic-argument list starting at the `<` token, returning the
/// index one past the matching `>`. Counts `<`/`>` characters so the
/// `>>`-as-one-token case closes two levels.
pub(crate) fn skip_angles(tokens: &[Token], open: usize) -> usize {
    let mut depth: i64 = 0;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" | "<=" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "=>" | "->" => {}
                _ => {}
            }
        }
        i += 1;
        if depth <= 0 {
            break;
        }
    }
    i
}

/// Extract `fn` items of one file into `out`. Handles `impl`/`trait`
/// owners, skips `macro_rules!` bodies, and records nested fns as items of
/// their own.
fn extract_fns(file: usize, model: &FileModel, out: &mut Vec<FnItem>) {
    let toks = &model.tokens;
    let module = module_path(&model.src.path);
    // (owner, close token index) stack for impl/trait blocks.
    let mut owners: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        owners.retain(|&(_, close)| i <= close);
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "macro_rules" => {
                // macro_rules! name { ... } — opaque, skip wholesale.
                let mut j = i + 1;
                while j < toks.len() && !toks[j].is_punct("{") {
                    j += 1;
                }
                i = matching_close(toks, j).saturating_add(1);
                continue;
            }
            "impl" | "trait" => {
                let kw = i;
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_punct("<")) {
                    j = skip_angles(toks, j);
                }
                // Collect the owner: last path segment before generics; if
                // a `for` appears before the body, the owner follows it.
                let mut owner: Option<String> = None;
                while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                    let tj = &toks[j];
                    if tj.is_ident("for") {
                        owner = None; // the trait name; the type follows
                    } else if tj.is_ident("where") {
                        break;
                    } else if tj.kind == TokenKind::Ident && !is_keyword(&tj.text) {
                        if owner.is_none() {
                            owner = Some(tj.text.clone());
                        }
                    } else if tj.is_punct("<") {
                        j = skip_angles(toks, j);
                        continue;
                    }
                    j += 1;
                }
                while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.is_punct("{")) {
                    let close = matching_close(toks, j);
                    if let Some(o) = owner {
                        owners.push((o, close));
                    }
                    i = j + 1;
                } else {
                    i = j + 1;
                }
                let _ = kw;
                continue;
            }
            "fn" => {
                let Some(name_tok) = toks.get(i + 1) else {
                    i += 1;
                    continue;
                };
                if name_tok.kind != TokenKind::Ident {
                    // `fn(u32) -> u32` bare fn pointer type.
                    i += 1;
                    continue;
                }
                // Find body `{` or terminating `;` at bracket/paren depth 0.
                let mut depth: i64 = 0;
                let mut j = i + 2;
                let mut body: Option<(usize, usize)> = None;
                while j < toks.len() {
                    let tj = &toks[j];
                    if tj.kind == TokenKind::Punct {
                        match tj.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => {
                                body = Some((j, matching_close(toks, j)));
                                break;
                            }
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                let def_line = t.line;
                out.push(FnItem {
                    file,
                    name: name_tok.text.clone(),
                    owner: owners.last().map(|(o, _)| o.clone()),
                    module: module.clone(),
                    def_line,
                    sig_start: i,
                    body,
                    is_test: model.is_test_line(def_line),
                });
                i += 2;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Identify a call at token `idx` (an identifier). Returns `None` for
/// macro invocations, keywords, and plain identifiers.
fn call_at(tokens: &[Token], idx: usize) -> Option<CallSite> {
    let name = &tokens[idx];
    let mut k = idx + 1;
    // Turbofish: name::<...>(
    if tokens.get(k).is_some_and(|t| t.is_punct("::"))
        && tokens.get(k + 1).is_some_and(|t| t.is_punct("<"))
    {
        k = skip_angles(tokens, k + 1);
    }
    if !tokens.get(k).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let prev = idx.checked_sub(1).map(|p| &tokens[p]);
    match prev {
        Some(p) if p.is_punct(".") => Some(CallSite::Method(name.text.clone())),
        Some(p) if p.is_punct("::") => {
            let q = idx.checked_sub(2).map(|p| &tokens[p]);
            match q {
                Some(q) if q.kind == TokenKind::Ident => {
                    Some(CallSite::Qualified(q.text.clone(), name.text.clone()))
                }
                // `::<turbofish>::name(` or `<T as Trait>::name(` — give
                // up on the qualifier, treat as a method-style lookup.
                _ => Some(CallSite::Method(name.text.clone())),
            }
        }
        _ => Some(CallSite::Bare(name.text.clone())),
    }
}

/// Identify a direct panic source at token `idx`.
fn panic_source_at(tokens: &[Token], idx: usize) -> Option<PanicSource> {
    let t = &tokens[idx];
    if t.kind == TokenKind::Ident {
        let next_bang = tokens.get(idx + 1).is_some_and(|n| n.is_punct("!"));
        let what = match t.text.as_str() {
            "panic" if next_bang => "`panic!`",
            "unreachable" if next_bang => "`unreachable!`",
            "todo" if next_bang => "`todo!`",
            "unimplemented" if next_bang => "`unimplemented!`",
            "panic_any" if tokens.get(idx + 1).is_some_and(|n| n.is_punct("(")) => "`panic_any`",
            _ => return None,
        };
        return Some(PanicSource { line: t.line, what });
    }
    if t.is_punct(".") {
        let name = tokens.get(idx + 1)?;
        if name.is_ident("unwrap")
            && tokens.get(idx + 2).is_some_and(|t| t.is_punct("("))
            && tokens.get(idx + 3).is_some_and(|t| t.is_punct(")"))
        {
            return Some(PanicSource {
                line: name.line,
                what: "`.unwrap()`",
            });
        }
        if name.is_ident("expect") && tokens.get(idx + 2).is_some_and(|t| t.is_punct("(")) {
            return Some(PanicSource {
                line: name.line,
                what: "`.expect(..)`",
            });
        }
        return None;
    }
    if t.is_punct("[") {
        let prev = idx.checked_sub(1).map(|p| &tokens[p])?;
        let indexes = match prev.kind {
            TokenKind::Ident => !is_keyword(&prev.text),
            TokenKind::Punct => prev.text == ")" || prev.text == "]",
            _ => false,
        };
        if !indexes {
            return None;
        }
        // `x[..]` (full-range slicing) cannot panic; anything else can.
        let close = matching_close(tokens, idx);
        if close == idx + 2 && tokens[idx + 1].is_punct("..") {
            return None;
        }
        return Some(PanicSource {
            line: t.line,
            what: "slice indexing `[..]`",
        });
    }
    None
}

/// Allow-usage records shared by all passes: `(file, 0-based target line,
/// canonical rule)` triples that justified (suppressed) a finding.
#[derive(Default)]
pub struct AllowUses {
    used: HashSet<(usize, usize, &'static str)>,
}

impl AllowUses {
    /// Record that the allow at `line` for `rule` suppressed something.
    pub fn mark(&mut self, file: usize, line: usize, rule: &'static str) {
        self.used.insert((file, line, rule));
    }

    /// Whether the allow targeting `line` for `rule` was consumed.
    pub fn is_used(&self, file: usize, line: usize, rule: &'static str) -> bool {
        self.used.contains(&(file, line, rule))
    }
}

/// Check site-level then fn-level allows for `rule` (canonical name,
/// aliases included via [`canonical_rule`]). Marks usage and returns true
/// when suppressed.
pub fn allowed_at(
    ws: &Workspace,
    file: usize,
    line: usize,
    fn_id: Option<usize>,
    rule: &'static str,
    uses: &mut AllowUses,
) -> bool {
    let model = &ws.files[file];
    let site = model
        .src
        .allows_for_line
        .get(line)
        .into_iter()
        .flatten()
        .any(|a| canonical_rule(&a.rule) == Some(rule));
    if site {
        uses.mark(file, line, rule);
        return true;
    }
    if let Some(fid) = fn_id {
        let def_line = ws.fns[fid].def_line;
        let fn_level = model
            .src
            .allows_for_line
            .get(def_line)
            .into_iter()
            .flatten()
            .any(|a| canonical_rule(&a.rule) == Some(rule));
        if fn_level {
            uses.mark(file, def_line, rule);
            return true;
        }
    }
    false
}

/// The panic-reachability pass: BFS from the hot-path roots, then one
/// finding per reachable fn that still contains an unsuppressed direct
/// panic source. The finding's chain witnesses the shortest call path
/// `root → … → fn` plus the panic site.
pub fn panic_reachability(ws: &Workspace, uses: &mut AllowUses) -> Vec<Diagnostic> {
    let n = ws.fns.len();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut reached = vec![false; n];
    let mut queue = VecDeque::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        if HOT_PATH_FILES.contains(&ws.files[f.file].src.path.as_str()) {
            reached[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &ws.calls[u] {
            if !reached[v] && !ws.fns[v].is_test {
                reached[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }

    let mut out = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !reached[id] || f.is_test || ws.sources[id].is_empty() {
            continue;
        }
        let model = &ws.files[f.file];
        // fn-level allow covers every source in the fn.
        let fn_allow = model
            .src
            .allows_for_line
            .get(f.def_line)
            .into_iter()
            .flatten()
            .any(|a| canonical_rule(&a.rule) == Some(PANIC_REACHABILITY));
        if fn_allow {
            uses.mark(f.file, f.def_line, PANIC_REACHABILITY);
            continue;
        }
        let mut first_live: Option<&PanicSource> = None;
        for s in &ws.sources[id] {
            if model.is_test_line(s.line) {
                continue;
            }
            let site = model
                .src
                .allows_for_line
                .get(s.line)
                .into_iter()
                .flatten()
                .any(|a| canonical_rule(&a.rule) == Some(PANIC_REACHABILITY));
            if site {
                uses.mark(f.file, s.line, PANIC_REACHABILITY);
            } else if first_live.is_none() {
                first_live = Some(s);
            }
        }
        let Some(src) = first_live else { continue };

        // Witness: walk parents back to a root.
        let mut chain_ids = vec![id];
        let mut cur = id;
        while let Some(p) = parent[cur] {
            chain_ids.push(p);
            cur = p;
        }
        chain_ids.reverse();
        let mut chain: Vec<String> = chain_ids
            .iter()
            .map(|&g| {
                let gf = &ws.fns[g];
                format!(
                    "{} ({}:{})",
                    gf.display(),
                    ws.files[gf.file].src.path,
                    gf.def_line + 1
                )
            })
            .collect();
        chain.push(format!(
            "{} at {}:{}",
            src.what,
            model.src.path,
            src.line + 1
        ));

        out.push(Diagnostic {
            path: model.src.path.clone(),
            line: src.line + 1,
            rule: PANIC_REACHABILITY,
            message: format!(
                "{} in `{}`, reachable from the hot path — make the function \
                 total (`get`-based handling, typed errors) or annotate the \
                 proven invariant at the site or the fn",
                src.what,
                f.display()
            ),
            chain,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, c)| (p.to_string(), c.to_string()))
                .collect(),
        )
    }

    #[test]
    fn fns_and_owners_are_extracted() {
        let w = ws(&[(
            "crates/core/src/check.rs",
            "pub fn free() {}\nimpl SortCache {\n    pub fn index_for(&self) {}\n}\n\
             impl std::fmt::Display for Diagnostic {\n    fn fmt(&self) {}\n}\n",
        )]);
        let names: Vec<(String, Option<String>)> = w
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert!(names.contains(&("free".into(), None)));
        assert!(names.contains(&("index_for".into(), Some("SortCache".into()))));
        assert!(names.contains(&("fmt".into(), Some("Diagnostic".into()))));
    }

    #[test]
    fn cross_file_call_edge_resolves_via_module_qualifier() {
        let w = ws(&[
            (
                "crates/core/src/check.rs",
                "pub fn entry() { crate::util::helper(); }\n",
            ),
            ("crates/core/src/util.rs", "pub fn helper() -> u32 { 1 }\n"),
        ]);
        let entry = w.fns.iter().position(|f| f.name == "entry").unwrap();
        let helper = w.fns.iter().position(|f| f.name == "helper").unwrap();
        assert!(w.calls[entry].contains(&helper));
    }

    #[test]
    fn panic_reaches_through_a_call_edge() {
        let w = ws(&[
            (
                "crates/core/src/check.rs",
                "pub fn entry() { crate::util::helper(); }\n",
            ),
            (
                "crates/core/src/util.rs",
                "pub fn helper(v: &[u32]) -> u32 { v[0] }\n",
            ),
        ]);
        let mut uses = AllowUses::default();
        let diags = panic_reachability(&w, &mut uses);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].path, "crates/core/src/util.rs");
        assert_eq!(diags[0].rule, PANIC_REACHABILITY);
        assert_eq!(
            diags[0].chain,
            vec![
                "core::check::entry (crates/core/src/check.rs:1)",
                "core::util::helper (crates/core/src/util.rs:1)",
                "slice indexing `[..]` at crates/core/src/util.rs:1",
            ]
        );
    }

    #[test]
    fn unreachable_panics_are_not_flagged() {
        let w = ws(&[(
            "crates/core/src/util.rs",
            "pub fn lonely(v: Option<u32>) -> u32 { v.unwrap() }\n",
        )]);
        let mut uses = AllowUses::default();
        assert!(panic_reachability(&w, &mut uses).is_empty());
    }

    #[test]
    fn fn_level_allow_suppresses_all_sources() {
        let w = ws(&[(
            "crates/core/src/check.rs",
            "// lint: allow(panic-reachability, bounded by construction)\n\
             pub fn kernel(v: &[u32]) -> u32 { v[0] + v[1] }\n",
        )]);
        let mut uses = AllowUses::default();
        let diags = panic_reachability(&w, &mut uses);
        assert!(diags.is_empty(), "{diags:#?}");
        assert!(uses.is_used(0, 1, PANIC_REACHABILITY));
    }

    #[test]
    fn legacy_no_panic_site_allow_keeps_working() {
        let w = ws(&[(
            "crates/core/src/check.rs",
            "pub fn kernel(v: Option<u32>) -> u32 {\n\
             // lint: allow(no-panic, proven invariant)\n    v.unwrap()\n}\n",
        )]);
        let mut uses = AllowUses::default();
        let diags = panic_reachability(&w, &mut uses);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn full_range_slicing_is_not_a_source() {
        let w = ws(&[(
            "crates/core/src/check.rs",
            "pub fn total(v: &Vec<u32>) -> &[u32] { &v[..] }\n",
        )]);
        let mut uses = AllowUses::default();
        assert!(panic_reachability(&w, &mut uses).is_empty());
    }

    #[test]
    fn method_calls_resolve_conservatively() {
        let w = ws(&[
            (
                "crates/core/src/search.rs",
                "pub fn drive(c: &mut Cache) { c.evict(); }\n",
            ),
            (
                "crates/core/src/util.rs",
                "impl Cache {\n    pub fn evict(&mut self) { self.slots.pop().expect(\"nonempty\"); }\n}\n",
            ),
        ]);
        let mut uses = AllowUses::default();
        let diags = panic_reachability(&w, &mut uses);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("core::util::Cache::evict"));
    }
}
