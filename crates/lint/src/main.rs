//! Binary entry point: `cargo run -p ocdd-lint [root]`.
//!
//! Scans every workspace `.rs` file against the invariant rules (see the
//! crate docs) and exits with status 1 if any diagnostic is produced —
//! ci.sh runs this as a hard gate before clippy.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match ocdd_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("ocdd-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    match ocdd_lint::scan_workspace(&root) {
        Ok((files, diagnostics)) => {
            for d in &diagnostics {
                println!("{d}");
            }
            println!(
                "ocdd-lint: {files} file(s) scanned, {} violation(s)",
                diagnostics.len()
            );
            if diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ocdd-lint: scan failed: {e}");
            ExitCode::FAILURE
        }
    }
}
