//! Binary entry point: `cargo run -p ocdd-lint -- [root] [flags]`.
//!
//! Modes:
//!
//! * default — scan the workspace, print human-readable findings (with
//!   call-chain witnesses for the semantic rules), exit 1 on any finding.
//!   ci.sh runs this as a hard gate before clippy.
//! * `--emit json` — print the stable `ocdd-lint/2` JSON document instead
//!   (schema, count, per-rule counts, findings with rule, file, line,
//!   message, chain); same exit-code contract. ci.sh uploads this to
//!   `results/lint_findings.json` and gates the per-rule counts against
//!   `results/lint_baseline.txt`.
//! * `--emit sarif` — print a SARIF 2.1.0 document instead, for code
//!   scanning UIs. ci.sh uploads this to `results/lint_findings.sarif`.
//! * `--out FILE` — with `--emit`, write the document to FILE via an
//!   atomic tmp+fsync+rename instead of stdout, so a killed CI run never
//!   leaves a truncated findings file.
//! * `--explain <rule>` — print what a rule enforces and why, then exit 0.
//! * `--fix-allows` — list stale `lint: allow` annotations (dry run);
//!   add `--apply` to delete them in place.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: ocdd-lint [root] [--emit json|sarif] [--out FILE] [--explain <rule>] \
                     [--fix-allows [--apply]]";

/// Machine-readable output format selected by `--emit`.
#[derive(Clone, Copy, PartialEq)]
enum Emit {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut emit = Emit::Human;
    let mut out_file: Option<PathBuf> = None;
    let mut explain_rule: Option<String> = None;
    let mut fix_allows = false;
    let mut apply = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit" => match args.next().as_deref() {
                Some("json") => emit = Emit::Json,
                Some("sarif") => emit = Emit::Sarif,
                other => {
                    eprintln!(
                        "ocdd-lint: --emit supports `json` or `sarif` (got {:?})\n{USAGE}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--explain" => match args.next() {
                Some(rule) => explain_rule = Some(rule),
                None => {
                    eprintln!("ocdd-lint: --explain needs a rule name\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(path) => out_file = Some(PathBuf::from(path)),
                None => {
                    eprintln!("ocdd-lint: --out needs a file path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--fix-allows" => fix_allows = true,
            "--apply" => apply = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("ocdd-lint: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
            path if root.is_none() => root = Some(PathBuf::from(path)),
            extra => {
                eprintln!("ocdd-lint: unexpected argument `{extra}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(rule) = explain_rule {
        return match ocdd_lint::explain(&rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "ocdd-lint: no rule named `{rule}` — known rules: {}",
                    ocdd_lint::ALL_RULES.join(", ")
                );
                ExitCode::FAILURE
            }
        };
    }
    if apply && !fix_allows {
        eprintln!("ocdd-lint: --apply only makes sense with --fix-allows\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if out_file.is_some() && emit == Emit::Human {
        eprintln!("ocdd-lint: --out only makes sense with --emit json|sarif\n{USAGE}");
        return ExitCode::FAILURE;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match ocdd_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("ocdd-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    if fix_allows {
        return match ocdd_lint::fix_allows(&root, apply) {
            Ok(stale) => {
                for sa in &stale {
                    println!(
                        "{}:{}: stale allow({}) {}",
                        sa.path,
                        sa.line,
                        sa.rule,
                        if apply { "removed" } else { "would be removed" }
                    );
                }
                if apply {
                    println!("ocdd-lint: {} stale allow(s) removed", stale.len());
                } else {
                    println!(
                        "ocdd-lint: {} stale allow(s) found (dry run — pass --apply to remove)",
                        stale.len()
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ocdd-lint: fix-allows failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match ocdd_lint::scan_workspace(&root) {
        Ok(analysis) => {
            let doc = match emit {
                Emit::Json => Some(ocdd_lint::to_json(&analysis.diagnostics)),
                Emit::Sarif => Some(ocdd_lint::to_sarif(&analysis.diagnostics)),
                Emit::Human => None,
            };
            if let Some(doc) = doc {
                match &out_file {
                    Some(path) => {
                        if let Err(e) = ocdd_iosafe::atomic_write_str(path, &doc) {
                            eprintln!("ocdd-lint: cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                    }
                    None => print!("{doc}"),
                }
            } else {
                for d in &analysis.diagnostics {
                    println!("{d}");
                }
                println!(
                    "ocdd-lint: {} file(s) scanned, {} violation(s)",
                    analysis.files_scanned,
                    analysis.diagnostics.len()
                );
            }
            if analysis.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ocdd-lint: scan failed: {e}");
            ExitCode::FAILURE
        }
    }
}
