//! Token stream over masked source text (ISSUE 5).
//!
//! [`crate::source::SourceFile`] masking blanks comment bodies and
//! string/char-literal contents while preserving every byte position, so a
//! tokenizer over the masked text yields tokens whose byte offsets are
//! valid into the *original* file as well. The semantic passes
//! ([`crate::callgraph`], [`crate::locks`], [`crate::taint`]) work on this
//! stream instead of per-line `contains` probes: `unwrap_or_else` no
//! longer looks like `unwrap`, and `v[i]` is distinguishable from `#[cfg]`
//! by the preceding token.
//!
//! The tokenizer is total: any byte sequence produces a stream, unknown
//! characters become single-character [`TokenKind::Punct`] tokens, and the
//! invariants the proptest differential pins are (a) token spans are
//! strictly increasing and non-overlapping, (b) each span slices the
//! masked text to exactly the token text, and (c) every byte between
//! tokens is whitespace.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `queues`, `unwrap`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (`0`, `1.5`, `0xFF`, `1_000u64`).
    Number,
    /// String literal — contents blanked by masking, quotes preserved.
    Str,
    /// Char literal — contents blanked by masking.
    CharLit,
    /// Operator or delimiter (possibly multi-character: `::`, `..=`).
    Punct,
}

/// One token of the masked source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Exact text of the token as it appears in the masked source.
    pub text: String,
    /// 0-based line of the token's first byte.
    pub line: usize,
    /// Byte offset of the first byte in the masked (and original) text.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True when the token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS3: &[&str] = &["..=", "<<=", ">>=", "..."];
const PUNCTS2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "^=", "&=", "|=", "..",
];

/// Tokenize masked source text. `masked` must come from
/// [`crate::source::SourceFile`] masking (comments blanked, string bodies
/// blanked) — raw unmasked text also works, but string contents would then
/// be tokenized as code.
pub fn tokenize(masked: &str) -> Vec<Token> {
    let bytes = masked.as_bytes();
    let n = bytes.len();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 0;

    let push = |out: &mut Vec<Token>, kind, start: usize, end: usize, line: usize| {
        out.push(Token {
            kind,
            text: masked[start..end].to_owned(),
            line,
            start,
            end,
        });
    };

    while i < n {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Identifier / keyword (ASCII only; the workspace is ASCII-clean
        // outside comments and strings, which are masked away).
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            push(&mut out, TokenKind::Ident, start, i, line);
            continue;
        }
        // Number: digits, then alphanumerics/underscores (covers hex,
        // suffixes), plus one `.` when followed by a digit (float) — but
        // never `..` (range).
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            if i + 1 < n && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
            }
            push(&mut out, TokenKind::Number, start, i, line);
            continue;
        }
        // String literal: masked bodies contain no `"`, so scan to the
        // closing quote, then absorb a raw-string `#` suffix if present.
        if c == b'"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n && bytes[i] != b'"' {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            if i < n {
                i += 1; // closing quote
            }
            while i < n && bytes[i] == b'#' {
                i += 1;
            }
            push(&mut out, TokenKind::Str, start, i, start_line);
            continue;
        }
        // `'`: masked char literals are `'<blanks>'`; lifetimes are
        // `'ident`. A quote followed by whitespace is a masked char.
        if c == b'\'' {
            if i + 1 < n && (bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_') {
                let start = i;
                i += 1;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push(&mut out, TokenKind::Lifetime, start, i, line);
                continue;
            }
            if i + 1 < n && (bytes[i + 1] == b' ' || bytes[i + 1] == b'\n') {
                let start = i;
                let start_line = line;
                i += 1;
                while i < n && bytes[i] != b'\'' {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i < n {
                    i += 1;
                }
                push(&mut out, TokenKind::CharLit, start, i, start_line);
                continue;
            }
            push(&mut out, TokenKind::Punct, i, i + 1, line);
            i += 1;
            continue;
        }
        // Punctuation, maximal munch.
        let rest = &masked[i..];
        let mut matched = 1;
        for p in PUNCTS3 {
            if rest.starts_with(p) {
                matched = 3;
                break;
            }
        }
        if matched == 1 {
            for p in PUNCTS2 {
                if rest.starts_with(p) {
                    matched = 2;
                    break;
                }
            }
        }
        push(&mut out, TokenKind::Punct, i, i + matched, line);
        i += matched;
    }
    out
}

/// Index of the token matching the closing delimiter for the opening
/// delimiter at `open` (`(`/`)`, `[`/`]`, `{`/`}`). Returns `tokens.len()`
/// when unbalanced.
pub fn matching_close(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens.get(open).map(|t| t.text.as_str()) {
        Some("(") => ("(", ")"),
        Some("[") => ("[", "]"),
        Some("{") => ("{", "}"),
        _ => return tokens.len(),
    };
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let toks = kinds("let x = v[i] + 1.5;");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Ident, "v".into()),
                (TokenKind::Punct, "[".into()),
                (TokenKind::Ident, "i".into()),
                (TokenKind::Punct, "]".into()),
                (TokenKind::Punct, "+".into()),
                (TokenKind::Number, "1.5".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = kinds("0..n");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Number, "0".into()),
                (TokenKind::Punct, "..".into()),
                (TokenKind::Ident, "n".into()),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_masked_chars() {
        // As produced by masking: 'a stays, 'x' becomes '<blank>'.
        let toks = kinds("&'static str; let c = ' ';");
        assert!(toks.contains(&(TokenKind::Lifetime, "'static".into())));
        assert!(toks.contains(&(TokenKind::CharLit, "' '".into())));
    }

    #[test]
    fn multichar_puncts_munch_maximally() {
        let toks = kinds("a::b ..= c -> d");
        assert!(toks.contains(&(TokenKind::Punct, "::".into())));
        assert!(toks.contains(&(TokenKind::Punct, "..=".into())));
        assert!(toks.contains(&(TokenKind::Punct, "->".into())));
    }

    #[test]
    fn spans_round_trip_the_masked_text() {
        let src = "fn f(v: &[u32]) -> u32 { v[0] + \"   \".len() as u32 }";
        let mut last_end = 0;
        for t in tokenize(src) {
            assert!(t.start >= last_end, "overlapping spans");
            assert!(src[last_end..t.start].chars().all(char::is_whitespace));
            assert_eq!(&src[t.start..t.end], t.text);
            last_end = t.end;
        }
    }

    #[test]
    fn lines_are_tracked() {
        let toks = tokenize("a\nb\n  c");
        assert_eq!(toks[0].line, 0);
        assert_eq!(toks[1].line, 1);
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn matching_close_balances() {
        let toks = tokenize("f(a, (b), [c{d}])");
        assert_eq!(matching_close(&toks, 1), toks.len() - 1);
    }
}
