//! Lock-order deadlock detection (ISSUE 5).
//!
//! The pass builds a **lock-order graph** over textual lock identities:
//! an edge `A → B` is recorded whenever a guard for `A` is still live
//! while `B` is acquired — in the same function, or inside any function
//! transitively called at that point. A cycle in the graph means two
//! executions can take the same locks in opposite orders, i.e. a
//! potential deadlock. This statically re-derives the property the loom
//! lane checks dynamically for `StealQueues` and `EpochPrefixCache`
//! (DESIGN.md §10): those protocols never hold one deque/shard lock while
//! taking another, so the workspace graph must be edge-free.
//!
//! Approximations (all spelled out in DESIGN.md §11):
//!
//! * a lock's identity is the last field/variable name before the
//!   `.lock()`/`.read()`/`.write()` call, with index groups stripped —
//!   `self.queues[victim].lock()` and `self.queues[worker].lock()` are
//!   the *same* node `queues` (distinct elements of one lock family);
//! * a guard is **held** only when the acquisition is the entire
//!   right-hand side of a `let` (modulo `recover(..)` / poison-recovery
//!   wrappers); a guard consumed inside a larger statement is a
//!   temporary that dies at the `;` and orders nothing — which is exactly
//!   why the owner/thief steal protocol is clean;
//! * a held guard dies at `drop(g)`, at the end of its block, or at the
//!   end of the function, whichever comes first;
//! * same-identity edges (`A → A`) are reported: re-locking a lock family
//!   while holding a member is a self-deadlock unless disjointness of the
//!   indices is proven — annotate it if so.

use crate::callgraph::{allowed_at, AllowUses, Workspace};
use crate::rules::{Diagnostic, LOCK_ORDER};
use crate::tokens::{matching_close, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// Accessor names that acquire a guard when called with no arguments.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Wrapper fns/methods through which a guard may pass while still being
/// the statement's bound value (the workspace poison-recovery idiom).
const GUARD_WRAPPERS: &[&str] = &["recover", "unwrap_or_else", "unwrap", "expect"];

/// One acquisition site.
#[derive(Debug, Clone)]
struct Acquire {
    /// Textual lock identity (see module docs).
    identity: String,
    /// Token index of the accessor's `.`.
    dot: usize,
    /// 0-based line.
    line: usize,
    /// Variable the guard is bound to when the statement is a plain
    /// `let g = <acquire>;` — `None` for temporaries.
    bound_var: Option<String>,
}

/// A held guard during the linear scan.
#[derive(Debug, Clone)]
struct Held {
    identity: String,
    var: Option<String>,
    depth: i64,
    line: usize,
}

/// One lock-order edge with its witness.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    /// fn id the edge was observed in.
    fn_id: usize,
    /// 0-based line of the second acquisition (or the call that performs
    /// it).
    line: usize,
    witness: String,
}

/// Find the acquisition at the `.` token `idx`, if any: `. lock ( )` with
/// zero arguments (ditto `read`/`write`).
fn acquire_at(tokens: &[Token], idx: usize) -> Option<Acquire> {
    if !tokens[idx].is_punct(".") {
        return None;
    }
    let name = tokens.get(idx + 1)?;
    if name.kind != TokenKind::Ident || !ACQUIRE_METHODS.contains(&name.text.as_str()) {
        return None;
    }
    if !tokens.get(idx + 2).is_some_and(|t| t.is_punct("("))
        || !tokens.get(idx + 3).is_some_and(|t| t.is_punct(")"))
    {
        return None;
    }
    let identity = lock_identity(tokens, idx)?;
    Some(Acquire {
        identity,
        dot: idx,
        line: name.line,
        bound_var: None,
    })
}

/// Walk back from the accessor's `.` to the last meaningful path segment:
/// skip one `[...]` index group, then take the preceding identifier; a
/// preceding `(...)` call yields `name()` of its callee.
fn lock_identity(tokens: &[Token], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    if tokens[j].is_punct("]") {
        // Skip the index group backwards.
        let mut depth = 0i64;
        loop {
            match tokens[j].text.as_str() {
                "]" if tokens[j].kind == TokenKind::Punct => depth += 1,
                "[" if tokens[j].kind == TokenKind::Punct => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    let t = &tokens[j];
    if t.kind == TokenKind::Ident {
        return Some(t.text.clone());
    }
    if t.is_punct(")") {
        // A call returning the lock: identify by the callee name.
        let mut depth = 0i64;
        loop {
            match tokens[j].text.as_str() {
                ")" if tokens[j].kind == TokenKind::Punct => depth += 1,
                "(" if tokens[j].kind == TokenKind::Punct => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j = j.checked_sub(1)?;
        }
        let callee = tokens.get(j.checked_sub(1)?)?;
        if callee.kind == TokenKind::Ident {
            return Some(format!("{}()", callee.text));
        }
    }
    None
}

/// Decide whether the acquisition at `acq` is the bound value of a plain
/// `let` statement (possibly through poison-recovery wrappers), and if so
/// which variable holds the guard.
fn binding_of(tokens: &[Token], body: (usize, usize), acq: &Acquire) -> Option<String> {
    // Statement start: the token after the previous `;`/`{`/`}`.
    let mut s = acq.dot;
    while s > body.0 {
        let t = &tokens[s - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        s -= 1;
    }
    if !tokens.get(s).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut v = s + 1;
    if tokens.get(v).is_some_and(|t| t.is_ident("mut")) {
        v += 1;
    }
    let var = tokens.get(v)?;
    if var.kind != TokenKind::Ident || !tokens.get(v + 1).is_some_and(|t| t.is_punct("=")) {
        return None;
    }
    // After the accessor's `( )`, only wrapper-closing tokens may remain
    // before the `;`: `)` of wrapper calls, or `.wrapper(...)` chains.
    let mut k = acq.dot + 4; // past `. name ( )`
    while k < tokens.len() && !tokens[k].is_punct(";") {
        let t = &tokens[k];
        if t.is_punct(")") {
            k += 1;
            continue;
        }
        if t.is_punct(".")
            && tokens
                .get(k + 1)
                .is_some_and(|n| GUARD_WRAPPERS.contains(&n.text.as_str()))
            && tokens.get(k + 2).is_some_and(|t| t.is_punct("("))
        {
            k = matching_close(tokens, k + 2) + 1;
            continue;
        }
        return None; // guard flows into a larger expression: temporary
    }
    Some(var.text.clone())
}

/// Per-fn direct acquisitions, then the transitive set through calls.
fn transitive_locks(ws: &Workspace, direct: &[Vec<Acquire>]) -> Vec<BTreeSet<String>> {
    let n = ws.fns.len();
    let mut trans: Vec<BTreeSet<String>> = direct
        .iter()
        .map(|v| v.iter().map(|a| a.identity.clone()).collect())
        .collect();
    // Worklist fixpoint over the call graph.
    let mut changed = true;
    while changed {
        changed = false;
        for f in 0..n {
            for &g in &ws.calls[f] {
                let add: Vec<String> = trans[g]
                    .iter()
                    .filter(|l| !trans[f].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    trans[f].extend(add);
                    changed = true;
                }
            }
        }
    }
    trans
}

/// The lock-order pass over the whole workspace.
pub fn lock_order(ws: &Workspace, uses: &mut AllowUses) -> Vec<Diagnostic> {
    // 1. Direct acquisitions per fn.
    let mut direct: Vec<Vec<Acquire>> = vec![Vec::new(); ws.fns.len()];
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let toks = &ws.files[f.file].tokens;
        for idx in b0..=b1.min(toks.len().saturating_sub(1)) {
            if let Some(mut a) = acquire_at(toks, idx) {
                if ws.files[f.file].is_test_line(a.line) {
                    continue;
                }
                a.bound_var = binding_of(toks, (b0, b1), &a);
                direct[id].push(a);
            }
        }
    }

    let trans = transitive_locks(ws, &direct);

    // 2. Edges: linear scan per fn with guard scopes.
    let mut edges: Vec<Edge> = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test || direct[id].is_empty() && ws.call_sites[id].is_empty() {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let toks = &ws.files[f.file].tokens;
        let path = &ws.files[f.file].src.path;
        let acq_at: BTreeMap<usize, &Acquire> = direct[id].iter().map(|a| (a.dot, a)).collect();
        let calls_at: BTreeMap<usize, Vec<usize>> = {
            let mut m: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for &(tok, callee) in &ws.call_sites[id] {
                m.entry(tok).or_default().push(callee);
            }
            m
        };
        let mut held: Vec<Held> = Vec::new();
        let mut depth: i64 = 0;
        for idx in b0..=b1.min(toks.len().saturating_sub(1)) {
            let t = &toks[idx];
            if t.kind == TokenKind::Punct {
                if t.text == "{" {
                    depth += 1;
                } else if t.text == "}" {
                    depth -= 1;
                    held.retain(|h| h.depth <= depth);
                }
            }
            // drop(g) releases the guard early.
            if t.is_ident("drop")
                && toks.get(idx + 1).is_some_and(|t| t.is_punct("("))
                && toks.get(idx + 3).is_some_and(|t| t.is_punct(")"))
            {
                if let Some(v) = toks.get(idx + 2) {
                    held.retain(|h| h.var.as_deref() != Some(v.text.as_str()));
                }
            }
            if let Some(a) = acq_at.get(&idx) {
                for h in &held {
                    edges.push(Edge {
                        from: h.identity.clone(),
                        to: a.identity.clone(),
                        fn_id: id,
                        line: a.line,
                        witness: format!(
                            "`{}` acquires `{}` ({}:{}) while holding `{}` (acquired {}:{})",
                            f.display(),
                            a.identity,
                            path,
                            a.line + 1,
                            h.identity,
                            path,
                            h.line + 1
                        ),
                    });
                }
                if let Some(var) = &a.bound_var {
                    held.push(Held {
                        identity: a.identity.clone(),
                        var: Some(var.clone()),
                        depth,
                        line: a.line,
                    });
                }
            }
            if let Some(callees) = calls_at.get(&idx) {
                if !held.is_empty() {
                    for &g in callees {
                        for lock in &trans[g] {
                            for h in &held {
                                edges.push(Edge {
                                    from: h.identity.clone(),
                                    to: lock.clone(),
                                    fn_id: id,
                                    line: t.line,
                                    witness: format!(
                                        "`{}` calls `{}` ({}:{}) while holding `{}` \
                                         (acquired {}:{}); the callee acquires `{}`",
                                        f.display(),
                                        ws.fns[g].display(),
                                        path,
                                        t.line + 1,
                                        h.identity,
                                        path,
                                        h.line + 1,
                                        lock
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // 3. Cycle detection over the identity digraph.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let mut out = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for e in &edges {
        // A cycle exists through this edge iff `to` reaches `from`.
        if let Some(mut cycle) = find_path(&adj, &e.to, &e.from) {
            // `cycle` is `[e.to, …, e.from]`; prepend `e.from` and drop the
            // duplicate tail so the list holds each node of the cycle once.
            cycle.insert(0, e.from.clone());
            cycle.pop();
            // Canonicalize: rotate so the smallest identity leads.
            let key = canonical_cycle(&cycle);
            if !reported.insert(key.clone()) {
                continue;
            }
            let f = &ws.fns[e.fn_id];
            let suppressed = allowed_at(ws, f.file, e.line, Some(e.fn_id), LOCK_ORDER, uses);
            if suppressed {
                continue;
            }
            let mut display = key.clone();
            display.push(key[0].clone());
            let mut chain = vec![format!("lock-order cycle: {}", display.join(" -> "))];
            // Witness every edge of the cycle with one observed site.
            for k in 0..key.len() {
                let (from, to) = (&key[k], &key[(k + 1) % key.len()]);
                if let Some(edge) = edges.iter().find(|x| x.from == *from && x.to == *to) {
                    chain.push(edge.witness.clone());
                }
            }
            out.push(Diagnostic {
                path: ws.files[f.file].src.path.clone(),
                line: e.line + 1,
                rule: LOCK_ORDER,
                message: format!(
                    "lock-order cycle through `{}` — two executions can acquire \
                     these locks in opposite orders (potential deadlock); impose \
                     a total acquisition order or drop the guard first",
                    key.join("` and `")
                ),
                chain,
            });
        }
    }
    out
}

/// Shortest identity path from `from` to `to` (BFS), inclusive of both
/// ends; `Some([to])`-style degenerate path when `from == to` and a self
/// edge exists is handled by the caller's edge existence.
fn find_path(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> Option<Vec<String>> {
    if from == to {
        return Some(vec![from.to_owned()]);
    }
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for &v in adj.get(u).into_iter().flatten() {
            if v != from && !prev.contains_key(v) {
                prev.insert(v, u);
                if v == to {
                    let mut path = vec![v.to_owned()];
                    let mut cur = v;
                    while let Some(&p) = prev.get(cur) {
                        path.push(p.to_owned());
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// Rotate a cycle's node list so the lexicographically smallest identity
/// comes first (stable dedup key across discovery orders). The list must
/// be the cycle without the closing repeat.
fn canonical_cycle(cycle: &[String]) -> Vec<String> {
    let Some(min_pos) = cycle
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1))
        .map(|(i, _)| i)
    else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(cycle.len());
    for k in 0..cycle.len() {
        out.push(cycle[(min_pos + k) % cycle.len()].clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, c)| (p.to_string(), c.to_string()))
                .collect(),
        );
        let mut uses = AllowUses::default();
        lock_order(&ws, &mut uses)
    }

    #[test]
    fn ab_ba_cycle_is_reported() {
        let diags = run(&[(
            "crates/core/src/pair.rs",
            "impl Pair {\n\
             pub fn forward(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    drop(b); drop(a);\n}\n\
             pub fn backward(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n    drop(a); drop(b);\n}\n\
             }\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].rule, LOCK_ORDER);
        assert!(
            diags[0].chain[0].contains("alpha -> beta"),
            "{:?}",
            diags[0].chain
        );
    }

    #[test]
    fn temporaries_hold_no_order() {
        // The steal-protocol shape: lock consumed inside one statement.
        let diags = run(&[(
            "crates/core/src/sched.rs",
            "impl Q {\npub fn pop(&self, w: usize) -> Option<usize> {\n\
             if let Some(b) = recover(self.queues.lock()).pop_front() { return Some(b); }\n\
             recover(self.queues.lock()).pop_back()\n}\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn guard_dies_at_block_end() {
        let diags = run(&[(
            "crates/core/src/cache.rs",
            "impl C {\npub fn sweep(&self) {\n    for s in 0..self.n {\n        let g = self.shards.lock();\n        g.len();\n    }\n    let h = self.shards.lock();\n    h.len();\n}\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let diags = run(&[(
            "crates/core/src/cache.rs",
            "impl C {\npub fn two(&self) {\n    let a = self.alpha.lock();\n    drop(a);\n    let b = self.beta.lock();\n    drop(b);\n    let a2 = self.alpha.lock();\n    drop(a2);\n}\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn self_edge_via_held_guard_is_reported() {
        let diags = run(&[(
            "crates/core/src/cache.rs",
            "impl C {\npub fn double(&self) {\n    let a = self.shards.lock();\n    let b = self.shards.lock();\n    drop(b); drop(a);\n}\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:#?}");
    }

    #[test]
    fn interprocedural_edge_through_a_call() {
        let diags = run(&[(
            "crates/core/src/pair.rs",
            "impl P {\n\
             pub fn outer(&self) {\n    let a = self.alpha.lock();\n    self.inner();\n    drop(a);\n}\n\
             pub fn inner(&self) {\n    let b = self.beta.lock();\n    self.outer2();\n    drop(b);\n}\n\
             pub fn outer2(&self) {\n    let a = self.alpha.lock();\n    drop(a);\n}\n\
             }\n",
        )]);
        // alpha -> beta (outer calls inner) and beta -> alpha (inner calls
        // outer2) form the AB/BA cycle; the transitive set of `inner` also
        // contains alpha, so the re-entrant `alpha -> alpha` self-cycle is
        // reported alongside it — both are real for non-reentrant mutexes.
        assert_eq!(diags.len(), 2, "{diags:#?}");
        assert!(diags
            .iter()
            .any(|d| d.chain[0] == "lock-order cycle: alpha -> beta -> alpha"));
        assert!(diags
            .iter()
            .any(|d| d.chain[0] == "lock-order cycle: alpha -> alpha"));
    }

    #[test]
    fn allow_suppresses_the_cycle_finding() {
        let diags = run(&[(
            "crates/core/src/pair.rs",
            "impl Pair {\n\
             pub fn forward(&self) {\n    let a = self.alpha.lock();\n    // lint: allow(lock-order, protocol guarantees alpha before beta on every path)\n    let b = self.beta.lock();\n    drop(b); drop(a);\n}\n\
             pub fn backward(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n    drop(a); drop(b);\n}\n\
             }\n",
        )]);
        // The canonical cycle is reported once; whether the annotated edge
        // or the reverse edge carries the report decides suppression — the
        // deterministic edge order makes it the annotated forward edge.
        assert!(diags.is_empty(), "{diags:#?}");
    }
}
