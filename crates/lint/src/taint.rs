//! Determinism taint analysis (ISSUE 5).
//!
//! The determinism contract (DESIGN.md §9) is that every backend emits
//! byte-identical results. The old `determinism-hash` rule enforced it
//! with a blanket HashMap/HashSet ban in three files; this pass replaces
//! the ban with a flow rule over the whole analysis scope:
//!
//! * **Sources**: iterating a `HashMap`/`HashSet` (`.iter()`, `.keys()`,
//!   `.values()`, `.drain()`, `.into_iter()`, or `for _ in map`) — the
//!   iteration order is nondeterministic — and clock reads (`Instant`,
//!   `.elapsed()`).
//! * **Propagation**: data flow through `let` bindings, assignments,
//!   container pushes, and (interprocedurally) functions whose return
//!   value is tainted. Control flow does *not* propagate taint: a branch
//!   on a tainted condition that pushes untainted data is clean, which is
//!   what lets plurality/argmax folds with deterministic tie-breaks pass.
//! * **Cleansing**: sorting (`.sort*()`) a collection, collecting into a
//!   `BTreeMap`/`BTreeSet`, or an order-insensitive terminal fold
//!   (`.sum()`, `.count()`, `.len()`, `.min()`, `.max()`, `.any()`,
//!   `.all()`, `.contains()`, `.is_empty()`).
//! * **Sinks**: a `DiscoveryResult { .. }` or `Emission { .. }`
//!   constructor containing a tainted value, a push into an
//!   `Emission`-typed buffer, and *any* tainted value inside
//!   `crates/core/src/json.rs` (the whole file is emission).
//!
//! Local HashMaps used as keyed lookup tables (never iterated) or whose
//! iterated contents are sorted before escape produce no findings — the
//! precision the blanket ban lacked.

use crate::callgraph::{allowed_at, is_keyword, AllowUses, Workspace};
use crate::rules::{Diagnostic, DETERMINISM_TAINT};
use crate::tokens::{matching_close, Token, TokenKind};
use std::collections::{HashMap, HashSet};

/// Methods that iterate a hash container.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Order-insensitive terminal folds: their value does not depend on
/// iteration order.
const CLEANSE_METHODS: &[&str] = &[
    "sum", "count", "len", "min", "max", "any", "all", "contains", "is_empty", "product",
];

/// `x.sort*()` statements cleanse `x`.
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
];

/// Container-mutating methods that absorb taint from their arguments.
const ABSORB_METHODS: &[&str] = &["push", "insert", "extend", "append", "push_str"];

/// Why a value is tainted: a short provenance chain, outermost first.
#[derive(Debug, Clone)]
struct Taint {
    hops: Vec<String>,
}

/// Per-fn analysis state.
#[derive(Default)]
struct FnState {
    hash_vars: HashSet<String>,
    emission_vars: HashSet<String>,
    tainted: HashMap<String, Taint>,
    returns_tainted: Option<Taint>,
}

/// One statement-ish segment of a fn body: a token index range delimited
/// by `;`, `{`, or `}` tokens, plus its terminator.
struct Segment {
    start: usize,
    end: usize, // exclusive, the terminator's index
    closes_block: bool,
}

fn segments(toks: &[Token], b0: usize, b1: usize) -> Vec<Segment> {
    let mut out = Vec::new();
    let mut start = b0 + 1;
    let hi = (b1 + 1).min(toks.len());
    for (idx, t) in toks.iter().enumerate().take(hi).skip(b0 + 1) {
        if t.kind == TokenKind::Punct && (t.text == ";" || t.text == "{" || t.text == "}") {
            if idx > start {
                out.push(Segment {
                    start,
                    end: idx,
                    closes_block: t.text == "}",
                });
            }
            start = idx + 1;
        }
    }
    out
}

/// The determinism-taint pass.
pub fn determinism_taint(ws: &Workspace, uses: &mut AllowUses) -> Vec<Diagnostic> {
    let n = ws.fns.len();
    let mut states: Vec<FnState> = Vec::new();
    for _ in 0..n {
        states.push(FnState::default());
    }

    // Interprocedural fixpoint on `returns_tainted` summaries: local
    // chains are at most a few calls deep, and each round re-runs the
    // per-fn transfer with the latest summaries.
    for _round in 0..4 {
        let summaries: Vec<Option<Taint>> =
            states.iter().map(|s| s.returns_tainted.clone()).collect();
        let mut changed = false;
        for (id, state) in states.iter_mut().enumerate() {
            let fresh = analyze_fn(ws, id, &summaries);
            if fresh.returns_tainted.is_some() != state.returns_tainted.is_some()
                || fresh.tainted.len() != state.tainted.len()
            {
                changed = true;
            }
            *state = fresh;
        }
        if !changed {
            break;
        }
    }

    // Sink scan with the converged states.
    let mut out = Vec::new();
    for id in 0..n {
        let f = &ws.fns[id];
        if f.is_test {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let model = &ws.files[f.file];
        let toks = &model.tokens;
        let st = &states[id];
        let summaries: Vec<Option<Taint>> =
            states.iter().map(|s| s.returns_tainted.clone()).collect();
        let in_json = model.src.path == "crates/core/src/json.rs";

        // (a) Result/emission constructors containing tainted values.
        for idx in b0..=b1.min(toks.len().saturating_sub(1)) {
            let t = &toks[idx];
            if t.kind == TokenKind::Ident
                && (t.text == "DiscoveryResult"
                    || t.text == "Emission"
                    || t.text == "ApproximateResult")
                && toks.get(idx + 1).is_some_and(|t| t.is_punct("{"))
            {
                let close = matching_close(toks, idx + 1);
                if let Some((hit, taint)) =
                    first_tainted(ws, id, toks, idx + 2, close, st, &summaries)
                {
                    emit(
                        ws,
                        id,
                        toks[hit].line,
                        format!(
                            "nondeterministic value reaches the `{}` constructor \
                             (field data must be identical across backends) — sort \
                             before escape or annotate why order cannot differ",
                            t.text
                        ),
                        witness(
                            &taint,
                            &format!(
                                "sink: `{}` constructor at {}:{}",
                                t.text,
                                model.src.path,
                                toks[hit].line + 1
                            ),
                        ),
                        uses,
                        &mut out,
                    );
                }
            }
            // (b) Pushes into Emission-typed buffers.
            if t.kind == TokenKind::Ident && st.emission_vars.contains(&t.text) {
                // e.g. `emission.ods.push(tainted)`.
                let mut k = idx + 1;
                while toks.get(k).is_some_and(|t| t.is_punct("."))
                    && toks.get(k + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                {
                    let name = &toks[k + 1];
                    if ABSORB_METHODS.contains(&name.text.as_str())
                        && toks.get(k + 2).is_some_and(|t| t.is_punct("("))
                    {
                        let close = matching_close(toks, k + 2);
                        if let Some((hit, taint)) =
                            first_tainted(ws, id, toks, k + 3, close, st, &summaries)
                        {
                            emit(
                                ws,
                                id,
                                toks[hit].line,
                                "nondeterministic value pushed into an `Emission` \
                                 buffer — emission order must be canonical"
                                    .to_owned(),
                                witness(
                                    &taint,
                                    &format!(
                                        "sink: `Emission` buffer push at {}:{}",
                                        model.src.path,
                                        toks[hit].line + 1
                                    ),
                                ),
                                uses,
                                &mut out,
                            );
                        }
                        break;
                    }
                    k += 2;
                }
            }
        }

        // (c) json.rs: any tainted value at all.
        if in_json {
            for seg in segments(toks, b0, b1) {
                if model.is_test_line(toks[seg.start].line) {
                    continue;
                }
                if let Some((hit, taint)) =
                    first_tainted(ws, id, toks, seg.start, seg.end, st, &summaries)
                {
                    emit(
                        ws,
                        id,
                        toks[hit].line,
                        "nondeterministic value inside json.rs — everything in \
                         this module is byte-for-byte output"
                            .to_owned(),
                        witness(
                            &taint,
                            &format!(
                                "sink: JSON emission at {}:{}",
                                model.src.path,
                                toks[hit].line + 1
                            ),
                        ),
                        uses,
                        &mut out,
                    );
                }
            }
        }
    }
    out
}

/// The flow witness of a finding: the source-to-sink hop list.
fn witness(taint: &Taint, sink: &str) -> Vec<String> {
    let mut chain = taint.hops.clone();
    chain.push(sink.to_owned());
    chain
}

fn emit(
    ws: &Workspace,
    fn_id: usize,
    line0: usize,
    message: String,
    chain: Vec<String>,
    uses: &mut AllowUses,
    out: &mut Vec<Diagnostic>,
) {
    let f = &ws.fns[fn_id];
    if ws.files[f.file].is_test_line(line0) {
        return;
    }
    if allowed_at(ws, f.file, line0, Some(fn_id), DETERMINISM_TAINT, uses) {
        return;
    }
    // One finding per (fn, line): repeated hits on one line are noise.
    let path = &ws.files[f.file].src.path;
    if out
        .iter()
        .any(|d: &Diagnostic| d.path == *path && d.line == line0 + 1)
    {
        return;
    }
    out.push(Diagnostic {
        path: path.clone(),
        line: line0 + 1,
        rule: DETERMINISM_TAINT,
        message,
        chain,
    });
}

/// First tainted token in `[start, end)`: a tainted identifier, a direct
/// source pattern, or a call to a returns-tainted fn. Returns the token
/// index and the provenance.
fn first_tainted(
    ws: &Workspace,
    fn_id: usize,
    toks: &[Token],
    start: usize,
    end: usize,
    st: &FnState,
    summaries: &[Option<Taint>],
) -> Option<(usize, Taint)> {
    let f = &ws.fns[fn_id];
    let path = &ws.files[f.file].src.path;
    let calls: HashMap<usize, usize> = ws.call_sites[fn_id]
        .iter()
        .map(|&(tok, callee)| (tok, callee))
        .collect();
    let hi = end.min(toks.len());
    for idx in start..hi {
        let t = &toks[idx];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // Struct-literal field names (`elapsed: ...`) are not reads.
        if toks.get(idx + 1).is_some_and(|n| n.is_punct(":"))
            && !toks.get(idx + 1).is_some_and(|n| n.is_punct("::"))
        {
            continue;
        }
        if let Some(taint) = st.tainted.get(&t.text) {
            return Some((idx, taint.clone()));
        }
        if let Some(src) = source_at(toks, idx, st, path) {
            return Some((idx, src));
        }
        if let Some(&callee) = calls.get(&idx) {
            if let Some(taint) = &summaries[callee] {
                let mut hops = taint.hops.clone();
                hops.push(format!(
                    "returned by `{}` called at {}:{}",
                    ws.fns[callee].display(),
                    path,
                    t.line + 1
                ));
                return Some((idx, Taint { hops }));
            }
        }
    }
    None
}

/// Direct source at an identifier token: hash-container iteration or a
/// clock read.
fn source_at(toks: &[Token], idx: usize, st: &FnState, path: &str) -> Option<Taint> {
    let t = &toks[idx];
    if st.hash_vars.contains(&t.text)
        && toks.get(idx + 1).is_some_and(|n| n.is_punct("."))
        && toks
            .get(idx + 2)
            .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
        && toks.get(idx + 3).is_some_and(|n| n.is_punct("("))
    {
        return Some(Taint {
            hops: vec![format!(
                "source: iteration of hash container `{}` at {}:{}",
                t.text,
                path,
                t.line + 1
            )],
        });
    }
    if t.text == "Instant" {
        return Some(Taint {
            hops: vec![format!("source: clock read at {}:{}", path, t.line + 1)],
        });
    }
    if t.text == "elapsed"
        && idx > 0
        && toks[idx - 1].is_punct(".")
        && toks.get(idx + 1).is_some_and(|n| n.is_punct("("))
    {
        return Some(Taint {
            hops: vec![format!(
                "source: clock read (`.elapsed()`) at {}:{}",
                path,
                t.line + 1
            )],
        });
    }
    None
}

/// Whether `[start, end)` contains a cleansing terminal fold or a
/// BTree-collect.
fn cleansed(toks: &[Token], start: usize, end: usize) -> bool {
    let hi = end.min(toks.len());
    for idx in start..hi {
        let t = &toks[idx];
        if t.kind == TokenKind::Ident && (t.text == "BTreeMap" || t.text == "BTreeSet") {
            return true;
        }
        if t.is_punct(".")
            && toks
                .get(idx + 1)
                .is_some_and(|n| CLEANSE_METHODS.contains(&n.text.as_str()))
            && toks.get(idx + 2).is_some_and(|n| n.is_punct("("))
        {
            return true;
        }
    }
    false
}

/// Run the per-fn transfer function once with the given call summaries.
fn analyze_fn(ws: &Workspace, id: usize, summaries: &[Option<Taint>]) -> FnState {
    let f = &ws.fns[id];
    let mut st = FnState::default();
    let Some((b0, b1)) = f.body else { return st };
    if f.is_test {
        return st;
    }
    let model = &ws.files[f.file];
    let toks = &model.tokens;
    let path = &model.src.path;

    // Params typed HashMap/HashSet (or Emission) count as hash-typed
    // (e.g. `classes: &HashMap<..>` in expand.rs).
    let mut k = f.sig_start;
    while k < b0 {
        let t = &toks[k];
        if t.kind == TokenKind::Ident && toks.get(k + 1).is_some_and(|n| n.is_punct(":")) {
            let mut j = k + 2;
            let mut depth = 0i64;
            while j < b0 {
                let tj = &toks[j];
                if tj.kind == TokenKind::Punct {
                    match tj.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "," if depth <= 0 => break,
                        _ => {}
                    }
                }
                if tj.is_ident("HashMap") || tj.is_ident("HashSet") {
                    st.hash_vars.insert(t.text.clone());
                }
                if tj.is_ident("Emission") {
                    st.emission_vars.insert(t.text.clone());
                }
                j += 1;
            }
        }
        k += 1;
    }

    // Two passes over the segments so loop-carried flows settle.
    for _ in 0..2 {
        for seg in segments(toks, b0, b1) {
            transfer(ws, id, toks, &seg, &mut st, summaries, path);
        }
    }
    st
}

/// Apply one segment to the state.
fn transfer(
    ws: &Workspace,
    id: usize,
    toks: &[Token],
    seg: &Segment,
    st: &mut FnState,
    summaries: &[Option<Taint>],
    path: &str,
) {
    let (mut s, e) = (seg.start, seg.end);
    if s >= e || s >= toks.len() {
        return;
    }
    if ws.files[ws.fns[id].file].is_test_line(toks[s].line) {
        return;
    }
    // `if let` / `while let` bind like `let`.
    if (toks[s].is_ident("if") || toks[s].is_ident("while"))
        && toks.get(s + 1).is_some_and(|t| t.is_ident("let"))
    {
        s += 1;
    }
    let first = &toks[s];

    // `x.sort*()` cleanses x.
    if first.kind == TokenKind::Ident
        && toks.get(s + 1).is_some_and(|t| t.is_punct("."))
        && toks
            .get(s + 2)
            .is_some_and(|t| SORT_METHODS.contains(&t.text.as_str()))
    {
        st.tainted.remove(&first.text);
        return;
    }

    let rhs_taint = |st: &FnState, from: usize| -> Option<(usize, Taint)> {
        if cleansed(toks, from, e) {
            return None;
        }
        first_tainted(ws, id, toks, from, e, st, summaries)
    };

    // A pattern ident worth tracking: locals are snake_case, so
    // uppercase-initial idents (types, tuple-struct constructors like
    // `Some`) and keywords are skipped.
    let bindable = |t: &Token| {
        t.kind == TokenKind::Ident
            && !is_keyword(&t.text)
            && t.text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
    };

    // `let <pat> = <rhs>;`
    if first.is_ident("let") {
        let Some(eq) = (s..e).find(|&i| toks[i].is_punct("=")) else {
            return;
        };
        // Hash / emission declarations.
        let decl_name = toks
            .get(s + 1)
            .filter(|t| t.kind == TokenKind::Ident && t.text != "mut")
            .or_else(|| toks.get(s + 2).filter(|t| t.kind == TokenKind::Ident));
        if let Some(name) = decl_name {
            let mentions = |what: &str| (s..e).any(|i| toks[i].is_ident(what));
            if mentions("HashMap") || mentions("HashSet") {
                st.hash_vars.insert(name.text.clone());
            }
            if mentions("Emission") {
                st.emission_vars.insert(name.text.clone());
            }
        }
        if let Some((_, taint)) = rhs_taint(st, eq + 1) {
            // Bind only pattern idents, i.e. those before a top-level
            // type-ascription `:` (so `let ods: Vec<u32>` taints `ods`,
            // not `u32`).
            let mut pat_end = eq;
            let mut depth = 0i64;
            for (i, t) in toks.iter().enumerate().take(eq).skip(s + 1) {
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        ":" if depth == 0 => {
                            pat_end = i;
                        }
                        _ => {}
                    }
                    if pat_end != eq {
                        break;
                    }
                }
            }
            for t in toks.iter().take(pat_end).skip(s + 1) {
                if bindable(t) {
                    let mut hops = taint.hops.clone();
                    hops.push(format!(
                        "flows into `{}` at {}:{}",
                        t.text,
                        path,
                        t.line + 1
                    ));
                    st.tainted.insert(t.text.clone(), Taint { hops });
                }
            }
        }
        return;
    }

    // `for <pat> in <rhs>` — terminator is `{`.
    if first.is_ident("for") {
        let Some(inpos) = (s..e).find(|&i| toks[i].is_ident("in")) else {
            return;
        };
        let mut taint = rhs_taint(st, inpos + 1).map(|(_, t)| t);
        if taint.is_none() && !cleansed(toks, inpos + 1, e) {
            // Bare iteration of a hash container: `for x in &map`.
            if let Some(i) = (inpos + 1..e)
                .find(|&i| toks[i].kind == TokenKind::Ident && st.hash_vars.contains(&toks[i].text))
            {
                taint = Some(Taint {
                    hops: vec![format!(
                        "source: iteration of hash container `{}` at {}:{}",
                        toks[i].text,
                        path,
                        toks[i].line + 1
                    )],
                });
            }
        }
        if let Some(taint) = taint {
            for t in toks.iter().take(inpos).skip(s + 1) {
                if bindable(t) {
                    let mut hops = taint.hops.clone();
                    hops.push(format!(
                        "loop binding `{}` at {}:{}",
                        t.text,
                        path,
                        t.line + 1
                    ));
                    st.tainted.insert(t.text.clone(), Taint { hops });
                }
            }
        }
        return;
    }

    // `return <expr>` and bare tail expressions feed the summary.
    if first.is_ident("return") {
        if let Some((_, taint)) = rhs_taint(st, s + 1) {
            st.returns_tainted = Some(taint);
        }
        return;
    }

    // Assignment `x = rhs`, `*x = rhs`, `x += rhs`.
    let assign_target = if bindable(first) {
        Some((s, first.text.clone()))
    } else if first.is_punct("*") && toks.get(s + 1).is_some_and(bindable) {
        Some((s + 1, toks[s + 1].text.clone()))
    } else {
        None
    };
    if let Some((tpos, target)) = assign_target {
        // Find a top-level assignment operator after the target path.
        let mut i = tpos + 1;
        let mut depth = 0i64;
        while i < e {
            let t = &toks[i];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "=" | "+=" | "-=" | "*=" | "|=" | "&=" | "^=" if depth == 0 => {
                        if let Some((_, taint)) = rhs_taint(st, i + 1) {
                            let mut hops = taint.hops.clone();
                            hops.push(format!(
                                "flows into `{}` at {}:{}",
                                target,
                                path,
                                toks[tpos].line + 1
                            ));
                            st.tainted.insert(target, Taint { hops });
                        }
                        return;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        // Absorbing mutation `x.push(tainted)`.
        if toks.get(tpos + 1).is_some_and(|t| t.is_punct(".")) {
            let mut k = tpos + 1;
            while k + 1 < e {
                if toks[k].is_punct(".")
                    && ABSORB_METHODS.contains(&toks[k + 1].text.as_str())
                    && toks.get(k + 2).is_some_and(|t| t.is_punct("("))
                {
                    if let Some((_, taint)) = rhs_taint(st, k + 3) {
                        let mut hops = taint.hops.clone();
                        hops.push(format!(
                            "absorbed by `{}` at {}:{}",
                            target,
                            path,
                            toks[tpos].line + 1
                        ));
                        st.tainted.insert(target, Taint { hops });
                    }
                    return;
                }
                k += 1;
            }
        }
    }

    // Bare expression before a `}`: a block tail. Conservatively treat a
    // tainted tail as a tainted fn return value.
    if seg.closes_block {
        let is_expr = !first.is_ident("let")
            && !first.is_ident("for")
            && !first.is_ident("while")
            && !first.is_ident("if")
            && !first.is_ident("match");
        if is_expr {
            if let Some((_, taint)) = rhs_taint(st, s) {
                st.returns_tainted = Some(taint);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, c)| (p.to_string(), c.to_string()))
                .collect(),
        );
        let mut uses = AllowUses::default();
        determinism_taint(&ws, &mut uses)
    }

    #[test]
    fn hash_iteration_into_result_is_a_finding() {
        let diags = run(&[(
            "crates/core/src/search.rs",
            "pub fn assemble(m: &HashMap<u32, u32>) -> DiscoveryResult {\n\
             let ods: Vec<u32> = m.values().copied().collect();\n\
             DiscoveryResult { ods }\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].rule, DETERMINISM_TAINT);
        assert!(diags[0].chain[0].contains("iteration of hash container `m`"));
    }

    #[test]
    fn sorted_before_escape_is_clean() {
        let diags = run(&[(
            "crates/core/src/search.rs",
            "pub fn assemble(m: &HashMap<u32, u32>) -> DiscoveryResult {\n\
             let mut ods: Vec<u32> = m.values().copied().collect();\n\
             ods.sort_unstable();\n\
             DiscoveryResult { ods }\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn keyed_lookup_tables_are_clean() {
        let diags = run(&[(
            "crates/core/src/search.rs",
            "pub fn assemble(keys: &[u32], m: &HashMap<u32, u32>) -> DiscoveryResult {\n\
             let mut ods: Vec<u32> = Vec::new();\n\
             for k in keys { if let Some(v) = m.get(k) { ods.push(*v); } }\n\
             DiscoveryResult { ods }\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn order_insensitive_folds_are_clean() {
        let diags = run(&[(
            "crates/core/src/search.rs",
            "pub fn assemble(m: &HashMap<u32, u32>) -> DiscoveryResult {\n\
             let checks: u64 = m.values().map(|v| *v as u64).sum();\n\
             DiscoveryResult { checks }\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn clock_reads_into_result_are_findings() {
        let diags = run(&[(
            "crates/core/src/search.rs",
            "pub fn assemble(start: Timer) -> DiscoveryResult {\n\
             DiscoveryResult { elapsed: start.elapsed() }\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].chain[0].contains("clock read"));
    }

    #[test]
    fn taint_flows_interprocedurally_through_returns() {
        let diags = run(&[
            (
                "crates/core/src/search.rs",
                "pub fn assemble(m: &HashMap<u32, u32>) -> DiscoveryResult {\n\
                 let ods = crate::util::collect_values(m);\n\
                 DiscoveryResult { ods }\n}\n",
            ),
            (
                "crates/core/src/util.rs",
                "pub fn collect_values(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                 let v: Vec<u32> = m.values().copied().collect();\n    v\n}\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(
            diags[0].chain.iter().any(|h| h.contains("collect_values")),
            "{:#?}",
            diags[0].chain
        );
    }

    #[test]
    fn json_rs_is_a_sink_everywhere() {
        let diags = run(&[(
            "crates/core/src/json.rs",
            "pub fn dump(m: &HashMap<u32, u32>) -> String {\n\
             let mut s = String::new();\n\
             for (k, v) in m.iter() { s.push_str(&k.to_string()); s.push_str(&v.to_string()); }\n\
             s\n}\n",
        )]);
        assert!(!diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn allow_suppresses_with_reason() {
        let diags = run(&[(
            "crates/core/src/search.rs",
            "pub fn assemble(start: Timer) -> DiscoveryResult {\n\
             // lint: allow(determinism-taint, wall-clock observability field; excluded from byte-identity comparisons)\n\
             DiscoveryResult { elapsed: start.elapsed() }\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:#?}");
    }
}
