//! Loop-aware interprocedural dataflow passes (ISSUE 9): forward
//! reachability over the call graph combined with the per-fn loop regions
//! of [`crate::loops`], powering two rules.
//!
//! **`unprobed-loop`** — cancellation responsiveness. The runtime's
//! bounded-latency contract (DESIGN.md §8) holds only if every loop that
//! can run on a discovery worker re-checks the budget: directly via
//! `Budget::probe`/`probe_now`, or by calling a function whose
//! interprocedural *probe summary* is positive (it probes, or something it
//! calls does). The pass BFS-reaches fns from the `discover*` entry
//! points, then audits every loop of every reached fn in the driver files
//! (search/scheduler/check/approximate). Only the outermost unsatisfied
//! loop of a nest is reported — fixing or allowing it covers the nest.
//!
//! **`hot-loop-alloc`** — allocation-free kernels. Loops in fns reachable
//! from the scan/check/sort roots must not allocate per iteration:
//! constructor calls (`Vec::new`, `with_capacity`, `from`), allocating
//! macros (`vec!`, `format!`), and allocating methods (`.clone()`,
//! `.to_string()`, `.to_owned()`, `.to_vec()`, `.collect()`) inside a
//! loop body are findings. Bare `.push(..)` is deliberately exempt: the
//! documented idiom is pushing into a reused or pre-sized buffer, and
//! growth-by-fresh-allocation is caught at the constructor site.
//!
//! Both summaries are conservative in opposite directions, matching the
//! rule's failure mode: probe summaries over-approximate (any callee that
//! *might* probe satisfies the loop — a false "satisfied" only delays
//! cancellation, never corrupts results), while allocation detection is
//! purely syntactic at the site (no summary: an allocation inside a
//! callee is that callee's finding when it is itself reachable).

use crate::callgraph::{allowed_at, is_keyword, skip_angles, AllowUses, Workspace};
use crate::loops::LoopRegion;
use crate::rules::{Diagnostic, HOT_LOOP_ALLOC, UNPROBED_LOOP};
use crate::tokens::{Token, TokenKind};
use std::collections::VecDeque;

/// Files whose loops the cancellation pass audits: the level-synchronous
/// search drivers, the work-stealing scheduler, the check kernel
/// dispatcher, and the approximate pipeline.
pub const CANCELLATION_SCOPE_FILES: &[&str] = &[
    "crates/core/src/search.rs",
    "crates/core/src/scheduler.rs",
    "crates/core/src/check.rs",
    "crates/core/src/approximate.rs",
];

/// Files whose non-test fns root the hot-loop allocation audit: the
/// single-check kernel, the sorted-partition walk, and the relation
/// scan/sort kernels.
pub const HOT_ALLOC_ROOT_FILES: &[&str] = &[
    "crates/core/src/check.rs",
    "crates/core/src/sorted_partitions.rs",
    "crates/relation/src/scan.rs",
    "crates/relation/src/sort.rs",
];

/// BFS over call edges from `roots`, skipping test fns. Returns
/// reachability plus BFS parents for shortest-chain witnesses.
pub(crate) fn reach_with_parents(
    ws: &Workspace,
    roots: impl IntoIterator<Item = usize>,
) -> (Vec<bool>, Vec<Option<usize>>) {
    let n = ws.fns.len();
    let mut reached = vec![false; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut queue = VecDeque::new();
    for id in roots {
        if !reached[id] && !ws.fns[id].is_test {
            reached[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &ws.calls[u] {
            if !reached[v] && !ws.fns[v].is_test {
                reached[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    (reached, parent)
}

/// Witness chain `root (file:line) -> … -> fn (file:line)` from the BFS
/// parents, outermost first.
pub(crate) fn chain_to(ws: &Workspace, parent: &[Option<usize>], id: usize) -> Vec<String> {
    let mut ids = vec![id];
    let mut cur = id;
    while let Some(p) = parent[cur] {
        ids.push(p);
        cur = p;
    }
    ids.reverse();
    ids.iter()
        .map(|&g| {
            let gf = &ws.fns[g];
            format!(
                "{} ({}:{})",
                gf.display(),
                ws.files[gf.file].src.path,
                gf.def_line + 1
            )
        })
        .collect()
}

/// Whether token `idx` is a `.probe()` / `::probe_now()`-style budget
/// probe call.
fn is_probe_call(toks: &[Token], idx: usize) -> bool {
    let t = &toks[idx];
    if t.kind != TokenKind::Ident || (t.text != "probe" && t.text != "probe_now") {
        return false;
    }
    let prefixed = idx
        .checked_sub(1)
        .map(|p| toks[p].is_punct(".") || toks[p].is_punct("::"))
        .unwrap_or(false);
    prefixed && toks.get(idx + 1).is_some_and(|n| n.is_punct("("))
}

/// Per-fn probe summaries: `true` when the fn probes the budget directly
/// or through any transitive callee. Seeds are the direct `.probe()` /
/// `.probe_now()` call pattern plus the `Budget` probe methods themselves;
/// the fixpoint propagates backwards over call edges.
pub fn probe_summaries(ws: &Workspace) -> Vec<bool> {
    let n = ws.fns.len();
    let mut probes = vec![false; n];
    for (id, f) in ws.fns.iter().enumerate() {
        if (f.name == "probe" || f.name == "probe_now") && f.owner.as_deref() == Some("Budget") {
            probes[id] = true;
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let toks = &ws.files[f.file].tokens;
        let hi = b1.min(toks.len().saturating_sub(1));
        probes[id] = (b0..=hi).any(|i| is_probe_call(toks, i));
    }
    // Reverse propagation to a fixpoint (the graph is small).
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            if probes[id] {
                continue;
            }
            if ws.calls[id].iter().any(|&c| probes[c]) {
                probes[id] = true;
                changed = true;
            }
        }
    }
    probes
}

/// The cancellation-responsiveness pass. A loop is *satisfied* when its
/// body probes directly or contains a call site whose callee's summary
/// probes; every other loop of a reached fn in the driver files needs a
/// `lint: allow(unprobed-loop, <bound>)` on its header or fn.
pub fn unprobed_loops(ws: &Workspace, uses: &mut AllowUses) -> Vec<Diagnostic> {
    let probes = probe_summaries(ws);
    let roots: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name.starts_with("discover") && !f.is_test)
        .map(|(id, _)| id)
        .collect();
    let (reached, parent) = reach_with_parents(ws, roots);

    let mut out = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !reached[id] || f.is_test {
            continue;
        }
        let model = &ws.files[f.file];
        if !CANCELLATION_SCOPE_FILES.contains(&model.src.path.as_str()) {
            continue;
        }
        let toks = &model.tokens;
        // Outermost-unsatisfied reporting: once a loop is reported (or
        // allowed), its whole nest is covered.
        let mut skip_until = 0usize;
        for l in &ws.loops[id] {
            if l.head_tok < skip_until || model.is_test_line(l.head_line) {
                continue;
            }
            let hi = l.body.1.min(toks.len().saturating_sub(1));
            let direct = (l.body.0..=hi).any(|i| is_probe_call(toks, i));
            let via_callee = ws.call_sites[id]
                .iter()
                .any(|&(tok, callee)| l.contains(tok) && probes[callee]);
            if direct || via_callee {
                continue;
            }
            skip_until = l.body.1;
            if allowed_at(ws, f.file, l.head_line, Some(id), UNPROBED_LOOP, uses) {
                continue;
            }
            let mut chain = chain_to(ws, &parent, id);
            chain.push(format!(
                "`{}` loop spanning {}:{}-{}",
                l.kind.keyword(),
                model.src.path,
                l.head_line + 1,
                l.end_line + 1
            ));
            out.push(Diagnostic {
                path: model.src.path.clone(),
                line: l.head_line + 1,
                rule: UNPROBED_LOOP,
                message: format!(
                    "`{}` loop in `{}` is reachable from a discover entry point but \
                     never probes the cancellation budget — call `budget.probe()` in \
                     the body (or a callee that does), or annotate the iteration \
                     bound with `lint: allow(unprobed-loop, <bound>)`",
                    l.kind.keyword(),
                    f.display()
                ),
                chain,
            });
        }
    }
    out
}

/// An allocation site detected inside a loop body.
struct AllocSite {
    tok: usize,
    line: usize,
    what: String,
}

/// Detect an allocation at token `idx`, returning a display label.
fn alloc_at(toks: &[Token], idx: usize) -> Option<String> {
    let t = &toks[idx];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let next = toks.get(idx + 1);
    match t.text.as_str() {
        // Allocating macros.
        "vec" if next.is_some_and(|n| n.is_punct("!")) => return Some("`vec![..]`".to_owned()),
        "format" if next.is_some_and(|n| n.is_punct("!")) => return Some("`format!`".to_owned()),
        // Constructor calls, turbofish included: `Vec::<u8>::new()`.
        "Vec" | "String" | "Box" | "VecDeque" if next.is_some_and(|n| n.is_punct("::")) => {
            let mut j = idx + 2;
            if toks.get(j).is_some_and(|n| n.is_punct("<")) {
                j = skip_angles(toks, j);
                if toks.get(j).is_some_and(|n| n.is_punct("::")) {
                    j += 1;
                }
            }
            let name = toks.get(j)?;
            if name.kind == TokenKind::Ident
                && matches!(name.text.as_str(), "new" | "with_capacity" | "from")
            {
                return Some(format!("`{}::{}`", t.text, name.text));
            }
            return None;
        }
        _ => {}
    }
    // Allocating method calls: `.clone()`, `.collect::<..>()`, …
    let after_dot = idx
        .checked_sub(1)
        .is_some_and(|p| toks[p].is_punct(".") && !is_keyword(&t.text));
    if after_dot
        && matches!(
            t.text.as_str(),
            "clone" | "to_string" | "to_owned" | "to_vec" | "collect"
        )
        && next.is_some_and(|n| n.is_punct("(") || n.is_punct("::"))
    {
        return Some(format!("`.{}()`", t.text));
    }
    None
}

/// The hot-loop allocation audit: BFS from the scan/check/sort root
/// files, then flag allocation sites inside any loop of a reached fn.
pub fn hot_loop_alloc(ws: &Workspace, uses: &mut AllowUses) -> Vec<Diagnostic> {
    let roots: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.is_test && HOT_ALLOC_ROOT_FILES.contains(&ws.files[f.file].src.path.as_str())
        })
        .map(|(id, _)| id)
        .collect();
    let (reached, parent) = reach_with_parents(ws, roots);

    let mut out = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !reached[id] || f.is_test {
            continue;
        }
        let model = &ws.files[f.file];
        let toks = &model.tokens;
        let loops: &[LoopRegion] = &ws.loops[id];
        if loops.is_empty() {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let hi = b1.min(toks.len().saturating_sub(1));
        // Collect each site once, then test loop membership — nested
        // loops share sites, so membership in *any* region suffices.
        let mut sites: Vec<AllocSite> = Vec::new();
        for i in b0..=hi {
            if let Some(what) = alloc_at(toks, i) {
                sites.push(AllocSite {
                    tok: i,
                    line: toks[i].line,
                    what,
                });
            }
        }
        let mut last_line = usize::MAX;
        for s in sites {
            if model.is_test_line(s.line) || s.line == last_line {
                continue;
            }
            let Some(l) = loops.iter().find(|l| l.contains(s.tok)) else {
                continue;
            };
            last_line = s.line;
            if allowed_at(ws, f.file, s.line, Some(id), HOT_LOOP_ALLOC, uses) {
                continue;
            }
            let mut chain = chain_to(ws, &parent, id);
            chain.push(format!(
                "{} inside a `{}` loop at {}:{}",
                s.what,
                l.kind.keyword(),
                model.src.path,
                s.line + 1
            ));
            out.push(Diagnostic {
                path: model.src.path.clone(),
                line: s.line + 1,
                rule: HOT_LOOP_ALLOC,
                message: format!(
                    "{} allocates inside a loop of `{}`, reachable from the \
                     scan/check/sort hot path — hoist the allocation, reuse a \
                     scratch buffer, or annotate why this site is not \
                     per-row/per-candidate",
                    s.what,
                    f.display()
                ),
                chain,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, c)| (p.to_string(), c.to_string()))
                .collect(),
        )
    }

    #[test]
    fn probe_summary_propagates_through_callees() {
        let w = ws(&[(
            "crates/core/src/search.rs",
            "pub fn leaf(b: &Budget) { b.probe(); }\n\
             pub fn mid(b: &Budget) { leaf(b); }\n\
             pub fn dry() {}\n",
        )]);
        let probes = probe_summaries(&w);
        let by_name = |n: &str| w.fns.iter().position(|f| f.name == n).unwrap();
        assert!(probes[by_name("leaf")]);
        assert!(probes[by_name("mid")]);
        assert!(!probes[by_name("dry")]);
    }

    #[test]
    fn unprobed_loop_reachable_from_discover_is_flagged() {
        let w = ws(&[(
            "crates/core/src/search.rs",
            "pub fn discover(v: &[u32]) { drive(v); }\n\
             pub fn drive(v: &[u32]) {\n\
                 for x in v {\n        let _ = x;\n    }\n\
             }\n",
        )]);
        let mut uses = AllowUses::default();
        let d = unprobed_loops(&w, &mut uses);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, UNPROBED_LOOP);
        assert_eq!(d[0].line, 3);
        assert_eq!(
            d[0].chain,
            vec![
                "core::search::discover (crates/core/src/search.rs:1)",
                "core::search::drive (crates/core/src/search.rs:2)",
                "`for` loop spanning crates/core/src/search.rs:3-5",
            ]
        );
    }

    #[test]
    fn probing_loop_is_satisfied_directly_and_via_callee() {
        let w = ws(&[(
            "crates/core/src/search.rs",
            "pub fn discover(v: &[u32], b: &Budget) {\n\
                 for x in v {\n        b.probe();\n        let _ = x;\n    }\n\
                 for x in v {\n        helper(b);\n        let _ = x;\n    }\n\
             }\n\
             pub fn helper(b: &Budget) { b.probe_now(); }\n",
        )]);
        let mut uses = AllowUses::default();
        let d = unprobed_loops(&w, &mut uses);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn only_the_outermost_unsatisfied_loop_is_reported() {
        let w = ws(&[(
            "crates/core/src/check.rs",
            "pub fn discover(v: &[u32]) {\n\
                 for x in v {\n\
                     for y in v {\n            let _ = (x, y);\n        }\n\
                 }\n\
             }\n",
        )]);
        let mut uses = AllowUses::default();
        let d = unprobed_loops(&w, &mut uses);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn allow_on_the_loop_header_covers_the_nest() {
        let w = ws(&[(
            "crates/core/src/check.rs",
            "pub fn discover(v: &[u32]) {\n\
                 // lint: allow(unprobed-loop, bounded by column count)\n\
                 for x in v {\n\
                     for y in v {\n            let _ = (x, y);\n        }\n\
                 }\n\
             }\n",
        )]);
        let mut uses = AllowUses::default();
        let d = unprobed_loops(&w, &mut uses);
        assert!(d.is_empty(), "{d:#?}");
        assert!(uses.is_used(0, 2, UNPROBED_LOOP));
    }

    #[test]
    fn loops_in_unreached_or_out_of_scope_fns_are_ignored() {
        let w = ws(&[
            (
                "crates/core/src/search.rs",
                "pub fn not_an_entry(v: &[u32]) { for x in v { let _ = x; } }\n",
            ),
            (
                "crates/core/src/expand.rs",
                "pub fn discover_helper(v: &[u32]) { for x in v { let _ = x; } }\n",
            ),
        ]);
        let mut uses = AllowUses::default();
        let d = unprobed_loops(&w, &mut uses);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn hot_loop_allocation_is_flagged_with_a_chain() {
        let w = ws(&[
            (
                "crates/core/src/check.rs",
                "pub fn kernel(v: &[u32]) { crate::expand::walk(v); }\n",
            ),
            (
                "crates/core/src/expand.rs",
                "pub fn walk(v: &[u32]) {\n\
                     for x in v {\n        let s = x.to_string();\n        let _ = s;\n    }\n\
                 }\n",
            ),
        ]);
        let mut uses = AllowUses::default();
        let d = hot_loop_alloc(&w, &mut uses);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, HOT_LOOP_ALLOC);
        assert_eq!(d[0].path, "crates/core/src/expand.rs");
        assert_eq!(d[0].line, 3);
        assert!(d[0].chain[0].contains("core::check::kernel"));
    }

    #[test]
    fn alloc_outside_a_loop_and_push_inside_are_fine() {
        let w = ws(&[(
            "crates/core/src/sorted_partitions.rs",
            "pub fn walk(v: &[u32]) -> Vec<u32> {\n\
                 let mut out = Vec::with_capacity(v.len());\n\
                 for x in v {\n        out.push(*x);\n    }\n\
                 out\n\
             }\n",
        )]);
        let mut uses = AllowUses::default();
        let d = hot_loop_alloc(&w, &mut uses);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn allowed_scratch_site_is_suppressed_and_consumed() {
        let w = ws(&[(
            "crates/relation/src/scan.rs",
            "pub fn scan(v: &[u32]) {\n\
                 for x in v {\n\
                     let tmp = v.to_vec(); // lint: allow(hot-loop-alloc, setup phase, once per column)\n\
                     let _ = (tmp, x);\n    }\n\
             }\n",
            )]);
        let mut uses = AllowUses::default();
        let d = hot_loop_alloc(&w, &mut uses);
        assert!(d.is_empty(), "{d:#?}");
        assert!(uses.is_used(0, 2, HOT_LOOP_ALLOC));
    }

    #[test]
    fn collect_turbofish_is_detected() {
        let w = ws(&[(
            "crates/relation/src/sort.rs",
            "pub fn sort(v: &[u32]) {\n\
                 loop {\n\
                     let c = v.iter().collect::<Vec<_>>();\n\
                     let _ = c;\n        break;\n    }\n\
             }\n",
        )]);
        let mut uses = AllowUses::default();
        let d = hot_loop_alloc(&w, &mut uses);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert!(d[0].message.contains("`.collect()`"));
    }
}
