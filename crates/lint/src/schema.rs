//! The `schema-parity` pass (ISSUE 9): cross-check the hand-rolled JSON
//! writers and parsers against each other and against the documented
//! schema tables kept here.
//!
//! The workspace persists two hand-rolled formats: the versioned search
//! dump (`ocdd-snapshot/1`, `snapshot.rs` — writer *and* parser, since
//! resume trusts it) and the result report (`json.rs` — writer only).
//! Masking preserves byte positions, so a `Str` token's span slices the
//! *raw* source to the literal exactly as written; writer keys are the
//! `\"key\":` emissions inside those literals, reader keys are the
//! string argument of bare `req(obj, "key")` / `get(obj, "key")` lookups.
//! Key sets are compared flat per file — the formats never reuse a key
//! name with two meanings, and a flat diff keeps the pass robust to how
//! the emitters nest `format!` calls.
//!
//! Three drift directions, three finding shapes:
//! * **written but never parsed** — the PR 8 `"approx"` class: resume
//!   silently drops state. Per-key diagnostic at the write site.
//! * **parsed but never written** — resume rejects every fresh dump.
//!   Per-key diagnostic at the read site.
//! * **documented table drift** — an undocumented written key gets a
//!   per-key diagnostic; documented-but-absent keys aggregate into one
//!   diagnostic (anchored at the first write site) so a stale table
//!   reads as one finding, not dozens.

use crate::callgraph::{allowed_at, AllowUses, FileModel, Workspace};
use crate::rules::{Diagnostic, SCHEMA_PARITY};
use crate::tokens::TokenKind;
use std::collections::BTreeMap;

/// Documented key set of the `ocdd-snapshot/1` dump format (DESIGN.md
/// §13), flattened over every object scope: top level, `config`,
/// `branches[]`/`failures[]`/pair objects, `levels[]`, `kernels`,
/// `cache`, `approx`, and `termination`.
pub const SNAPSHOT_SCHEMA_V1: &[&str] = &[
    "allowance",
    "approx",
    "branches",
    "budget_bytes",
    "cache",
    "candidates",
    "chained_refine",
    "check_budget_hit",
    "checks",
    "column_reduction",
    "comparator",
    "confidence_micros",
    "config",
    "counting",
    "dedup_candidates",
    "elapsed_ms",
    "entries",
    "epsilon_micros",
    "evictions",
    "failed",
    "failures",
    "format",
    "frontier",
    "generated",
    "hits",
    "kernels",
    "kind",
    "level",
    "level_capped",
    "levels",
    "manifest",
    "max_checks",
    "max_level",
    "message",
    "misses",
    "ocd_errors",
    "ocds",
    "ods",
    "packed_radix",
    "pruned",
    "resident_bytes",
    "sample_manifest",
    "sample_rows",
    "scan_block",
    "scan_scalar",
    "scan_simd",
    "seed",
    "shared",
    "spent",
    "stopped",
    "strategy",
    "strategy_column",
    "termination",
    "total_rows",
    "valid_ocds",
    "valid_ods",
    "version",
    "x",
    "y",
];

/// Documented key set of the result report emitted by `json.rs`
/// (DESIGN.md §9), flattened: top level, `kernels.sorts`/`kernels.scans`,
/// `scheduler` and its per-worker objects, `checkpoint`, `approx`, and
/// the OCD/OD entries.
pub const REPORT_SCHEMA_V1: &[&str] = &[
    "accepted_by_sample",
    "approx",
    "batches",
    "block",
    "chained_refine",
    "checkpoint",
    "checks",
    "columns",
    "comparator",
    "complete",
    "constants",
    "counting",
    "elapsed_ms",
    "equivalence_classes",
    "error",
    "escalated",
    "estimated",
    "exhaustive",
    "failed_branches",
    "failure_message",
    "files_deleted",
    "full_checks_saved",
    "full_row_scans",
    "kernels",
    "last_level",
    "levels",
    "lhs",
    "ocds",
    "ods",
    "packed_radix",
    "rejected_by_sample",
    "removals",
    "rhs",
    "rows",
    "sample_manifest",
    "sample_row_scans",
    "sample_rows",
    "scalar",
    "scans",
    "scheduler",
    "seed",
    "simd",
    "snapshots_written",
    "sorts",
    "steals",
    "total_rows",
    "termination",
    "workers",
    "write_errors",
];

/// One file-scope of the parity check.
struct Scope {
    /// Workspace-relative file the scope audits.
    file: &'static str,
    /// Display name of the documented schema.
    schema_name: &'static str,
    /// Flattened documented key set.
    documented: &'static [&'static str],
    /// Whether the file also hand-rolls a parser (`req`/`get` lookups).
    has_reader: bool,
}

const SCOPES: &[Scope] = &[
    Scope {
        file: "crates/core/src/snapshot.rs",
        schema_name: "ocdd-snapshot/1",
        documented: SNAPSHOT_SCHEMA_V1,
        has_reader: true,
    },
    Scope {
        file: "crates/core/src/json.rs",
        schema_name: "result report (json.rs)",
        documented: REPORT_SCHEMA_V1,
        has_reader: false,
    },
];

/// First occurrence of a key: 0-based line and token index (for
/// enclosing-fn lookup).
#[derive(Debug, Clone, Copy)]
struct KeySite {
    line: usize,
    tok: usize,
}

/// Whether `b` is an identifier byte.
fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Extract writer keys: every `\"key\":` occurrence inside the raw text
/// of a non-test string literal. The escaped-quote form is how both
/// emitters spell object keys inside `format!`/`push_str` literals.
fn writer_keys(model: &FileModel, raw: &str) -> BTreeMap<String, KeySite> {
    let mut out: BTreeMap<String, KeySite> = BTreeMap::new();
    for (ti, t) in model.tokens.iter().enumerate() {
        if t.kind != TokenKind::Str || model.is_test_line(t.line) {
            continue;
        }
        let Some(lit) = raw.get(t.start..t.end) else {
            continue;
        };
        let bytes = lit.as_bytes();
        let mut i = 0;
        while i + 3 < bytes.len() {
            if bytes[i] != b'\\' || bytes[i + 1] != b'"' {
                i += 1;
                continue;
            }
            let start = i + 2;
            let mut j = start;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            let closes = j > start
                && bytes.get(j) == Some(&b'\\')
                && bytes.get(j + 1) == Some(&b'"')
                && bytes.get(j + 2) == Some(&b':');
            if closes {
                let key = &lit[start..j];
                let line = t.line + lit[..i].bytes().filter(|&b| b == b'\n').count();
                out.entry(key.to_owned())
                    .or_insert(KeySite { line, tok: ti });
                i = j + 3;
            } else {
                i += 2;
            }
        }
    }
    out
}

/// Extract reader keys: the string argument of bare `req(…, "key")` /
/// `get(…, "key")` calls (method calls `.get(` are someone else's `get`).
fn reader_keys(model: &FileModel, raw: &str) -> BTreeMap<String, KeySite> {
    let mut out: BTreeMap<String, KeySite> = BTreeMap::new();
    let toks = &model.tokens;
    for (ti, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || (t.text != "req" && t.text != "get")
            || model.is_test_line(t.line)
        {
            continue;
        }
        let bare = ti
            .checked_sub(1)
            .map(|p| !toks[p].is_punct(".") && !toks[p].is_punct("::"))
            .unwrap_or(true);
        if !bare || !toks.get(ti + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let close = crate::tokens::matching_close(toks, ti + 1);
        let Some(arg) = (ti + 2..close).find_map(|j| {
            let a = &toks[j];
            (a.kind == TokenKind::Str).then_some(a)
        }) else {
            continue;
        };
        let Some(lit) = raw.get(arg.start..arg.end) else {
            continue;
        };
        let key = lit.trim_matches('"');
        if !key.is_empty() && key.bytes().all(is_ident_byte) {
            out.entry(key.to_owned()).or_insert(KeySite {
                line: arg.line,
                tok: ti,
            });
        }
    }
    out
}

/// The schema-parity pass over every scope whose file is present in the
/// workspace.
pub fn schema_parity(ws: &Workspace, uses: &mut AllowUses) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for scope in SCOPES {
        let Some(fi) = ws.files.iter().position(|m| m.src.path == scope.file) else {
            continue;
        };
        let model = &ws.files[fi];
        let raw = model.src.raw_lines.join("\n");
        let written = writer_keys(model, &raw);
        let read = reader_keys(model, &raw);
        if written.is_empty() {
            continue;
        }

        let mut push = |site: KeySite, message: String, chain: Vec<String>| {
            let fn_id = ws.enclosing_fn(fi, site.tok);
            if !allowed_at(ws, fi, site.line, fn_id, SCHEMA_PARITY, uses) {
                out.push(Diagnostic {
                    path: scope.file.to_owned(),
                    line: site.line + 1,
                    rule: SCHEMA_PARITY,
                    message,
                    chain,
                });
            }
        };

        for (key, &site) in &written {
            if scope.has_reader && !read.contains_key(key) {
                push(
                    site,
                    format!(
                        "key `\"{key}\"` is written by the serializer but never \
                         parsed — a resumed run silently drops it; add the \
                         `req`/`get` lookup (and keep the {} table in sync)",
                        scope.schema_name
                    ),
                    vec![
                        format!("written at {}:{}", scope.file, site.line + 1),
                        "no matching `req`/`get` lookup in the parser".to_owned(),
                    ],
                );
            }
            if !scope.documented.contains(&key.as_str()) {
                push(
                    site,
                    format!(
                        "key `\"{key}\"` is written but not documented in the \
                         {} schema table (crates/lint/src/schema.rs) — document \
                         the new field or remove the emission",
                        scope.schema_name
                    ),
                    vec![format!("written at {}:{}", scope.file, site.line + 1)],
                );
            }
        }
        if scope.has_reader {
            for (key, &site) in &read {
                if !written.contains_key(key) {
                    push(
                        site,
                        format!(
                            "key `\"{key}\"` is required by the parser but never \
                             written — every fresh dump would be rejected on \
                             resume; emit the field or drop the lookup"
                        ),
                        vec![
                            format!("parsed at {}:{}", scope.file, site.line + 1),
                            "no matching `\\\"key\\\":` emission in the serializer".to_owned(),
                        ],
                    );
                }
            }
        }
        let missing: Vec<&str> = scope
            .documented
            .iter()
            .filter(|k| !written.contains_key(**k))
            .copied()
            .collect();
        if !missing.is_empty() {
            let anchor = written
                .values()
                .min_by_key(|s| (s.line, s.tok))
                .copied()
                .expect("written is non-empty");
            push(
                anchor,
                format!(
                    "documented {} key{} {} never written — the schema table in \
                     crates/lint/src/schema.rs is ahead of the serializer; \
                     emit the field{} or prune the table",
                    scope.schema_name,
                    if missing.len() == 1 { "" } else { "s" },
                    missing
                        .iter()
                        .map(|k| format!("`\"{k}\"`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    if missing.len() == 1 { "" } else { "s" },
                ),
                vec![format!(
                    "first write site at {}:{}",
                    scope.file,
                    anchor.line + 1
                )],
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, content: &str) -> Vec<Diagnostic> {
        let ws = Workspace::build(vec![(path.to_owned(), content.to_owned())]);
        let mut uses = AllowUses::default();
        schema_parity(&ws, &mut uses)
    }

    #[test]
    fn matched_writer_and_reader_pairs_are_clean_modulo_doc_table() {
        // `seed` and `level` are documented snapshot keys; writing and
        // reading exactly those yields only the aggregated
        // documented-but-absent finding for the rest of the table.
        let d = diags(
            "crates/core/src/snapshot.rs",
            "pub fn write(s: &S) -> String { format!(\"{{\\\"seed\\\":{},\\\"level\\\":{}}}\", s.seed, s.level) }\n\
             pub fn parse(obj: &Obj) { req(obj, \"seed\"); get(obj, \"level\"); }\n",
        );
        assert_eq!(d.len(), 1, "{d:#?}");
        assert!(d[0].message.contains("never written"));
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn written_but_unparsed_key_is_flagged_at_the_write_site() {
        let d = diags(
            "crates/core/src/snapshot.rs",
            "pub fn write(s: &S) -> String {\n\
                 format!(\"{{\\\"seed\\\":{}}}\", s.seed)\n\
             }\n\
             pub fn parse(_obj: &Obj) {}\n",
        );
        assert!(
            d.iter()
                .any(|x| x.line == 2 && x.message.contains("never parsed")),
            "{d:#?}"
        );
    }

    #[test]
    fn parsed_but_unwritten_key_is_flagged_at_the_read_site() {
        let d = diags(
            "crates/core/src/snapshot.rs",
            "pub fn write(s: &S) -> String { format!(\"{{\\\"seed\\\":{}}}\", s.seed) }\n\
             pub fn parse(obj: &Obj) {\n\
                 req(obj, \"seed\");\n\
                 req(obj, \"checksum\");\n\
             }\n",
        );
        assert!(
            d.iter()
                .any(|x| x.line == 4 && x.message.contains("never written")),
            "{d:#?}"
        );
    }

    #[test]
    fn undocumented_written_key_is_flagged() {
        let d = diags(
            "crates/core/src/snapshot.rs",
            "pub fn write(s: &S) -> String { format!(\"{{\\\"wormhole\\\":{}}}\", s.x) }\n\
             pub fn parse(obj: &Obj) { req(obj, \"wormhole\"); }\n",
        );
        assert!(
            d.iter()
                .any(|x| x.line == 1 && x.message.contains("not documented")),
            "{d:#?}"
        );
    }

    #[test]
    fn method_get_calls_are_not_reader_lookups() {
        let ws = Workspace::build(vec![(
            "crates/core/src/snapshot.rs".to_owned(),
            "pub fn parse(m: &Map) { m.get(\"not_a_schema_key\"); }\n".to_owned(),
        )]);
        let model = &ws.files[0];
        let raw = model.src.raw_lines.join("\n");
        assert!(reader_keys(model, &raw).is_empty());
    }

    #[test]
    fn test_code_literals_are_ignored() {
        let d = diags(
            "crates/core/src/json.rs",
            "pub fn emit() -> String { String::new() }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { assert!(emit().contains(\"\\\"bogus\\\":1\")); }\n\
             }\n",
        );
        // No non-test writer keys at all: the scope is skipped entirely.
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let d = diags(
            "crates/core/src/visualize.rs",
            "pub fn emit(s: &S) -> String { format!(\"{{\\\"mystery\\\":{}}}\", s.x) }\n",
        );
        assert!(d.is_empty(), "{d:#?}");
    }
}
