//! Property differential between the two text passes (ISSUE 5 satellite):
//! the tokenizer ([`ocdd_lint::tokens`]) runs over the *masked* text
//! produced by [`ocdd_lint::source`], and every downstream diagnostic
//! anchors to `(line, byte offset)` pairs — so the two passes must agree
//! byte-for-byte. Sources are assembled from Rust-ish fragments (strings
//! with escapes, char literals, line/block comments, annotations, idents,
//! multi-char puncts) to stress the masking automaton's state machine.

use ocdd_lint::source::SourceFile;
use ocdd_lint::tokens::{tokenize, TokenKind};
use proptest::prelude::*;

/// Fragment alphabet. Each entry is valid in isolation; concatenations
/// exercise every masking transition (string ↔ comment ↔ code, across
/// line boundaries for block comments).
const FRAGMENTS: &[&str] = &[
    "fn f() { g(); }\n",
    "let x = v[i];\n",
    "let s = \"str with // not a comment\";\n",
    "let e = \"esc \\\" quote\";\n",
    "let c = 'x';\n",
    "let q = '\\'';\n",
    "// a line comment with \"quotes\" inside\n",
    "/* block comment */ let y = 1;\n",
    "/* multi\nline\nblock */\n",
    "let r = r\"raw-ish\";\n",
    "a.b();\n",
    "w -> x => y :: z;\n",
    "x..=y; a..b; p += 1; q <<= 2;\n",
    "// lint: allow(no-panic, fragment reason)\n",
    "#[cfg(test)]\nmod tests { fn t() { u(); } }\n",
    "\n",
    "   \n",
    "let unicode = \"héllo — dashes\";\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]
    #[test]
    fn token_stream_round_trips_byte_offsets_against_masking(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..24),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let file = SourceFile::parse("crates/core/src/prop.rs", &src);

        // Masking is per-line *byte-length* preserving (each masked char
        // becomes one space per UTF-8 byte) — so token byte offsets
        // computed on masked lines index directly into the raw text, even
        // when comments or literals carry multi-byte characters.
        prop_assert_eq!(file.masked_lines.len(), file.raw_lines.len());
        for (masked, raw) in file.masked_lines.iter().zip(&file.raw_lines) {
            prop_assert_eq!(masked.len(), raw.len(), "masking changed a line's byte length");
        }

        let masked = file.masked_lines.join("\n");
        let tokens = tokenize(&masked);

        let mut prev_end = 0usize;
        for t in &tokens {
            // Offsets are in-bounds, strictly ordered, and non-overlapping.
            prop_assert!(t.start < t.end, "empty or inverted token span");
            prop_assert!(t.start >= prev_end, "overlapping tokens");
            prop_assert!(t.end <= masked.len(), "token past end of text");
            prev_end = t.end;

            // The text IS the slice at those offsets — the round-trip.
            prop_assert_eq!(&masked[t.start..t.end], t.text.as_str());

            // The recorded line is the newline count up to the token start.
            let line = masked[..t.start].bytes().filter(|&b| b == b'\n').count();
            prop_assert_eq!(t.line, line, "token line drifted from its byte offset");

            // Tokenizing masked text never yields string/comment interiors:
            // idents and puncts only contain what their kind promises.
            match t.kind {
                TokenKind::Ident => prop_assert!(
                    t.text.chars().all(|c| c.is_alphanumeric() || c == '_'),
                    "non-ident byte inside an Ident token: {:?}", t.text
                ),
                TokenKind::Punct => prop_assert!(
                    !t.text.chars().any(|c| c.is_alphanumeric() || c == '_'),
                    "ident byte inside a Punct token: {:?}", t.text
                ),
                _ => {}
            }
        }

        // Reconstruction: splicing token texts back at their offsets over a
        // whitespace canvas reproduces the masked text modulo whitespace.
        let mut canvas: Vec<u8> = masked.bytes().map(|b| if b == b'\n' { b } else { b' ' }).collect();
        for t in &tokens {
            canvas[t.start..t.end].copy_from_slice(t.text.as_bytes());
        }
        let rebuilt = String::from_utf8(canvas).expect("token splice broke utf-8");
        let strip = |s: &str| s.split_whitespace().collect::<String>();
        prop_assert_eq!(strip(&rebuilt), strip(&masked));
    }
}
