//! Linter self-tests: every fixture under `tests/fixtures/` is scanned
//! under a fake in-scope path and the resulting diagnostics are asserted
//! exactly — rule, file, and line. The binary is exercised end-to-end on
//! a throwaway mini-workspace (non-zero exit) and on the real workspace
//! (zero exit).

use ocdd_lint::rules;
use ocdd_lint::scan_content;

/// (line, rule) projection of a diagnostic list, for exact comparisons.
fn shape(diags: &[ocdd_lint::Diagnostic]) -> Vec<(usize, &'static str)> {
    diags.iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn panics_fixture_exact_diagnostics() {
    let diags = scan_content(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/panics.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![
            (5, rules::NO_PANIC),
            (9, rules::NO_PANIC),
            (13, rules::CLOCK_CONFINEMENT),
        ],
        "{diags:#?}"
    );
    for d in &diags {
        assert_eq!(d.path, "crates/core/src/fixture.rs");
    }
}

#[test]
fn determinism_fixture_exact_diagnostics() {
    let diags = scan_content(
        "crates/core/src/search.rs",
        include_str!("fixtures/determinism.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![(7, rules::DETERMINISM_HASH), (8, rules::DETERMINISM_HASH)],
        "{diags:#?}"
    );
}

#[test]
fn determinism_rule_is_scoped_to_result_modules() {
    // The same content under a non-result-emitting path is clean.
    let diags = scan_content(
        "crates/core/src/reduction.rs",
        include_str!("fixtures/determinism.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn atomics_fixture_exact_diagnostics() {
    let diags = scan_content(
        "crates/core/src/scheduler.rs",
        include_str!("fixtures/atomics.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![
            (10, rules::ATOMICS_AUDIT),
            (19, rules::SPAWN_CONFINEMENT),
            (23, rules::LOCK_DISCIPLINE),
            (23, rules::NO_PANIC),
        ],
        "{diags:#?}"
    );
}

#[test]
fn spawn_is_allowed_in_search_and_runtime() {
    for path in ["crates/core/src/search.rs", "crates/core/src/runtime.rs"] {
        let diags = scan_content(path, "pub fn go() {\n    std::thread::spawn(|| {});\n}\n");
        assert!(
            !diags.iter().any(|d| d.rule == rules::SPAWN_CONFINEMENT),
            "{path}: {diags:#?}"
        );
    }
}

#[test]
fn annotation_hygiene_fixture_exact_diagnostics() {
    let diags = scan_content(
        "crates/core/src/annotations.rs",
        include_str!("fixtures/annotations.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![(1, rules::UNUSED_ALLOW), (4, rules::UNKNOWN_ALLOW)],
        "{diags:#?}"
    );
}

#[test]
fn test_regions_are_exempt() {
    let diags = scan_content(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/test_exempt.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn shared_cache_stats_counters_are_allowlisted() {
    let content = "pub fn f(s: &S) {\n    s.stats.hits.fetch_add(1, Ordering::Relaxed);\n}\n";
    let diags = scan_content("crates/core/src/shared_cache.rs", content);
    assert!(diags.is_empty(), "{diags:#?}");
    // The identical line elsewhere is a finding.
    let diags = scan_content("crates/core/src/scheduler.rs", content);
    assert_eq!(shape(&diags), vec![(2, rules::ATOMICS_AUDIT)]);
}

#[test]
fn binary_fails_on_violating_workspace_and_passes_on_this_one() {
    let bin = env!("CARGO_BIN_EXE_ocdd-lint");

    // Throwaway mini-workspace with one violating file.
    let root = std::env::temp_dir().join(format!("ocdd-lint-fixture-{}", std::process::id()));
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("create mini workspace");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src_dir.join("bad.rs"),
        "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    )
    .expect("write violating file");
    let out = std::process::Command::new(bin)
        .arg(&root)
        .output()
        .expect("run ocdd-lint on mini workspace");
    std::fs::remove_dir_all(&root).ok();
    assert!(!out.status.success(), "expected a non-zero exit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/core/src/bad.rs:2: no-panic:"),
        "{stdout}"
    );

    // The real workspace is clean — the CI gate this binary backs.
    let ws = ocdd_lint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let out = std::process::Command::new(bin)
        .arg(&ws)
        .output()
        .expect("run ocdd-lint on the workspace");
    assert!(
        out.status.success(),
        "workspace has lint findings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
