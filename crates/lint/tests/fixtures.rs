//! Linter self-tests: every fixture under `tests/fixtures/` is scanned
//! under a fake in-scope path and the resulting diagnostics are asserted
//! exactly — rule, file, line, and (for the semantic rules) the complete
//! call-chain / flow witness. The binary is exercised end-to-end on
//! throwaway mini-workspaces (findings, JSON emission, `--fix-allows`)
//! and on the real workspace (zero exit).

use ocdd_lint::rules;
use ocdd_lint::{analyze, scan_content};

/// (line, rule) projection of a diagnostic list, for exact comparisons.
fn shape(diags: &[ocdd_lint::Diagnostic]) -> Vec<(usize, &'static str)> {
    diags.iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn panics_fixture_exact_diagnostics() {
    // check.rs is a hot-path root file: every fn in it is a reachability
    // root, so its direct panic sources are findings.
    let diags = scan_content(
        "crates/core/src/check.rs",
        include_str!("fixtures/panics.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![
            (6, rules::PANIC_REACHABILITY),
            (10, rules::PANIC_REACHABILITY),
            (14, rules::CLOCK_CONFINEMENT),
        ],
        "{diags:#?}"
    );
    assert_eq!(
        diags[0].chain,
        vec![
            "core::check::helper (crates/core/src/check.rs:5)",
            "`.unwrap()` at crates/core/src/check.rs:6",
        ]
    );
}

#[test]
fn panic_reachability_is_scoped_to_hot_roots() {
    // The same content under a cold path has no reachability roots: the
    // panic sources are silent and the `no-panic` allow turns stale.
    let diags = scan_content(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/panics.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![(14, rules::CLOCK_CONFINEMENT), (18, rules::UNUSED_ALLOW)],
        "{diags:#?}"
    );
}

#[test]
fn cross_file_panic_is_witnessed_through_the_call_edge() {
    let analysis = analyze(vec![
        (
            "crates/core/src/check.rs".to_owned(),
            include_str!("fixtures/xfile_entry.rs").to_owned(),
        ),
        (
            "crates/core/src/support.rs".to_owned(),
            include_str!("fixtures/xfile_helper.rs").to_owned(),
        ),
    ]);
    let diags = analysis.diagnostics;
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, rules::PANIC_REACHABILITY);
    assert_eq!(diags[0].path, "crates/core/src/support.rs");
    assert_eq!(diags[0].line, 10);
    assert_eq!(
        diags[0].chain,
        vec![
            "core::check::entry_check (crates/core/src/check.rs:7)",
            "core::support::pick (crates/core/src/support.rs:5)",
            "core::support::choose (crates/core/src/support.rs:9)",
            "`.unwrap()` at crates/core/src/support.rs:10",
        ],
        "the witness must walk root -> helper -> helper -> panic site"
    );
}

#[test]
fn two_mutex_ab_ba_cycle_is_witnessed_across_files() {
    let analysis = analyze(vec![
        (
            "crates/core/src/lock_a.rs".to_owned(),
            include_str!("fixtures/locks_a.rs").to_owned(),
        ),
        (
            "crates/core/src/lock_b.rs".to_owned(),
            include_str!("fixtures/locks_b.rs").to_owned(),
        ),
    ]);
    let diags = analysis.diagnostics;
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, rules::LOCK_ORDER);
    assert_eq!(diags[0].path, "crates/core/src/lock_a.rs");
    assert_eq!(diags[0].line, 12);
    assert_eq!(
        diags[0].chain,
        vec![
            "lock-order cycle: ALPHA -> BETA -> ALPHA",
            "`core::lock_a::alpha_then_beta` calls `core::lock_b::bump_beta` \
             (crates/core/src/lock_a.rs:12) while holding `ALPHA` (acquired \
             crates/core/src/lock_a.rs:11); the callee acquires `BETA`",
            "`core::lock_b::beta_then_alpha` calls `core::lock_a::bump_alpha` \
             (crates/core/src/lock_b.rs:12) while holding `BETA` (acquired \
             crates/core/src/lock_b.rs:11); the callee acquires `ALPHA`",
        ],
        "the witness must show both opposite-order acquisition edges"
    );
}

#[test]
fn determinism_fixture_exact_diagnostics() {
    let diags = scan_content(
        "crates/core/src/search.rs",
        include_str!("fixtures/determinism.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![(13, rules::DETERMINISM_TAINT)],
        "{diags:#?}"
    );
    assert_eq!(
        diags[0].chain,
        vec![
            "source: iteration of hash container `m` at crates/core/src/search.rs:10",
            "loop binding `k` at crates/core/src/search.rs:10",
            "absorbed by `order` at crates/core/src/search.rs:11",
            "sink: `DiscoveryResult` constructor at crates/core/src/search.rs:13",
        ],
        "the flow witness must walk source -> bindings -> sink; \
         `sorted_escape` (sorted before escape) must stay clean"
    );
}

#[test]
fn approximate_result_constructor_is_a_taint_sink() {
    // The approximate pipeline shares the deterministic-container
    // contract: hash-iteration order flowing into an
    // `ApproximateResult` constructor is a finding too.
    let content = "use std::collections::HashMap;\n\
                   \n\
                   pub fn leak(m: &HashMap<u32, u32>) -> ApproximateResult {\n\
                   \x20   let mut ocds = Vec::new();\n\
                   \x20   for (k, _) in m.iter() {\n\
                   \x20       ocds.push(*k);\n\
                   \x20   }\n\
                   \x20   ApproximateResult { ocds }\n\
                   }\n";
    let diags = scan_content("crates/core/src/approximate.rs", content);
    assert_eq!(
        shape(&diags),
        vec![(8, rules::DETERMINISM_TAINT)],
        "{diags:#?}"
    );
    assert_eq!(
        diags[0].chain,
        vec![
            "source: iteration of hash container `m` at crates/core/src/approximate.rs:5",
            "loop binding `k` at crates/core/src/approximate.rs:5",
            "absorbed by `ocds` at crates/core/src/approximate.rs:6",
            "sink: `ApproximateResult` constructor at crates/core/src/approximate.rs:8",
        ]
    );
}

#[test]
fn atomics_fixture_exact_diagnostics() {
    let diags = scan_content(
        "crates/core/src/scheduler.rs",
        include_str!("fixtures/atomics.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![
            (10, rules::ATOMICS_AUDIT),
            (19, rules::SPAWN_CONFINEMENT),
            (23, rules::LOCK_DISCIPLINE),
            (23, rules::PANIC_REACHABILITY),
        ],
        "{diags:#?}"
    );
}

#[test]
fn iosafe_fixture_exact_diagnostics() {
    let diags = scan_content(
        "crates/bench/src/report.rs",
        include_str!("fixtures/iosafe.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![
            (8, rules::IO_CONFINEMENT),
            (12, rules::IO_CONFINEMENT),
            (16, rules::IO_CONFINEMENT),
        ],
        "{diags:#?}"
    );
}

#[test]
fn direct_writes_are_allowed_inside_iosafe() {
    let diags = scan_content(
        "crates/iosafe/src/lib.rs",
        include_str!("fixtures/iosafe.rs"),
    );
    assert!(
        !diags.iter().any(|d| d.rule == rules::IO_CONFINEMENT),
        "{diags:#?}"
    );
}

#[test]
fn spawn_is_allowed_in_search_and_runtime() {
    for path in ["crates/core/src/search.rs", "crates/core/src/runtime.rs"] {
        let diags = scan_content(path, "pub fn go() {\n    std::thread::spawn(|| {});\n}\n");
        assert!(
            !diags.iter().any(|d| d.rule == rules::SPAWN_CONFINEMENT),
            "{path}: {diags:#?}"
        );
    }
}

#[test]
fn annotation_hygiene_fixture_exact_diagnostics() {
    let diags = scan_content(
        "crates/core/src/annotations.rs",
        include_str!("fixtures/annotations.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![(1, rules::UNUSED_ALLOW), (4, rules::UNKNOWN_ALLOW)],
        "{diags:#?}"
    );
}

#[test]
fn unprobed_fixture_exact_diagnostics() {
    // scheduler.rs is in the cancellation scope; `discover` is the entry
    // point. Only the dry helper loop is a finding — the directly probing
    // loop, the probing-via-callee loop, and the annotated loop are clean.
    let diags = scan_content(
        "crates/core/src/scheduler.rs",
        include_str!("fixtures/unprobed.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![(11, rules::UNPROBED_LOOP)],
        "{diags:#?}"
    );
    assert_eq!(
        diags[0].chain,
        vec![
            "core::scheduler::discover (crates/core/src/scheduler.rs:5)",
            "core::scheduler::drive (crates/core/src/scheduler.rs:9)",
            "`for` loop spanning crates/core/src/scheduler.rs:11-13",
        ],
        "the witness must walk entry point -> helper -> loop span"
    );
}

#[test]
fn unprobed_loops_outside_the_cancellation_scope_are_silent() {
    // The same content in a file outside the cancellation scope has no
    // findings — but the now-stale allow inside it is flagged.
    let diags = scan_content(
        "crates/core/src/reduction.rs",
        include_str!("fixtures/unprobed.rs"),
    );
    assert_eq!(shape(&diags), vec![(43, rules::UNUSED_ALLOW)], "{diags:#?}");
}

#[test]
fn hot_alloc_fixture_exact_diagnostics() {
    // check.rs is a hot-allocation root: its fns are scan/check/sort
    // roots. The hoisted with_capacity + in-loop push stay silent; the
    // in-loop format! and clone are findings; the annotated clone is not.
    let diags = scan_content(
        "crates/core/src/check.rs",
        include_str!("fixtures/hot_alloc.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![(8, rules::HOT_LOOP_ALLOC), (16, rules::HOT_LOOP_ALLOC)],
        "{diags:#?}"
    );
    assert!(diags[0].message.contains("`format!`"), "{diags:#?}");
    assert_eq!(
        diags[0].chain,
        vec![
            "core::check::kernel (crates/core/src/check.rs:5)",
            "`format!` inside a `for` loop at crates/core/src/check.rs:8",
        ]
    );
    assert!(diags[1].message.contains("`.clone()`"), "{diags:#?}");
}

#[test]
fn schema_drift_fixture_exact_diagnostics() {
    // Injected drift against the documented ocdd-snapshot/1 table: an
    // undocumented+unparsed written key, a parsed-but-never-written key
    // (the resume-rejection class), and the aggregated documented-but-
    // absent finding anchored at the first write site.
    let diags = scan_content(
        "crates/core/src/snapshot.rs",
        include_str!("fixtures/schema_drift.rs"),
    );
    assert_eq!(
        shape(&diags),
        vec![
            (9, rules::SCHEMA_PARITY),
            (9, rules::SCHEMA_PARITY),
            (9, rules::SCHEMA_PARITY),
            (14, rules::SCHEMA_PARITY),
        ],
        "{diags:#?}"
    );
    let messages: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`\"wormhole\"`") && m.contains("never parsed")),
        "{diags:#?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`\"wormhole\"`") && m.contains("not documented")),
        "{diags:#?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`\"checksum\"`") && m.contains("never written")),
        "{diags:#?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("documented ocdd-snapshot/1 key") && m.contains("`\"frontier\"`")),
        "{diags:#?}"
    );
    let drift = diags
        .iter()
        .find(|d| d.message.contains("never parsed"))
        .expect("wormhole drift finding");
    assert_eq!(
        drift.chain,
        vec![
            "written at crates/core/src/snapshot.rs:9",
            "no matching `req`/`get` lookup in the parser",
        ]
    );
}

#[test]
fn test_regions_are_exempt() {
    let diags = scan_content(
        "crates/core/src/check.rs",
        include_str!("fixtures/test_exempt.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn shared_cache_stats_counters_are_allowlisted() {
    let content = "pub fn f(s: &S) {\n    s.stats.hits.fetch_add(1, Ordering::Relaxed);\n}\n";
    let diags = scan_content("crates/core/src/shared_cache.rs", content);
    assert!(diags.is_empty(), "{diags:#?}");
    // The identical line elsewhere is a finding.
    let diags = scan_content("crates/core/src/scheduler.rs", content);
    assert_eq!(shape(&diags), vec![(2, rules::ATOMICS_AUDIT)]);
}

/// Build a throwaway mini-workspace under a unique temp dir.
fn mini_workspace(tag: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("ocdd-lint-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    for (rel, content) in files {
        let abs = root.join(rel);
        std::fs::create_dir_all(abs.parent().expect("file path has a parent"))
            .expect("create mini workspace dirs");
        std::fs::write(abs, content).expect("write mini workspace file");
    }
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    root
}

#[test]
fn binary_fails_on_violating_workspace_and_passes_on_this_one() {
    let bin = env!("CARGO_BIN_EXE_ocdd-lint");

    let root = mini_workspace(
        "bad",
        &[(
            "crates/core/src/check.rs",
            "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
        )],
    );
    let out = std::process::Command::new(bin)
        .arg(&root)
        .output()
        .expect("run ocdd-lint on mini workspace");
    std::fs::remove_dir_all(&root).ok();
    assert!(!out.status.success(), "expected a non-zero exit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/core/src/check.rs:2: panic-reachability:"),
        "{stdout}"
    );
    assert!(stdout.contains("witness:"), "{stdout}");

    // The real workspace is clean — the CI gate this binary backs.
    let ws = ocdd_lint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let out = std::process::Command::new(bin)
        .arg(&ws)
        .output()
        .expect("run ocdd-lint on the workspace");
    assert!(
        out.status.success(),
        "workspace has lint findings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn binary_emits_stable_json() {
    let bin = env!("CARGO_BIN_EXE_ocdd-lint");
    let root = mini_workspace(
        "json",
        &[(
            "crates/core/src/check.rs",
            "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
        )],
    );
    let out = std::process::Command::new(bin)
        .args([root.to_str().expect("utf-8 temp path"), "--emit", "json"])
        .output()
        .expect("run ocdd-lint --emit json");
    std::fs::remove_dir_all(&root).ok();
    assert!(!out.status.success(), "findings must still exit non-zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"ocdd-lint/2\""), "{stdout}");
    assert!(stdout.contains("\"count\": 1"), "{stdout}");
    assert!(
        stdout.contains("\"panic-reachability\": 1") && stdout.contains("\"unprobed-loop\": 0"),
        "the per-rule counts object must cover every rule:\n{stdout}"
    );
    assert!(
        stdout.contains(
            "\"rule\": \"panic-reachability\", \"file\": \"crates/core/src/check.rs\", \"line\": 2"
        ),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"chain\": [\"core::check::f (crates/core/src/check.rs:1)\""),
        "{stdout}"
    );
}

#[test]
fn binary_emits_sarif() {
    let bin = env!("CARGO_BIN_EXE_ocdd-lint");
    let root = mini_workspace(
        "sarif",
        &[(
            "crates/core/src/check.rs",
            "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
        )],
    );
    let out = std::process::Command::new(bin)
        .args([root.to_str().expect("utf-8 temp path"), "--emit", "sarif"])
        .output()
        .expect("run ocdd-lint --emit sarif");
    std::fs::remove_dir_all(&root).ok();
    assert!(!out.status.success(), "findings must still exit non-zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"version\": \"2.1.0\""), "{stdout}");
    assert!(stdout.contains("\"name\": \"ocdd-lint\""), "{stdout}");
    assert!(
        stdout.contains("\"ruleId\": \"panic-reachability\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"uri\": \"crates/core/src/check.rs\"")
            && stdout.contains("\"startLine\": 2"),
        "{stdout}"
    );
}

#[test]
fn binary_fails_on_unprobed_loop_workspace() {
    // End-to-end over the new semantic rules: a mini-workspace whose
    // discover entry point drives a dry loop exits non-zero with the
    // call-chain witness in the human output.
    let bin = env!("CARGO_BIN_EXE_ocdd-lint");
    let root = mini_workspace(
        "unprobed",
        &[(
            "crates/core/src/search.rs",
            "pub fn discover(v: &[u32]) -> u32 {\n\
             \x20   drive(v)\n\
             }\n\
             fn drive(v: &[u32]) -> u32 {\n\
             \x20   let mut acc = 0;\n\
             \x20   for x in v {\n\
             \x20       acc += *x;\n\
             \x20   }\n\
             \x20   acc\n\
             }\n",
        )],
    );
    let out = std::process::Command::new(bin)
        .arg(&root)
        .output()
        .expect("run ocdd-lint on unprobed mini workspace");
    std::fs::remove_dir_all(&root).ok();
    assert!(!out.status.success(), "expected a non-zero exit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/core/src/search.rs:6: unprobed-loop:"),
        "{stdout}"
    );
    assert!(
        stdout.contains("core::search::discover (crates/core/src/search.rs:1)"),
        "{stdout}"
    );
}

#[test]
fn fix_allows_dry_run_then_apply() {
    let bin = env!("CARGO_BIN_EXE_ocdd-lint");
    let before = "pub fn used(v: Option<u32>) -> u32 {\n\
                  \x20   // lint: allow(no-panic, fixture: caller always passes Some)\n\
                  \x20   v.unwrap()\n\
                  }\n\
                  \n\
                  // lint: allow(no-panic, stale annotation on its own line)\n\
                  pub fn fine() -> u32 {\n\
                  \x20   1\n\
                  }\n\
                  \n\
                  pub fn trailing() -> u32 {\n\
                  \x20   2 // lint: allow(determinism-hash, stale trailing annotation)\n\
                  }\n";
    let root = mini_workspace("fix", &[("crates/core/src/check.rs", before)]);
    let file = root.join("crates/core/src/check.rs");

    // Dry run: reports what would go, touches nothing, exits zero.
    let out = std::process::Command::new(bin)
        .args([root.to_str().expect("utf-8 temp path"), "--fix-allows"])
        .output()
        .expect("run ocdd-lint --fix-allows");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.contains("crates/core/src/check.rs:6: stale allow(no-panic) would be removed"),
        "{stdout}"
    );
    assert!(
        stdout.contains(
            "crates/core/src/check.rs:12: stale allow(determinism-hash) would be removed"
        ),
        "{stdout}"
    );
    assert_eq!(
        std::fs::read_to_string(&file).expect("reread fixture"),
        before,
        "dry run must not modify the file"
    );

    // Apply: the standalone stale line is deleted, the trailing one is
    // stripped back to its code, the used allow survives.
    let out = std::process::Command::new(bin)
        .args([
            root.to_str().expect("utf-8 temp path"),
            "--fix-allows",
            "--apply",
        ])
        .output()
        .expect("run ocdd-lint --fix-allows --apply");
    assert!(out.status.success());
    let after = std::fs::read_to_string(&file).expect("reread fixture");
    let expected = "pub fn used(v: Option<u32>) -> u32 {\n\
                    \x20   // lint: allow(no-panic, fixture: caller always passes Some)\n\
                    \x20   v.unwrap()\n\
                    }\n\
                    \n\
                    pub fn fine() -> u32 {\n\
                    \x20   1\n\
                    }\n\
                    \n\
                    pub fn trailing() -> u32 {\n\
                    \x20   2\n\
                    }\n";
    assert_eq!(after, expected);

    // The workspace is clean once the stale annotations are gone.
    let out = std::process::Command::new(bin)
        .arg(&root)
        .output()
        .expect("re-run ocdd-lint after apply");
    std::fs::remove_dir_all(&root).ok();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn explain_covers_every_rule_and_aliases() {
    let bin = env!("CARGO_BIN_EXE_ocdd-lint");
    for rule in ocdd_lint::ALL_RULES {
        let out = std::process::Command::new(bin)
            .args(["--explain", rule])
            .output()
            .expect("run ocdd-lint --explain");
        assert!(out.status.success(), "--explain {rule}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains(rule),
            "--explain {rule} must mention the rule"
        );
    }
    // Aliases resolve to the subsuming rule's text.
    let out = std::process::Command::new(bin)
        .args(["--explain", "no-panic"])
        .output()
        .expect("run ocdd-lint --explain no-panic");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("panic-reachability"));
}
