//! Fixture: determinism-taint — one leak of hash-iteration order into a
//! `DiscoveryResult` constructor (finding) and one local map whose
//! contents are sorted before escape (clean). Scanned as
//! crates/core/src/search.rs by the integration tests.

use std::collections::HashMap;

pub fn leak(m: &HashMap<u32, u32>) -> DiscoveryResult {
    let mut order = Vec::new();
    for (k, _) in m.iter() {
        order.push(*k);
    }
    DiscoveryResult { ods: order }
}

pub fn sorted_escape(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}
