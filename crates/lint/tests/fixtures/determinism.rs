//! Fixture: determinism-hash violations (scanned as
//! crates/core/src/search.rs by the integration tests). The `use` line is
//! exempt; the two mentions below are not.

use std::collections::HashMap;

pub fn table() -> HashMap<u32, u32> {
    HashMap::new()
}
