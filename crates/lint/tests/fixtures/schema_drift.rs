//! Fixture: snapshot serializer/parser key drift. The writer emits
//! `seed` (documented, parsed — clean) and `wormhole` (undocumented,
//! unparsed — two findings); the parser requires `checksum`, which is
//! never written (rejected-on-resume finding). The rest of the documented
//! table is absent, which aggregates into one finding at the first write
//! site.

pub fn write(s: &S) -> String {
    format!("{{\"seed\":{},\"wormhole\":{}}}", s.seed, s.wormhole)
}

pub fn parse(obj: &[(String, Json)]) -> Result<S, String> {
    let seed = req(obj, "seed")?;
    let checksum = req(obj, "checksum")?;
    Ok(S { seed, checksum })
}
