//! Fixture: direct file writes (findings), a justified one (clean) —
//! the same content is also scanned under crates/iosafe/src/, where the
//! rule does not apply.

use std::path::Path;

pub fn dump(path: &Path, data: &str) -> std::io::Result<()> {
    std::fs::write(path, data)
}

pub fn open(path: &Path) -> std::io::Result<std::fs::File> {
    std::fs::File::create(path)
}

pub fn append(path: &Path) -> std::io::Result<std::fs::File> {
    std::fs::OpenOptions::new().append(true).open(path)
}

pub fn dump_justified(path: &Path, data: &str) -> std::io::Result<()> {
    // lint: allow(io-confinement, fixture; pretend this is the helper's own internals)
    std::fs::write(path, data)
}
