//! Cross-file fixture, hot side: the entry point lives in a hot-path root
//! file (scanned as crates/core/src/check.rs) and is panic-free itself —
//! the panic is two call hops away in the sibling fixture.

use crate::support::pick;

pub fn entry_check(v: &[u32]) -> u32 {
    pick(v)
}
