//! Cross-file fixture, BA side of the two-mutex cycle: BETA is held
//! across a call that (through the sibling file) acquires ALPHA — the
//! opposite order, closing the cycle.

use crate::lock_a::bump_alpha;
use std::sync::Mutex;

pub static BETA: Mutex<u32> = Mutex::new(0);

pub fn beta_then_alpha() {
    let h = BETA.lock();
    bump_alpha();
    drop(h);
}

pub fn bump_beta() {
    let h = BETA.lock();
    let _ = h;
}
