//! Fixture: one bare Relaxed (finding) and one justified Relaxed (clean),
//! plus a spawn outside the confinement modules and a lock().unwrap().

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static N: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    N.fetch_add(1, Ordering::Relaxed);
}

pub fn bump_justified() {
    // lint: allow(atomics-audit, fixture counter; written once and never read)
    N.fetch_add(1, Ordering::Relaxed);
}

pub fn escapee() {
    std::thread::spawn(|| {}).join().ok();
}

pub fn peek(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
