//! Fixture: direct panic sources plus a clock-confinement violation
//! (scanned as crates/core/src/check.rs — a hot-path root file — by the
//! integration tests).

pub fn helper(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn message() -> String {
    panic!("fixture")
}

pub fn deadline() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn annotated(v: Option<u32>) -> u32 {
    // lint: allow(no-panic, fixture invariant: caller always passes Some)
    v.expect("always Some")
}
