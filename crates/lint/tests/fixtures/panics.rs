//! Fixture: no-panic and clock-confinement violations (scanned as a
//! crates/core/src/ path by the integration tests).

pub fn helper(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn message() -> String {
    panic!("fixture")
}

pub fn deadline() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn annotated(v: Option<u32>) -> u32 {
    // lint: allow(no-panic, fixture invariant: caller always passes Some)
    v.expect("always Some")
}
