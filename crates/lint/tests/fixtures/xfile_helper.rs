//! Cross-file fixture, cold side: a helper (scanned as
//! crates/core/src/support.rs — in scope but not a hot-path root) whose
//! panic is only a finding because check.rs reaches it.

pub fn pick(v: &[u32]) -> u32 {
    choose(v)
}

fn choose(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}
