//! Fixture: a discover entry point reaching an unprobed loop through a
//! helper. A directly probing loop, a loop probing via a callee, and an
//! annotated loop all stay silent.

pub fn discover(v: &[u32], b: &Budget) -> u32 {
    drive(v) + probed(v, b) + via_callee(v, b) + allowed(v)
}

fn drive(v: &[u32]) -> u32 {
    let mut acc = 0;
    for x in v {
        acc += *x;
    }
    acc
}

fn probed(v: &[u32], b: &Budget) -> u32 {
    let mut acc = 0;
    while acc < v.len() as u32 {
        if !b.probe() {
            break;
        }
        acc += 1;
    }
    acc
}

fn via_callee(v: &[u32], b: &Budget) -> u32 {
    let mut acc = 0;
    for x in v {
        poll(b);
        acc += *x;
    }
    acc
}

fn poll(b: &Budget) {
    b.probe_now();
}

fn allowed(v: &[u32]) -> u32 {
    let mut acc = 0;
    // lint: allow(unprobed-loop, fixture: bounded by the fixture slice)
    for x in v {
        acc += *x;
    }
    acc
}
