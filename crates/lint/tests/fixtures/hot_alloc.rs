//! Fixture: allocations inside loops reachable from a hot-path root. The
//! hoisted buffer with in-loop pushes and the annotated scratch clone
//! stay silent; the in-loop `format!` and `.clone()` are findings.

pub fn kernel(v: &[u32]) -> Vec<String> {
    let mut out = Vec::with_capacity(v.len());
    for x in v {
        out.push(format!("{x}"));
    }
    out
}

pub fn relabel(names: &[String]) -> u32 {
    let mut n = 0;
    for name in names {
        let copy = name.clone();
        n += copy.len() as u32;
    }
    n
}

pub fn scratch(names: &[String]) -> u32 {
    let mut n = 0;
    for name in names {
        // lint: allow(hot-loop-alloc, fixture: documented scratch reuse)
        let copy = name.clone();
        n += copy.len() as u32;
    }
    n
}
