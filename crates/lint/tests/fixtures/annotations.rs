// lint: allow(no-panic, nothing on the next line needs this)
pub fn fine() {}

// lint: allow(made-up-rule, the rule name does not exist)
pub fn also_fine() {}
