//! Cross-file fixture, AB side of a two-mutex lock-order cycle: ALPHA is
//! held across a call that acquires BETA (which lives in the sibling
//! fixture file, scanned as a different path).

use crate::lock_b::bump_beta;
use std::sync::Mutex;

pub static ALPHA: Mutex<u32> = Mutex::new(0);

pub fn alpha_then_beta() {
    let g = ALPHA.lock();
    bump_beta();
    drop(g);
}

pub fn bump_alpha() {
    let g = ALPHA.lock();
    let _ = g;
}
