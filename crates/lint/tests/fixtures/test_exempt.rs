//! Fixture: everything below sits in a test region, so no rule fires even
//! when scanned as a crates/core/src/ path.

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        let _ = std::time::Instant::now();
        let _: HashSet<u32> = HashSet::new();
    }
}
