//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of rayon it uses: `ThreadPoolBuilder` → `ThreadPool::install`
//! and slice `par_iter().map(..)/.map_init(..).collect()`.
//!
//! Execution model: instead of work-stealing, the input slice is split into
//! `num_threads` contiguous chunks and each chunk runs on its own scoped
//! thread (`map_init` runs its init once per chunk). `collect` preserves
//! input order, so results are byte-identical to a sequential run — the
//! property the determinism tests assert. Load balance is coarser than
//! real work-stealing, which only affects wall-clock, never results.

#![allow(clippy::all, clippy::pedantic, clippy::manual_is_multiple_of)]

use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Thread count installed by the innermost `ThreadPool::install`.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// Number of worker threads the current `install` scope provides.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|t| t.get().max(1))
}

/// Error type mirroring rayon's builder error (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default thread count (available parallelism).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Set the worker count (0 = available parallelism).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical pool: threads are spawned per parallel call, scoped, so no
/// persistent workers are kept alive.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count visible to `par_iter` calls
    /// made inside it.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|t| {
            let prev = t.get();
            t.set(self.num_threads);
            let out = op();
            t.set(prev);
            out
        })
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

pub mod iter {
    use super::current_num_threads;

    /// Borrowing conversion into a parallel iterator (`.par_iter()`).
    pub trait IntoParallelRefIterator<'data> {
        /// The parallel iterator type.
        type Iter;
        /// Start a parallel iterator over borrowed items.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = ParIter<'data, T>;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = ParIter<'data, T>;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter {
                items: self.as_slice(),
            }
        }
    }

    /// Parallel iterator over a borrowed slice; items are `&'data T`.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Parallel map.
        pub fn map<R, F>(self, f: F) -> Map<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            Map {
                items: self.items,
                f,
            }
        }

        /// Parallel map with per-worker mutable state (rayon's `map_init`;
        /// here `init` runs once per chunk).
        pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> MapInit<'data, T, INIT, F>
        where
            INIT: Fn() -> S + Sync,
            F: Fn(&mut S, &'data T) -> R + Sync,
            R: Send,
        {
            MapInit {
                items: self.items,
                init,
                f,
            }
        }
    }

    /// Result of [`ParIter::map`].
    pub struct Map<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    /// Result of [`ParIter::map_init`].
    pub struct MapInit<'data, T, INIT, F> {
        items: &'data [T],
        init: INIT,
        f: F,
    }

    /// Split `len` items into at most `workers` contiguous chunk ranges.
    fn chunk_ranges(len: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
        let workers = workers.clamp(1, len.max(1));
        let base = len / workers;
        let extra = len % workers;
        let mut ranges = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let size = base + usize::from(w < extra);
            ranges.push(start..start + size);
            start += size;
        }
        ranges
    }

    /// Run one closure per chunk on scoped threads, preserving chunk order.
    fn run_chunked<'data, T, R, F>(items: &'data [T], per_chunk: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data [T]) -> Vec<R> + Sync,
    {
        let workers = current_num_threads();
        if workers <= 1 || items.len() <= 1 {
            return per_chunk(items);
        }
        let ranges = chunk_ranges(items.len(), workers);
        let mut out = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| {
                    let per_chunk = &per_chunk;
                    scope.spawn(move || per_chunk(&items[r]))
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("parallel worker panicked"));
            }
        });
        out
    }

    impl<'data, T, R, F> Map<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        /// Collect mapped results in input order.
        pub fn collect<C: From<Vec<R>>>(self) -> C {
            let f = &self.f;
            C::from(run_chunked(self.items, |chunk: &'data [T]| {
                chunk.iter().map(f).collect()
            }))
        }
    }

    impl<'data, T, S, R, INIT, F> MapInit<'data, T, INIT, F>
    where
        T: Sync,
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'data T) -> R + Sync,
    {
        /// Collect mapped results in input order.
        pub fn collect<C: From<Vec<R>>>(self) -> C {
            let f = &self.f;
            let init = &self.init;
            C::from(run_chunked(self.items, |chunk: &'data [T]| {
                let mut state = init();
                chunk.iter().map(|item| f(&mut state, item)).collect()
            }))
        }
    }
}

pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = pool.install(|| input.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_runs_init_per_chunk() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let input: Vec<u32> = (0..10).collect();
        let out: Vec<u32> = pool.install(|| {
            input
                .par_iter()
                .map_init(
                    || 100u32,
                    |state, &x| {
                        *state += 1;
                        x + *state - *state // value independent of state
                    },
                )
                .collect()
        });
        assert_eq!(out, input);
    }

    #[test]
    fn outside_install_is_sequential() {
        let input = vec![1, 2, 3];
        let out: Vec<i32> = input.par_iter().map(|&x| -x).collect();
        assert_eq!(out, vec![-1, -2, -3]);
    }
}
