//! A vendored, API-compatible subset of [`loom`](https://docs.rs/loom) —
//! the workspace has no crates.io access, so the model checker is
//! implemented here from scratch.
//!
//! # What this shim actually checks
//!
//! [`model`] runs a closure repeatedly, exploring **every interleaving of
//! its instrumented operations** (shim [`sync::Mutex`] acquisitions, shim
//! [`sync::atomic`] operations, spawns, joins and explicit yields) by
//! depth-first search over scheduling decisions, up to a schedule cap.
//! Execution is *serialized*: only one model thread runs at a time, and at
//! every instrumented operation the scheduler picks which runnable thread
//! continues. A decision with `k` runnable threads is a `k`-way branch
//! point; backtracking re-runs the closure with the next untried choice
//! until the tree is exhausted (or [`MAX_SCHEDULES`] is hit — the cap is
//! overridable via the `LOOM_MAX_SCHEDULES` environment variable).
//!
//! Along every explored schedule the checker verifies:
//!
//! * all user assertions inside the closure (a panic on any schedule fails
//!   the model and reports the decision trace),
//! * absence of deadlock (a state where live threads exist but none is
//!   runnable fails the model).
//!
//! # Differences from real loom
//!
//! * Memory is **sequentially consistent**: `Ordering` arguments are
//!   accepted but not distinguished, so weak-memory reorderings are *not*
//!   explored. The shim checks interleaving/atomicity bugs, not fence
//!   placement.
//! * No partial-order reduction — keep models small (2–3 threads, a dozen
//!   instrumented operations each) or the DFS hits the schedule cap and
//!   the run degrades to a bounded prefix of the tree.
//! * Outside [`model`], every shim type transparently delegates to its
//!   `std::sync` counterpart, so code compiled against the shim behaves
//!   identically in ordinary builds and tests.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, PoisonError};

/// Default bound on explored schedules; override with the
/// `LOOM_MAX_SCHEDULES` environment variable.
pub const MAX_SCHEDULES: usize = 10_000;

/// Sentinel panic payload used to unwind model threads when an execution
/// is aborted (another thread panicked or deadlocked). Never escapes
/// [`model`].
struct Abort;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting for the given shim lock to be released.
    BlockedLock(usize),
    /// Waiting for the given thread to finish.
    BlockedJoin(usize),
    /// Ran to completion (normally or by unwinding).
    Finished,
}

/// One scheduling decision: which of `options` runnable threads was
/// resumed.
#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: usize,
    options: usize,
}

struct Inner {
    statuses: Vec<Status>,
    /// Thread currently holding the baton.
    current: usize,
    /// Shim locks registered this execution; `true` = held.
    locks: Vec<bool>,
    /// Decisions taken so far in this execution.
    decisions: Vec<Decision>,
    /// Forced choices replayed from the previous execution's backtrack.
    prefix: Vec<usize>,
    /// Set when the execution must unwind (panic or deadlock observed).
    abort: bool,
    /// First failure observed, with its decision trace.
    failure: Option<String>,
    /// Threads not yet `Finished`.
    active: usize,
}

/// Serialized round-robin scheduler for one `model` execution. All model
/// threads share it through an `Arc`; the baton (`Inner::current`) decides
/// who runs, and a `Condvar` wakes waiters whenever it moves.
struct Scheduler {
    inner: std::sync::Mutex<Inner>,
    cv: Condvar,
}

thread_local! {
    /// (scheduler, model thread id) of the current OS thread, when it is a
    /// model thread. Absent in passthrough mode.
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

impl Scheduler {
    fn new(prefix: Vec<usize>) -> Scheduler {
        Scheduler {
            inner: std::sync::Mutex::new(Inner {
                statuses: Vec::new(),
                current: 0,
                locks: Vec::new(),
                decisions: Vec::new(),
                prefix,
                abort: false,
                failure: None,
                active: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// The scheduler's own critical sections never panic, but a model
    /// thread unwinding on abort may still poison the state mutex between
    /// operations — the state stays structurally valid, so recover it.
    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register_thread(&self) -> usize {
        let mut g = self.locked();
        g.statuses.push(Status::Runnable);
        g.active += 1;
        g.statuses.len() - 1
    }

    fn register_lock(&self) -> usize {
        let mut g = self.locked();
        g.locks.push(false);
        g.locks.len() - 1
    }

    /// Pick the next thread to run from the runnable set (a DFS branch
    /// point). Must be called with the state lock held. Flags a deadlock
    /// when live threads exist but none is runnable.
    fn choose_next(&self, g: &mut Inner) {
        let options: Vec<usize> = (0..g.statuses.len())
            .filter(|&t| g.statuses[t] == Status::Runnable)
            .collect();
        if options.is_empty() {
            if g.active > 0 && !g.abort {
                let trace: Vec<usize> = g.decisions.iter().map(|d| d.chosen).collect();
                g.failure = Some(format!(
                    "deadlock: {} live thread(s), none runnable (schedule {trace:?})",
                    g.active
                ));
                g.abort = true;
            }
            self.cv.notify_all();
            return;
        }
        let step = g.decisions.len();
        let chosen = if step < g.prefix.len() {
            g.prefix[step].min(options.len() - 1)
        } else {
            0
        };
        g.decisions.push(Decision {
            chosen,
            options: options.len(),
        });
        g.current = options[chosen];
        self.cv.notify_all();
    }

    /// Block until this thread is `Runnable` *and* holds the baton.
    /// Unwinds with [`Abort`] when the execution is being torn down.
    fn wait_for_baton(&self, me: usize, mut g: std::sync::MutexGuard<'_, Inner>) {
        loop {
            if g.abort {
                drop(g);
                std::panic::panic_any(Abort);
            }
            if g.statuses[me] == Status::Runnable && g.current == me {
                return;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A scheduling decision point: offer the baton to any runnable thread
    /// (including the caller), then wait to be resumed.
    fn yield_point(&self, me: usize) {
        let mut g = self.locked();
        if g.abort {
            drop(g);
            std::panic::panic_any(Abort);
        }
        self.choose_next(&mut g);
        self.wait_for_baton(me, g);
    }

    /// Acquire shim lock `lock`: loops through block/wake cycles until the
    /// lock is free while the caller holds the baton.
    fn lock_acquire(&self, me: usize, lock: usize) {
        self.yield_point(me);
        loop {
            let mut g = self.locked();
            if g.abort {
                drop(g);
                std::panic::panic_any(Abort);
            }
            if !g.locks[lock] {
                g.locks[lock] = true;
                return;
            }
            g.statuses[me] = Status::BlockedLock(lock);
            self.choose_next(&mut g);
            self.wait_for_baton(me, g);
        }
    }

    /// Release shim lock `lock` and wake its waiters (they re-contend at
    /// their next scheduling).
    fn lock_release(&self, lock: usize) {
        let mut g = self.locked();
        g.locks[lock] = false;
        for t in 0..g.statuses.len() {
            if g.statuses[t] == Status::BlockedLock(lock) {
                g.statuses[t] = Status::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// Block the caller until thread `target` finishes.
    fn join_wait(&self, me: usize, target: usize) {
        loop {
            let mut g = self.locked();
            if g.abort {
                drop(g);
                std::panic::panic_any(Abort);
            }
            if g.statuses[target] == Status::Finished {
                return;
            }
            g.statuses[me] = Status::BlockedJoin(target);
            self.choose_next(&mut g);
            self.wait_for_baton(me, g);
        }
    }

    /// Mark the caller finished, wake joiners, and hand the baton on.
    fn finish(&self, me: usize) {
        let mut g = self.locked();
        g.statuses[me] = Status::Finished;
        g.active -= 1;
        for t in 0..g.statuses.len() {
            if g.statuses[t] == Status::BlockedJoin(me) {
                g.statuses[t] = Status::Runnable;
            }
        }
        if g.active > 0 {
            self.choose_next(&mut g);
        } else {
            self.cv.notify_all();
        }
    }

    /// Record the first real failure of this execution and abort it.
    fn record_failure(&self, msg: String) {
        let mut g = self.locked();
        if g.failure.is_none() {
            let trace: Vec<usize> = g.decisions.iter().map(|d| d.chosen).collect();
            g.failure = Some(format!("{msg} (schedule {trace:?})"));
        }
        g.abort = true;
        self.cv.notify_all();
    }
}

/// Best-effort text of a panic payload.
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Given the decisions of the last execution, compute the forced-choice
/// prefix of the next unexplored schedule (classic DFS backtrack), or
/// `None` when the tree is exhausted.
fn next_prefix(decisions: &[Decision]) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        let d = decisions[i];
        if d.chosen + 1 < d.options {
            let mut p: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
            p.push(d.chosen + 1);
            return Some(p);
        }
    }
    None
}

/// Explore every interleaving of the instrumented operations in `f`,
/// re-running it once per schedule. Panics (with the failing decision
/// trace) if any schedule panics inside `f` or deadlocks.
///
/// The closure must build all of its shim state (mutexes, atomics,
/// threads) inside itself so each execution starts fresh.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(ctx().is_none(), "nested loom::model is not supported");
    let cap = std::env::var("LOOM_MAX_SCHEDULES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(MAX_SCHEDULES);
    let f = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        let sched = Arc::new(Scheduler::new(std::mem::take(&mut prefix)));
        let root = sched.register_thread();
        debug_assert_eq!(root, 0);
        let sched_for_root = Arc::clone(&sched);
        let body = Arc::clone(&f);
        let handle = std::thread::spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched_for_root), root)));
            let result = catch_unwind(AssertUnwindSafe(|| body()));
            if let Err(payload) = result {
                if payload.downcast_ref::<Abort>().is_none() {
                    sched_for_root.record_failure(format!(
                        "model thread 0 panicked: {}",
                        payload_text(payload.as_ref())
                    ));
                }
            }
            sched_for_root.finish(root);
        });
        // Wait for every model thread of this execution to finish.
        let (decisions, failure) = {
            let mut g = sched.locked();
            while g.active > 0 {
                g = sched.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            (std::mem::take(&mut g.decisions), g.failure.take())
        };
        let _ = handle.join();
        if let Some(msg) = failure {
            panic!("loom model failed after {schedules} schedule(s): {msg}");
        }
        match next_prefix(&decisions) {
            Some(p) if schedules < cap => prefix = p,
            Some(_) => {
                eprintln!(
                    "loom shim: schedule cap {cap} reached; exploration truncated \
                     (set LOOM_MAX_SCHEDULES to raise it)"
                );
                break;
            }
            None => break,
        }
    }
}

/// Thread spawning and joining, instrumented as scheduling points inside a
/// model and delegating to `std::thread` outside one.
pub mod thread {
    use super::*;

    enum HandleKind<T> {
        /// Passthrough: a real `std::thread` handle.
        Std(std::thread::JoinHandle<T>),
        /// Model thread: the OS handle plus the model thread id to wait on.
        Model {
            handle: std::thread::JoinHandle<Option<T>>,
            tid: usize,
            sched: Arc<Scheduler>,
        },
    }

    /// Owned permission to join on a (model or passthrough) thread.
    pub struct JoinHandle<T>(HandleKind<T>);

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish, returning its result. Inside a
        /// model this is a blocking scheduling point.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                HandleKind::Std(h) => h.join(),
                HandleKind::Model { handle, tid, sched } => {
                    let me = ctx().map(|(_, me)| me).expect(
                        "joining a loom model thread from outside its model is not supported",
                    );
                    sched.join_wait(me, tid);
                    match handle.join() {
                        Ok(Some(v)) => Ok(v),
                        // The thread unwound; the model is aborting, so
                        // tear this thread down as well.
                        _ => std::panic::panic_any(Abort),
                    }
                }
            }
        }
    }

    /// Spawn a thread. Inside a model the child participates in schedule
    /// exploration; outside it delegates to `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            None => JoinHandle(HandleKind::Std(std::thread::spawn(f))),
            Some((sched, me)) => {
                let tid = sched.register_thread();
                let child_sched = Arc::clone(&sched);
                let handle = std::thread::spawn(move || {
                    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&child_sched), tid)));
                    // Wait to be scheduled for the first time.
                    let g = child_sched.locked();
                    let first = catch_unwind(AssertUnwindSafe(|| {
                        child_sched.wait_for_baton(tid, g);
                        f()
                    }));
                    let out = match first {
                        Ok(v) => Some(v),
                        Err(payload) => {
                            if payload.downcast_ref::<Abort>().is_none() {
                                child_sched.record_failure(format!(
                                    "model thread {tid} panicked: {}",
                                    payload_text(payload.as_ref())
                                ));
                            }
                            None
                        }
                    };
                    child_sched.finish(tid);
                    out
                });
                // Let the child (or anyone else) run before the spawner's
                // next operation — spawning is itself a visible event.
                sched.yield_point(me);
                JoinHandle(HandleKind::Model { handle, tid, sched })
            }
        }
    }

    /// Explicit scheduling point (no-op outside a model).
    pub fn yield_now() {
        if let Some((sched, me)) = ctx() {
            sched.yield_point(me);
        }
    }
}

/// Instrumented `std::sync` subset: `Mutex`, `Arc` (re-export) and the
/// atomic integer types used by the workspace.
pub mod sync {
    use super::*;
    pub use std::sync::Arc;

    /// A mutex that is a scheduling point inside a model and a plain
    /// `std::sync::Mutex` outside one.
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
        /// Model lock id, assigned lazily on first model-context lock of
        /// each execution (ids reset between executions because models
        /// rebuild their state each run).
        id: std::sync::atomic::AtomicUsize,
    }

    const LOCK_UNREGISTERED: usize = usize::MAX;

    /// An RAII guard over the shim mutex; releases the model-level lock
    /// (waking blocked model threads) on drop.
    pub struct MutexGuard<'a, T> {
        guard: Option<std::sync::MutexGuard<'a, T>>,
        model: Option<(Arc<Scheduler>, usize)>,
    }

    impl<T> Mutex<T> {
        /// Create a new mutex holding `value`.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: std::sync::Mutex::new(value),
                id: std::sync::atomic::AtomicUsize::new(LOCK_UNREGISTERED),
            }
        }

        /// Acquire the mutex, blocking the calling (model) thread until it
        /// is free. Returns the same `LockResult` shape as `std`.
        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            match ctx() {
                None => match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        guard: Some(g),
                        model: None,
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        guard: Some(poisoned.into_inner()),
                        model: None,
                    })),
                },
                Some((sched, me)) => {
                    use std::sync::atomic::Ordering as O;
                    // lint: allow(atomics-audit, lazy lock-id registration; reads and writes happen inside the serialized scheduler baton)
                    let mut id = self.id.load(O::Relaxed);
                    if id == LOCK_UNREGISTERED {
                        id = sched.register_lock();
                        // lint: allow(atomics-audit, written under the serialized scheduler baton; no concurrent access by construction)
                        self.id.store(id, O::Relaxed);
                    }
                    sched.lock_acquire(me, id);
                    // Model-level exclusion holds, so the std lock is
                    // uncontended; a poisoned state can only be left over
                    // from an aborted schedule — recover it.
                    let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        guard: Some(g),
                        model: Some((sched, id)),
                    })
                }
            }
        }
    }

    impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_deref().expect("guard present until drop")
        }
    }

    impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.guard.as_deref_mut().expect("guard present until drop")
        }
    }

    impl<'a, T> Drop for MutexGuard<'a, T> {
        fn drop(&mut self) {
            // Release the std lock before the model-level lock so no other
            // model thread can observe the std mutex still held.
            self.guard = None;
            if let Some((sched, id)) = self.model.take() {
                sched.lock_release(id);
            }
        }
    }

    /// Atomic integer types whose every operation is a scheduling point
    /// inside a model. Memory effects are sequentially consistent — the
    /// shim explores interleavings, not weak-memory reorderings.
    pub mod atomic {
        use super::super::ctx;
        pub use std::sync::atomic::Ordering;

        fn interleave() {
            if let Some((sched, me)) = ctx() {
                sched.yield_point(me);
            }
        }

        macro_rules! shim_atomic {
            ($name:ident, $std:ty, $int:ty) => {
                /// Instrumented atomic: delegates to the `std` atomic,
                /// adding a model scheduling point before every operation.
                #[derive(Debug, Default)]
                pub struct $name(pub(crate) $std);

                impl $name {
                    /// Create a new atomic with the given initial value.
                    pub fn new(v: $int) -> $name {
                        $name(<$std>::new(v))
                    }

                    /// Atomic load (scheduling point inside a model).
                    pub fn load(&self, o: Ordering) -> $int {
                        interleave();
                        self.0.load(o)
                    }

                    /// Atomic store (scheduling point inside a model).
                    pub fn store(&self, v: $int, o: Ordering) {
                        interleave();
                        self.0.store(v, o)
                    }

                    /// Atomic fetch-add (scheduling point inside a model).
                    pub fn fetch_add(&self, v: $int, o: Ordering) -> $int {
                        interleave();
                        self.0.fetch_add(v, o)
                    }

                    /// Atomic fetch-sub (scheduling point inside a model).
                    pub fn fetch_sub(&self, v: $int, o: Ordering) -> $int {
                        interleave();
                        self.0.fetch_sub(v, o)
                    }

                    /// Atomic compare-exchange (scheduling point inside a
                    /// model).
                    pub fn compare_exchange(
                        &self,
                        current: $int,
                        new: $int,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$int, $int> {
                        interleave();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        shim_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
        shim_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// Instrumented atomic boolean: delegates to `std`, adding a model
        /// scheduling point before every operation.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Create a new atomic with the given initial value.
            pub fn new(v: bool) -> AtomicBool {
                AtomicBool(std::sync::atomic::AtomicBool::new(v))
            }

            /// Atomic load (scheduling point inside a model).
            pub fn load(&self, o: Ordering) -> bool {
                interleave();
                self.0.load(o)
            }

            /// Atomic store (scheduling point inside a model).
            pub fn store(&self, v: bool, o: Ordering) {
                interleave();
                self.0.store(v, o)
            }

            /// Atomic swap (scheduling point inside a model).
            pub fn swap(&self, v: bool, o: Ordering) -> bool {
                interleave();
                self.0.swap(v, o)
            }

            /// Atomic compare-exchange (scheduling point inside a model).
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                success: Ordering,
                failure: Ordering,
            ) -> Result<bool, bool> {
                interleave();
                self.0.compare_exchange(current, new, success, failure)
            }
        }
    }
}

/// `hint` module parity with loom (spin loops inside models should yield).
pub mod hint {
    /// Scheduling point standing in for `std::hint::spin_loop`.
    pub fn spin_loop() {
        super::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn passthrough_mutex_behaves_like_std() {
        let m = Mutex::new(5);
        *m.lock().expect("unpoisoned") += 1;
        assert_eq!(*m.lock().expect("unpoisoned"), 6);
    }

    #[test]
    fn passthrough_spawn_and_join() {
        let h = super::thread::spawn(|| 41 + 1);
        assert_eq!(h.join().expect("no panic"), 42);
    }

    #[test]
    fn model_explores_mutex_interleavings() {
        // Two incrementers under a mutex always sum to 2.
        super::model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let h = super::thread::spawn(move || {
                *m2.lock().expect("model lock") += 1;
            });
            *m.lock().expect("model lock") += 1;
            h.join().expect("child finishes");
            assert_eq!(*m.lock().expect("model lock"), 2);
        });
    }

    #[test]
    fn model_catches_non_atomic_increment() {
        // A load/store pair is not atomic: some schedule loses an update.
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(AtomicUsize::new(0));
                let a2 = Arc::clone(&a);
                let h = super::thread::spawn(move || {
                    let v = a2.load(Ordering::SeqCst);
                    a2.store(v + 1, Ordering::SeqCst);
                });
                let v = a.load(Ordering::SeqCst);
                a.store(v + 1, Ordering::SeqCst);
                h.join().expect("child finishes");
                assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(result.is_err(), "the lost-update schedule must be found");
    }

    #[test]
    fn model_fetch_add_is_atomic() {
        super::model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let h = super::thread::spawn(move || {
                a2.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            h.join().expect("child finishes");
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn model_reports_deadlock() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = super::thread::spawn(move || {
                    let _ga = a2.lock().expect("model lock");
                    let _gb = b2.lock().expect("model lock");
                });
                let _gb = b.lock().expect("model lock");
                let _ga = a.lock().expect("model lock");
                drop((_gb, _ga));
                h.join().expect("child finishes");
            });
        });
        let msg = result.expect_err("lock-order inversion must deadlock some schedule");
        let text = if let Some(s) = msg.downcast_ref::<String>() {
            s.clone()
        } else {
            String::new()
        };
        assert!(text.contains("deadlock"), "got: {text}");
    }
}
