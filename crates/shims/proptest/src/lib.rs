//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the proptest API its tests use: the [`proptest!`] macro
//! with `#![proptest_config(..)]` and `arg in strategy` bindings, range and
//! collection strategies, `prop_map`, and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in two deliberate ways: cases are
//! generated from a fixed deterministic seed sequence (no persisted
//! failure file), and failing cases are **not shrunk** — the panic reports
//! the case number so the failure can be replayed exactly by rerunning the
//! test.

#![allow(clippy::all, clippy::pedantic, clippy::manual_is_multiple_of)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test-run configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure of a single generated case (created by the `prop_assert*`
/// macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wrap a failure message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG driving value generation for one case.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The RNG for case number `case` (stable across runs and platforms).
    pub fn for_case(case: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(
            0x5EED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Number-of-elements specification for collection strategies.
pub trait SizeRange {
    /// Pick a size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        Strategy::generate(self, rng)
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        Strategy::generate(self, rng)
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` (`None` one time in four).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Namespace mirror of upstream's `prelude::prop` module.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Define property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(cfg.cases) {
                    let mut rng = $crate::TestRng::for_case(case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(err) = outcome {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name), case, cfg.cases, err
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports a case failure instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}", lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                lhs, rhs
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3i64..9, y in 0usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_and_option_strategies(v in prop::collection::vec(prop::option::of(-5i64..5), 1..30)) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            for item in &v {
                if let Some(x) = item {
                    prop_assert!((-5..5).contains(x), "out of range: {}", x);
                }
            }
        }

        #[test]
        fn prop_map_applies(n in (1usize..4).prop_map(|n| n * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }
    }

    #[test]
    #[should_panic(expected = "case 0/5 failed")]
    fn failing_case_reports_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn inner(_x in 0i64..10) {
                prop_assert!(false, "always fails");
            }
        }
        inner();
    }
}
