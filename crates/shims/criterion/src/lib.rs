//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the criterion API its benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` / `throughput` /
//! `bench_function` / `bench_with_input`, and `Bencher::iter`.
//!
//! Measurement is deliberately simple: a short warm-up, then timed batches
//! until a wall-clock budget is spent; the mean ns/iteration (and
//! throughput, when declared) is printed to stdout. `--test` runs every
//! routine exactly once — the smoke mode `ci.sh` uses. There is no
//! statistical analysis, HTML report, or baseline comparison.

#![allow(clippy::all, clippy::pedantic, clippy::manual_is_multiple_of)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units-per-iteration declaration used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with an explicit parameter component.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) => write!(f, "{}/{}", self.name, p),
            None => f.write_str(&self.name),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Test (smoke) mode: run the routine once, skip measurement.
    test_mode: bool,
    /// Measured mean nanoseconds per iteration (filled by `iter`).
    mean_ns: f64,
    measurement: Duration,
}

impl Bencher {
    /// Measure `routine` and record the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and batch-size calibration: grow the batch until it costs
        // at least ~1ms so Instant overhead is negligible.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        // Timed batches until the measurement budget is spent.
        let started = Instant::now();
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while started.elapsed() < self.measurement {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            spent += t.elapsed();
            iters += batch;
        }
        self.mean_ns = spent.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (time budget is fixed).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declare per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            mean_ns: 0.0,
            measurement: self.criterion.measurement,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            mean_ns: 0.0,
            measurement: self.criterion.measurement,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if self.criterion.test_mode {
            println!("test {}/{} ... ok (smoke)", self.name, id);
            return;
        }
        let per_iter = format_ns(b.mean_ns);
        match self.throughput {
            Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
                let rate = n as f64 / (b.mean_ns / 1e9);
                println!(
                    "{}/{}  time: {per_iter}/iter  thrpt: {} elem/s",
                    self.name,
                    id,
                    format_count(rate)
                );
            }
            Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
                let rate = n as f64 / (b.mean_ns / 1e9);
                println!(
                    "{}/{}  time: {per_iter}/iter  thrpt: {}B/s",
                    self.name,
                    id,
                    format_count(rate)
                );
            }
            _ => println!("{}/{}  time: {per_iter}/iter", self.name, id),
        }
    }

    /// End the group (printing happens eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn format_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

/// Entry point object handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
    measurement: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            measurement: Duration::from_millis(400),
            filter: None,
        }
    }
}

impl Criterion {
    /// Build from CLI args: honours `--test` (smoke mode) and a positional
    /// name filter; every other cargo-bench flag is accepted and ignored.
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" => {}
                s if s.starts_with('-') => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Whether `name` passes the CLI filter.
    pub fn matches_filter(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// Group benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Produce a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0u32;
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("once", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measured_mode_fills_mean() {
        let mut c = Criterion {
            test_mode: false,
            measurement: Duration::from_millis(5),
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("sort", 100).to_string(), "sort/100");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
