//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *subset* of the rand API its generators and tests actually use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], integer/float
//! [`RngExt::random_range`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — deterministic for a given seed on every
//! platform, which is all the dataset generators and property tests rely
//! on. It is **not** cryptographically secure and the stream differs from
//! upstream rand's `StdRng`; seeds are only ever compared against outputs
//! produced by this same shim.

#![allow(clippy::all, clippy::pedantic, clippy::manual_is_multiple_of)]

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One SplitMix64 step.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix once so small consecutive seeds give unrelated streams.
            let mut state = seed ^ 0xA076_1D64_78BD_642F;
            let _ = splitmix64(&mut state);
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

/// A range usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % width;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods (rand 0.10 naming).
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_range(0.0..1.0) < p
    }
}

impl<T: RngCore> RngExt for T {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates), as in rand's `SliceRandom`.
    pub trait SliceRandom {
        /// Uniformly permute the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000i64),
                b.random_range(0..1_000_000i64)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(-30..60i64);
            assert!((-30..60).contains(&v));
            let w = rng.random_range(1..=7u64);
            assert!((1..=7).contains(&w));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
