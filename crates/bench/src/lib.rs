//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5). See DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured outcomes.
//!
//! Each experiment is a library function returning a [`report::Report`]
//! (so the test-suite can run it at tiny scale); the `experiments` binary
//! parses CLI flags, calls the functions, prints the report as a markdown
//! table and writes a TSV next to it.

#![warn(missing_docs)]
pub mod approx_triage;
pub mod check_throughput;
pub mod experiments;
pub mod report;

pub use experiments::ExpOptions;
pub use report::Report;
