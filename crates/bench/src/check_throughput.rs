//! Check-throughput harness: candidate-checks/sec per checker backend.
//!
//! The discovery loop spends almost all of its time validating candidates
//! (sort + adjacent scan, §4.3), so this harness isolates exactly that: a
//! fixed check-heavy synthetic workload (12 columns, 100k rows by default)
//! replayed against every backend × cache configuration, including a
//! *seed baseline* that sorts with the generic comparator path instead of
//! the rank-code distribution kernels. The `bench_check` binary writes the
//! results to `BENCH_check.json`; the `check_throughput` criterion bench
//! runs the same workload under criterion for statistical timing.

use ocdd_core::sorted_partitions::PartitionChecker;
use ocdd_core::{AttrList, CacheStats, SharedPrefixCache, SortCache};
use ocdd_datasets::{ColumnSpec, TableSpec};
use ocdd_relation::sort::{cmp_rows, sort_index_by_comparator};
use ocdd_relation::Relation;
use std::cmp::Ordering;
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The check-heavy table: a sorted backbone with two co-monotone chains
/// (so deep candidates stay alive and checks run to completion), plus
/// narrow, wide, constant and key columns covering every sort kernel
/// (counting, packed radix, chained refinement).
pub fn workload_relation(rows: usize, seed: u64) -> Relation {
    TableSpec::new(
        vec![
            ("a", ColumnSpec::SortedInt { distinct: 5_000 }),
            (
                "b",
                ColumnSpec::CoMonotoneWith {
                    source: 0,
                    distinct: 2_000,
                },
            ),
            (
                "c",
                ColumnSpec::CoMonotoneWith {
                    source: 0,
                    distinct: 700,
                },
            ),
            ("d", ColumnSpec::SortedInt { distinct: 250 }),
            (
                "e",
                ColumnSpec::CoMonotoneWith {
                    source: 3,
                    distinct: 90,
                },
            ),
            ("f", ColumnSpec::RandomInt { distinct: 4 }),
            ("g", ColumnSpec::RandomInt { distinct: 64 }),
            ("h", ColumnSpec::RandomInt { distinct: 1_000 }),
            ("i", ColumnSpec::RandomInt { distinct: 30_000 }),
            ("j", ColumnSpec::QuasiConstant { distinct: 3 }),
            ("k", ColumnSpec::Constant(7)),
            ("l", ColumnSpec::Key),
        ],
        rows,
    )
    .generate(seed)
}

/// The candidate workload: BFS-like contexts whose LHS lists share
/// prefixes, exactly the access pattern [`SortCache`]/[`PartitionChecker`]
/// amortize. Every candidate `(x, y)` is replayed as the three checks the
/// search performs per surviving candidate: the OCD check `xy → yx`
/// (Theorem 4.1) and both OD directions `x → y`, `y → x`.
pub fn workload_candidates(num_cols: usize) -> Vec<(AttrList, AttrList)> {
    let mut out = Vec::new();
    // Level-1 contexts: all ordered singleton pairs.
    for a in 0..num_cols {
        for b in (a + 1)..num_cols {
            out.push((AttrList::single(a), AttrList::single(b)));
        }
    }
    // Deeper contexts rooted at the co-monotone chains: extensions of
    // [0], [0,1], [3] — siblings share the sorted prefix.
    for ctx in [vec![0usize], vec![0, 1], vec![3], vec![0, 1, 2]] {
        for a in 0..num_cols {
            if ctx.contains(&a) {
                continue;
            }
            for b in (a + 1)..num_cols {
                if ctx.contains(&b) {
                    continue;
                }
                let mut x = ctx.clone();
                x.push(a);
                let mut y = ctx.clone();
                y.push(b);
                out.push((AttrList::from(x), AttrList::from(y)));
            }
        }
    }
    out
}

/// Number of individual OD checks one candidate expands to.
pub const CHECKS_PER_CANDIDATE: u64 = 3;

/// One backend × cache configuration to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Seed baseline: re-sort per candidate with the generic comparator
    /// sort (the pre-kernel code path, kept as the differential oracle).
    SeedComparator,
    /// Re-sort per candidate with the rank-code distribution kernels.
    ResortRadix,
    /// Worker-private sorted-index prefix cache.
    PrefixCache,
    /// Run-wide [`SharedPrefixCache`] of sorted indexes.
    PrefixCacheShared,
    /// Worker-private sorted partitions (§5.3.1).
    SortedPartitions,
    /// Run-wide shared cache of sorted partitions.
    SortedPartitionsShared,
}

/// A named configuration: backend plus worker count.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Stable identifier written to the JSON report.
    pub name: &'static str,
    /// Which checker backend to drive.
    pub backend: Backend,
    /// Number of worker threads splitting the candidate list.
    pub workers: usize,
}

/// The default configuration matrix measured by the harness.
pub const DEFAULT_SPECS: &[RunSpec] = &[
    RunSpec {
        name: "seed_resort_comparator",
        backend: Backend::SeedComparator,
        workers: 1,
    },
    RunSpec {
        name: "resort_radix",
        backend: Backend::ResortRadix,
        workers: 1,
    },
    RunSpec {
        name: "prefix_cache_private",
        backend: Backend::PrefixCache,
        workers: 1,
    },
    RunSpec {
        name: "prefix_cache_shared_x4",
        backend: Backend::PrefixCacheShared,
        workers: 4,
    },
    RunSpec {
        name: "sorted_partitions_private",
        backend: Backend::SortedPartitions,
        workers: 1,
    },
    RunSpec {
        name: "sorted_partitions_shared_x4",
        backend: Backend::SortedPartitionsShared,
        workers: 4,
    },
];

/// Measured outcome of replaying the workload under one [`RunSpec`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The spec that was run.
    pub spec: RunSpec,
    /// Total individual OD checks performed.
    pub checks: u64,
    /// Wall-clock time for the whole replay.
    pub elapsed: Duration,
    /// Shared-cache statistics, when the backend uses one.
    pub cache: Option<CacheStats>,
    /// How many checks returned `Valid` (a cross-backend sanity datum:
    /// every configuration must agree).
    pub valid: u64,
}

impl RunResult {
    /// Candidate-checks per second.
    pub fn checks_per_sec(&self) -> f64 {
        self.checks as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Seed-baseline OD check: comparator sort + adjacent scan, no caching.
/// Mirrors `check_od` but pins the sort to the comparator path so the
/// measurement isolates the kernel speedup.
fn check_od_comparator(rel: &Relation, lhs: &AttrList, rhs: &AttrList) -> bool {
    let index = sort_index_by_comparator(rel, lhs.as_slice());
    for w in index.windows(2) {
        let (p, q) = (w[0] as usize, w[1] as usize);
        match cmp_rows(rel, rhs.as_slice(), p, q) {
            Ordering::Less => {
                if cmp_rows(rel, lhs.as_slice(), p, q) == Ordering::Equal {
                    return false;
                }
            }
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    true
}

/// The three checks the search performs per candidate, against a closure
/// that validates one OD. Returns the number of `Valid` outcomes.
fn replay<F: FnMut(&AttrList, &AttrList) -> bool>(
    candidates: &[(AttrList, AttrList)],
    mut check: F,
) -> u64 {
    let mut valid = 0u64;
    for (x, y) in candidates {
        let xy = x.concat(y);
        let yx = y.concat(x);
        for (lhs, rhs) in [(&xy, &yx), (x, y), (y, x)] {
            if black_box(check(lhs, rhs)) {
                valid += 1;
            }
        }
    }
    valid
}

/// Split `candidates` round-robin across `workers` threads, each running
/// `make_check` to build its own checker, and sum the `Valid` counts.
fn replay_parallel<C, F>(candidates: &[(AttrList, AttrList)], workers: usize, make_check: C) -> u64
where
    C: Fn() -> F + Sync,
    F: FnMut(&AttrList, &AttrList) -> bool,
{
    if workers <= 1 {
        return replay(candidates, make_check());
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let make_check = &make_check;
                scope.spawn(move || {
                    let mine: Vec<(AttrList, AttrList)> = candidates
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % workers == w)
                        .map(|(_, c)| c.clone())
                        .collect();
                    replay(&mine, make_check())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Replay the full workload under one configuration and time it.
pub fn run_spec(
    rel: &Relation,
    candidates: &[(AttrList, AttrList)],
    spec: RunSpec,
    cache_budget_bytes: usize,
) -> RunResult {
    let start = Instant::now();
    let mut cache_stats = None;
    let valid = match spec.backend {
        Backend::SeedComparator => replay_parallel(candidates, spec.workers, || {
            |x: &AttrList, y: &AttrList| check_od_comparator(rel, x, y)
        }),
        Backend::ResortRadix => replay_parallel(candidates, spec.workers, || {
            |x: &AttrList, y: &AttrList| ocdd_core::check::check_od(rel, x, y).is_valid()
        }),
        Backend::PrefixCache => replay_parallel(candidates, spec.workers, || {
            let mut cache = SortCache::new(rel);
            move |x: &AttrList, y: &AttrList| cache.check_od(x, y).is_valid()
        }),
        Backend::PrefixCacheShared => {
            let shared = Arc::new(SharedPrefixCache::<Vec<u32>>::new(cache_budget_bytes));
            let valid = replay_parallel(candidates, spec.workers, || {
                let mut cache = SortCache::with_shared(rel, Arc::clone(&shared));
                move |x: &AttrList, y: &AttrList| cache.check_od(x, y).is_valid()
            });
            cache_stats = Some(shared.stats());
            valid
        }
        Backend::SortedPartitions => replay_parallel(candidates, spec.workers, || {
            let mut checker = PartitionChecker::new(rel);
            move |x: &AttrList, y: &AttrList| checker.check_od(x, y).is_valid()
        }),
        Backend::SortedPartitionsShared => {
            let shared = Arc::new(SharedPrefixCache::new(cache_budget_bytes));
            let valid = replay_parallel(candidates, spec.workers, || {
                let mut checker = PartitionChecker::with_shared(rel, Arc::clone(&shared));
                move |x: &AttrList, y: &AttrList| checker.check_od(x, y).is_valid()
            });
            cache_stats = Some(shared.stats());
            valid
        }
    };
    let elapsed = start.elapsed();
    RunResult {
        spec,
        checks: candidates.len() as u64 * CHECKS_PER_CANDIDATE,
        elapsed,
        cache: cache_stats,
        valid,
    }
}

/// Run the whole matrix. Every configuration must agree on which checks
/// are valid (asserted), and the first result is the seed baseline.
pub fn run_matrix(
    rel: &Relation,
    candidates: &[(AttrList, AttrList)],
    specs: &[RunSpec],
    cache_budget_bytes: usize,
) -> Vec<RunResult> {
    let results: Vec<RunResult> = specs
        .iter()
        .map(|&spec| run_spec(rel, candidates, spec, cache_budget_bytes))
        .collect();
    if let Some(first) = results.first() {
        for r in &results[1..] {
            assert_eq!(
                first.valid, r.valid,
                "backend {:?} disagrees with {:?} on check outcomes",
                r.spec.backend, first.spec.backend
            );
        }
    }
    results
}

/// Serialize the matrix to the `BENCH_check.json` schema:
///
/// ```json
/// {
///   "rows": 100000, "columns": 12, "candidates": 262, "checks_per_candidate": 3,
///   "configs": [
///     {"name": "seed_resort_comparator", "workers": 1, "checks": 786,
///      "elapsed_ms": 1234.5, "checks_per_sec": 636.7, "speedup_vs_seed": 1.0,
///      "cache": {"hits": 0, "misses": 0, "evictions": 0, "resident_bytes": 0}}
///   ]
/// }
/// ```
///
/// `cache` is `null` for configurations without a shared cache;
/// `speedup_vs_seed` is relative to the first (seed-baseline) entry.
pub fn matrix_to_json(rel: &Relation, candidates_len: usize, results: &[RunResult]) -> String {
    let seed_cps = results.first().map_or(0.0, RunResult::checks_per_sec);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"rows\": {}, \"columns\": {}, \"candidates\": {}, \"checks_per_candidate\": {},\n  \"configs\": [",
        rel.num_rows(),
        rel.num_columns(),
        candidates_len,
        CHECKS_PER_CANDIDATE,
    );
    for (i, r) in results.iter().enumerate() {
        let cache = match &r.cache {
            Some(c) => format!(
                "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"resident_bytes\": {}, \"entries\": {}}}",
                c.hits, c.misses, c.evictions, c.resident_bytes, c.entries
            ),
            None => "null".to_owned(),
        };
        let _ = write!(
            out,
            "{}\n    {{\"name\": \"{}\", \"workers\": {}, \"checks\": {}, \"elapsed_ms\": {:.3}, \"checks_per_sec\": {:.1}, \"speedup_vs_seed\": {:.3}, \"cache\": {}}}",
            if i == 0 { "" } else { "," },
            r.spec.name,
            r.spec.workers,
            r.checks,
            r.elapsed.as_secs_f64() * 1e3,
            r.checks_per_sec(),
            if seed_cps > 0.0 {
                r.checks_per_sec() / seed_cps
            } else {
                0.0
            },
            cache,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full matrix at tiny scale: all backends agree and the JSON has
    /// the advertised fields.
    #[test]
    fn tiny_matrix_agrees_and_serializes() {
        let rel = workload_relation(400, 11);
        let candidates = workload_candidates(rel.num_columns());
        assert!(candidates.len() > 100, "workload too small");
        let results = run_matrix(&rel, &candidates, DEFAULT_SPECS, 64 << 20);
        assert_eq!(results.len(), DEFAULT_SPECS.len());
        for r in &results {
            assert_eq!(r.checks, candidates.len() as u64 * CHECKS_PER_CANDIDATE);
            assert!(r.checks_per_sec() > 0.0);
        }
        // Shared configurations expose cache stats; private ones do not.
        assert!(results[3].cache.is_some());
        assert!(results[0].cache.is_none());
        let json = matrix_to_json(&rel, candidates.len(), &results);
        for needle in [
            "\"rows\": 400",
            "\"columns\": 12",
            "seed_resort_comparator",
            "prefix_cache_shared_x4",
            "\"speedup_vs_seed\"",
            "\"resident_bytes\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    /// The comparator baseline agrees with the kernel checker per check.
    #[test]
    fn seed_baseline_matches_kernel_checker() {
        let rel = workload_relation(300, 7);
        for (x, y) in workload_candidates(rel.num_columns()).iter().take(40) {
            let xy = x.concat(y);
            let yx = y.concat(x);
            assert_eq!(
                check_od_comparator(&rel, &xy, &yx),
                ocdd_core::check::check_od(&rel, &xy, &yx).is_valid(),
                "{x} ~ {y}"
            );
        }
    }
}
