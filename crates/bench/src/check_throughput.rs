//! Check-throughput harness: candidate-checks/sec per checker backend,
//! swept across worker counts.
//!
//! The discovery loop spends almost all of its time validating candidates
//! (sort + adjacent scan, §4.3), so this harness isolates exactly that: a
//! fixed check-heavy synthetic workload (12 columns, 100k rows by default)
//! replayed against every backend × worker-count configuration, including
//! a *seed baseline* that sorts with the generic comparator path instead
//! of the rank-code distribution kernels.
//!
//! Multi-worker configurations are measured with the same level-synchronous
//! schedule the `WorkStealing` discovery mode uses: each BFS level's
//! candidates are grouped into batches sharing a sort-key prefix, batches
//! are dealt round-robin across workers, and epoch caches publish between
//! levels. Because this host may have fewer cores than workers, the
//! reported `elapsed` is the schedule's *critical path* — per level, the
//! busiest worker's time (each worker's share is run and timed
//! sequentially), summed across levels plus the driver's publish time.
//! This models level-synchronous parallel wall-clock independently of the
//! host's core count; `wall` keeps the actual single-host measurement
//! time. The `bench_check` binary writes the results to
//! `BENCH_check.json`; the `check_throughput` criterion bench runs the
//! same workload under criterion for statistical timing.

use ocdd_core::sorted_partitions::{PartitionChecker, SortedPartition};
use ocdd_core::{AttrList, CacheStats, EpochPrefixCache, SortCache};
use ocdd_datasets::{ColumnSpec, TableSpec};
use ocdd_relation::sort::{cmp_rows, sort_index_by_comparator};
use ocdd_relation::{ColumnId, Relation};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The check-heavy table: a sorted backbone with two co-monotone chains
/// (so deep candidates stay alive and checks run to completion), plus
/// narrow, wide, constant and key columns covering every sort kernel
/// (counting, packed radix, chained refinement).
pub fn workload_relation(rows: usize, seed: u64) -> Relation {
    TableSpec::new(
        vec![
            ("a", ColumnSpec::SortedInt { distinct: 5_000 }),
            (
                "b",
                ColumnSpec::CoMonotoneWith {
                    source: 0,
                    distinct: 2_000,
                },
            ),
            (
                "c",
                ColumnSpec::CoMonotoneWith {
                    source: 0,
                    distinct: 700,
                },
            ),
            ("d", ColumnSpec::SortedInt { distinct: 250 }),
            (
                "e",
                ColumnSpec::CoMonotoneWith {
                    source: 3,
                    distinct: 90,
                },
            ),
            ("f", ColumnSpec::RandomInt { distinct: 4 }),
            ("g", ColumnSpec::RandomInt { distinct: 64 }),
            ("h", ColumnSpec::RandomInt { distinct: 1_000 }),
            ("i", ColumnSpec::RandomInt { distinct: 30_000 }),
            ("j", ColumnSpec::QuasiConstant { distinct: 3 }),
            ("k", ColumnSpec::Constant(7)),
            ("l", ColumnSpec::Key),
        ],
        rows,
    )
    .generate(seed)
}

/// The candidate workload: BFS-like contexts whose LHS lists share
/// prefixes, exactly the access pattern [`SortCache`]/[`PartitionChecker`]
/// amortize. Every candidate `(x, y)` is replayed as the three checks the
/// search performs per surviving candidate: the OCD check `xy → yx`
/// (Theorem 4.1) and both OD directions `x → y`, `y → x`.
pub fn workload_candidates(num_cols: usize) -> Vec<(AttrList, AttrList)> {
    let mut out = Vec::new();
    // Level-1 contexts: all ordered singleton pairs.
    for a in 0..num_cols {
        for b in (a + 1)..num_cols {
            out.push((AttrList::single(a), AttrList::single(b)));
        }
    }
    // Deeper contexts rooted at the co-monotone chains: extensions of
    // [0], [0,1], [3] — siblings share the sorted prefix.
    for ctx in [vec![0usize], vec![0, 1], vec![3], vec![0, 1, 2]] {
        for a in 0..num_cols {
            if ctx.contains(&a) {
                continue;
            }
            for b in (a + 1)..num_cols {
                if ctx.contains(&b) {
                    continue;
                }
                let mut x = ctx.clone();
                x.push(a);
                let mut y = ctx.clone();
                y.push(b);
                out.push((AttrList::from(x), AttrList::from(y)));
            }
        }
    }
    out
}

/// Group candidate indexes into BFS levels by LHS length, shortest first —
/// the level-synchronous structure the discovery search walks.
pub fn workload_levels(candidates: &[(AttrList, AttrList)]) -> Vec<Vec<usize>> {
    let mut by_len: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, (x, _)) in candidates.iter().enumerate() {
        by_len.entry(x.as_slice().len()).or_default().push(i);
    }
    by_len.into_values().collect()
}

/// Group one level's candidates into batches sharing the same sort-key
/// prefix `x`, in first-appearance order — the same grouping the core
/// work-stealing scheduler distributes.
pub fn prefix_batches(candidates: &[(AttrList, AttrList)], level: &[usize]) -> Vec<Vec<usize>> {
    let mut batches: Vec<Vec<usize>> = Vec::new();
    let mut pos: HashMap<&[ColumnId], usize> = HashMap::new();
    for &i in level {
        let key = candidates[i].0.as_slice();
        let b = *pos.entry(key).or_insert_with(|| {
            batches.push(Vec::new());
            batches.len() - 1
        });
        batches[b].push(i);
    }
    batches
}

/// Number of individual OD checks one candidate expands to.
pub const CHECKS_PER_CANDIDATE: u64 = 3;

/// One checker backend to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Seed baseline: re-sort per candidate with the generic comparator
    /// sort (the pre-kernel code path, kept as the differential oracle).
    SeedComparator,
    /// Re-sort per candidate with the rank-code distribution kernels and
    /// the per-pair scalar scan — pinned to the pre-blockwise scan path so
    /// the config's history stays comparable across reports.
    ResortRadix,
    /// Re-sort per candidate with the rank-code distribution kernels and
    /// the dispatched blockwise/SIMD scan (the production `check_od`
    /// path). The delta against [`Backend::ResortRadix`] isolates the
    /// scan-kernel speedup at identical sort cost.
    ResortRadixBlock,
    /// Worker-private sorted-index prefix cache.
    PrefixCache,
    /// Sorted-index prefix cache backed by an epoch-published shared
    /// store ([`EpochPrefixCache`]): snapshot reads, publish per level —
    /// the work-stealing mode's cache design.
    PrefixCacheEpoch,
    /// Worker-private sorted partitions (§5.3.1) with the dispatched
    /// blockwise/SIMD class walk.
    SortedPartitions,
    /// Worker-private sorted partitions pinned to the scalar class walk —
    /// the ablation partner of [`Backend::SortedPartitions`]: the pair
    /// isolates the blockwise-walk speedup at identical partition cost.
    SortedPartitionsScalar,
    /// Sorted partitions backed by an epoch-published shared store.
    SortedPartitionsEpoch,
}

/// A named configuration: backend plus worker count.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Stable identifier written to the JSON report.
    pub name: &'static str,
    /// Which checker backend to drive.
    pub backend: Backend,
    /// Number of workers the level's prefix batches are dealt across.
    pub workers: usize,
}

/// The default configuration matrix: every backend at one worker, and the
/// parallel-friendly backends swept across 1/2/4/8 workers so the report
/// carries `speedup_vs_1worker` per backend.
pub const DEFAULT_SPECS: &[RunSpec] = &[
    RunSpec {
        name: "seed_resort_comparator",
        backend: Backend::SeedComparator,
        workers: 1,
    },
    RunSpec {
        name: "resort_radix_x1",
        backend: Backend::ResortRadix,
        workers: 1,
    },
    RunSpec {
        name: "resort_radix_x2",
        backend: Backend::ResortRadix,
        workers: 2,
    },
    RunSpec {
        name: "resort_radix_x4",
        backend: Backend::ResortRadix,
        workers: 4,
    },
    RunSpec {
        name: "resort_radix_x8",
        backend: Backend::ResortRadix,
        workers: 8,
    },
    RunSpec {
        name: "resort_radix_block_x1",
        backend: Backend::ResortRadixBlock,
        workers: 1,
    },
    RunSpec {
        name: "resort_radix_block_x2",
        backend: Backend::ResortRadixBlock,
        workers: 2,
    },
    RunSpec {
        name: "resort_radix_block_x4",
        backend: Backend::ResortRadixBlock,
        workers: 4,
    },
    RunSpec {
        name: "resort_radix_block_x8",
        backend: Backend::ResortRadixBlock,
        workers: 8,
    },
    RunSpec {
        name: "prefix_cache_private",
        backend: Backend::PrefixCache,
        workers: 1,
    },
    RunSpec {
        name: "prefix_cache_epoch_x1",
        backend: Backend::PrefixCacheEpoch,
        workers: 1,
    },
    RunSpec {
        name: "prefix_cache_epoch_x2",
        backend: Backend::PrefixCacheEpoch,
        workers: 2,
    },
    RunSpec {
        name: "prefix_cache_epoch_x4",
        backend: Backend::PrefixCacheEpoch,
        workers: 4,
    },
    RunSpec {
        name: "prefix_cache_epoch_x8",
        backend: Backend::PrefixCacheEpoch,
        workers: 8,
    },
    RunSpec {
        name: "sorted_partitions_private",
        backend: Backend::SortedPartitions,
        workers: 1,
    },
    RunSpec {
        name: "sorted_partitions_scalar_x1",
        backend: Backend::SortedPartitionsScalar,
        workers: 1,
    },
    RunSpec {
        name: "sorted_partitions_epoch_x1",
        backend: Backend::SortedPartitionsEpoch,
        workers: 1,
    },
    RunSpec {
        name: "sorted_partitions_epoch_x2",
        backend: Backend::SortedPartitionsEpoch,
        workers: 2,
    },
    RunSpec {
        name: "sorted_partitions_epoch_x4",
        backend: Backend::SortedPartitionsEpoch,
        workers: 4,
    },
    RunSpec {
        name: "sorted_partitions_epoch_x8",
        backend: Backend::SortedPartitionsEpoch,
        workers: 8,
    },
];

/// Measured outcome of replaying the workload under one [`RunSpec`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The spec that was run.
    pub spec: RunSpec,
    /// Total individual OD checks performed.
    pub checks: u64,
    /// Modeled level-synchronous elapsed time: per level, the busiest
    /// worker's sequentially-measured share, summed across levels plus
    /// driver publish time. Equals single-worker wall time when
    /// `workers == 1`.
    pub elapsed: Duration,
    /// Actual wall-clock time spent measuring this configuration (every
    /// worker's share runs sequentially on this host).
    pub wall: Duration,
    /// Shared-cache statistics, when the backend uses an epoch cache.
    pub cache: Option<CacheStats>,
    /// How many checks returned `Valid` (a cross-backend sanity datum:
    /// every configuration must agree).
    pub valid: u64,
}

impl RunResult {
    /// Candidate-checks per second at the modeled elapsed time.
    pub fn checks_per_sec(&self) -> f64 {
        self.checks as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Seed-baseline OD check: comparator sort + adjacent scan, no caching.
/// Mirrors `check_od` but pins the sort to the comparator path so the
/// measurement isolates the kernel speedup.
fn check_od_comparator(rel: &Relation, lhs: &AttrList, rhs: &AttrList) -> bool {
    let index = sort_index_by_comparator(rel, lhs.as_slice());
    for w in index.windows(2) {
        let (p, q) = (w[0] as usize, w[1] as usize);
        match cmp_rows(rel, rhs.as_slice(), p, q) {
            Ordering::Less => {
                if cmp_rows(rel, lhs.as_slice(), p, q) == Ordering::Equal {
                    return false;
                }
            }
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    true
}

/// One worker's checker state, kept across levels like the core
/// scheduler's persistent per-worker checkers.
enum WorkerChecker<'r> {
    Comparator(&'r Relation),
    Radix(&'r Relation),
    RadixBlock(&'r Relation),
    Sort(Box<SortCache<'r>>),
    Parts(Box<PartitionChecker<'r>>),
    PartsScalar(&'r Relation, Box<PartitionChecker<'r>>),
}

impl<'r> WorkerChecker<'r> {
    fn begin_level(&mut self) {
        match self {
            WorkerChecker::Sort(c) => c.begin_level(),
            WorkerChecker::Parts(c) => c.begin_level(),
            WorkerChecker::PartsScalar(_, c) => c.begin_level(),
            _ => {}
        }
    }

    fn publish_pending(&mut self) {
        match self {
            WorkerChecker::Sort(c) => c.publish_pending(),
            WorkerChecker::Parts(c) => c.publish_pending(),
            WorkerChecker::PartsScalar(_, c) => c.publish_pending(),
            _ => {}
        }
    }

    fn check(&mut self, lhs: &AttrList, rhs: &AttrList) -> bool {
        match self {
            WorkerChecker::Comparator(rel) => check_od_comparator(rel, lhs, rhs),
            WorkerChecker::Radix(rel) => {
                ocdd_core::check::check_od_scalar(rel, lhs, rhs).is_valid()
            }
            WorkerChecker::RadixBlock(rel) => ocdd_core::check::check_od(rel, lhs, rhs).is_valid(),
            WorkerChecker::Sort(c) => c.check_od(lhs, rhs).is_valid(),
            WorkerChecker::Parts(c) => c.check_od(lhs, rhs).is_valid(),
            WorkerChecker::PartsScalar(rel, c) => c
                .partition_for(lhs.as_slice())
                .check_od_scalar(rel, rhs)
                .is_valid(),
        }
    }
}

/// The three checks the search performs per candidate. Returns the number
/// of `Valid` outcomes.
fn replay_candidate(checker: &mut WorkerChecker<'_>, x: &AttrList, y: &AttrList) -> u64 {
    let xy = x.concat(y);
    let yx = y.concat(x);
    let mut valid = 0u64;
    for (lhs, rhs) in [(&xy, &yx), (x, y), (y, x)] {
        if black_box(checker.check(lhs, rhs)) {
            valid += 1;
        }
    }
    valid
}

/// Replay the full workload under one configuration with the
/// level-synchronous schedule and report the critical-path time.
pub fn run_spec(
    rel: &Relation,
    candidates: &[(AttrList, AttrList)],
    spec: RunSpec,
    cache_budget_bytes: usize,
) -> RunResult {
    let workers = spec.workers.max(1);
    let wall_start = Instant::now();

    let mut sort_epoch: Option<Arc<EpochPrefixCache<Vec<u32>>>> = None;
    let mut parts_epoch: Option<Arc<EpochPrefixCache<SortedPartition>>> = None;
    let mut checkers: Vec<WorkerChecker<'_>> = (0..workers)
        .map(|_| match spec.backend {
            Backend::SeedComparator => WorkerChecker::Comparator(rel),
            Backend::ResortRadix => WorkerChecker::Radix(rel),
            Backend::ResortRadixBlock => WorkerChecker::RadixBlock(rel),
            Backend::PrefixCache => WorkerChecker::Sort(Box::new(SortCache::new(rel))),
            Backend::PrefixCacheEpoch => {
                let shared = sort_epoch
                    .get_or_insert_with(|| Arc::new(EpochPrefixCache::new(cache_budget_bytes)));
                WorkerChecker::Sort(Box::new(SortCache::with_epoch(rel, Arc::clone(shared))))
            }
            Backend::SortedPartitions => WorkerChecker::Parts(Box::new(PartitionChecker::new(rel))),
            Backend::SortedPartitionsScalar => {
                WorkerChecker::PartsScalar(rel, Box::new(PartitionChecker::new(rel)))
            }
            Backend::SortedPartitionsEpoch => {
                let shared = parts_epoch
                    .get_or_insert_with(|| Arc::new(EpochPrefixCache::new(cache_budget_bytes)));
                WorkerChecker::Parts(Box::new(PartitionChecker::with_epoch(
                    rel,
                    Arc::clone(shared),
                )))
            }
        })
        .collect();

    let mut valid = 0u64;
    let mut modeled = Duration::ZERO;
    for level in workload_levels(candidates) {
        let batches = prefix_batches(candidates, &level);
        // Run each worker's round-robin share of the batches sequentially
        // and keep the busiest worker's time: the level's critical path.
        let mut critical = Duration::ZERO;
        for (w, checker) in checkers.iter_mut().enumerate() {
            checker.begin_level();
            let busy_start = Instant::now();
            for (b, batch) in batches.iter().enumerate() {
                if b % workers != w {
                    continue;
                }
                for &i in batch {
                    let (x, y) = &candidates[i];
                    valid += replay_candidate(checker, x, y);
                }
            }
            critical = critical.max(busy_start.elapsed());
        }
        // The driver publishes every worker's buffered inserts between
        // levels, in worker order — serialized, so it counts fully.
        let publish_start = Instant::now();
        for checker in checkers.iter_mut() {
            checker.publish_pending();
        }
        modeled += critical + publish_start.elapsed();
    }

    let cache = sort_epoch
        .map(|c| c.stats())
        .or_else(|| parts_epoch.map(|c| c.stats()));
    RunResult {
        spec,
        checks: candidates.len() as u64 * CHECKS_PER_CANDIDATE,
        elapsed: modeled,
        wall: wall_start.elapsed(),
        cache,
        valid,
    }
}

/// Run the whole matrix, keeping the best (lowest modeled elapsed) of
/// `reps` repetitions per configuration — single-run noise on a shared
/// host would otherwise dominate the worker-scaling ratios. Every
/// configuration must agree on which checks are valid (asserted), and
/// the first result is the seed baseline.
pub fn run_matrix(
    rel: &Relation,
    candidates: &[(AttrList, AttrList)],
    specs: &[RunSpec],
    cache_budget_bytes: usize,
    reps: usize,
) -> Vec<RunResult> {
    let results: Vec<RunResult> = specs
        .iter()
        .map(|&spec| {
            let mut best = run_spec(rel, candidates, spec, cache_budget_bytes);
            for _ in 1..reps.max(1) {
                let r = run_spec(rel, candidates, spec, cache_budget_bytes);
                assert_eq!(r.valid, best.valid, "{}: unstable outcomes", spec.name);
                if r.elapsed < best.elapsed {
                    best = r;
                }
            }
            best
        })
        .collect();
    if let Some(first) = results.first() {
        for r in &results[1..] {
            assert_eq!(
                first.valid, r.valid,
                "config {} disagrees with {} on check outcomes",
                r.spec.name, first.spec.name
            );
        }
    }
    results
}

/// CPU feature flags the scan kernels care about, as detected on this
/// host. Empty on non-x86-64 targets.
#[cfg(target_arch = "x86_64")]
fn detected_cpu_features() -> Vec<&'static str> {
    let mut out = Vec::new();
    for (name, on) in [
        ("sse2", is_x86_feature_detected!("sse2")),
        ("sse4.2", is_x86_feature_detected!("sse4.2")),
        ("avx", is_x86_feature_detected!("avx")),
        ("avx2", is_x86_feature_detected!("avx2")),
    ] {
        if on {
            out.push(name);
        }
    }
    out
}

/// CPU feature flags the scan kernels care about. Empty on non-x86-64
/// targets (the explicit kernels only exist for x86-64).
#[cfg(not(target_arch = "x86_64"))]
fn detected_cpu_features() -> Vec<&'static str> {
    Vec::new()
}

/// Snapshot of the toolchain and host CPU the matrix ran on, as a JSON
/// object — embedded in `BENCH_check.json` so throughput numbers stay
/// interpretable across machines and compiler upgrades.
///
/// Fields: `rustc` (from `rustc --version`, `"unknown"` if unavailable),
/// `cpu_features` (detected x86-64 flags the kernels dispatch on),
/// `simd_feature` (whether the `simd` cargo feature was compiled in) and
/// `block_kernel` (which large-scan kernel [`ocdd_relation::scan`]
/// selects in this build: `"block"` or `"simd"`).
pub fn environment_json() -> String {
    let rustc =
        std::process::Command::new(std::env::var_os("RUSTC").unwrap_or_else(|| "rustc".into()))
            .arg("--version")
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().replace(['"', '\\'], "_"))
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned());
    let features: Vec<String> = detected_cpu_features()
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect();
    let block = match ocdd_relation::scan::block_kernel() {
        ocdd_relation::scan::ScanKernel::Simd => "simd",
        _ => "block",
    };
    format!(
        "{{\"rustc\": \"{}\", \"cpu_features\": [{}], \"simd_feature\": {}, \"block_kernel\": \"{}\"}}",
        rustc,
        features.join(", "),
        cfg!(feature = "simd"),
        block,
    )
}

/// The same-backend single-worker baseline for `r`, if the matrix has one.
fn one_worker_baseline<'a>(results: &'a [RunResult], r: &RunResult) -> Option<&'a RunResult> {
    results
        .iter()
        .find(|b| b.spec.backend == r.spec.backend && b.spec.workers == 1)
}

/// Serialize the matrix to the `BENCH_check.json` schema:
///
/// ```json
/// {
///   "rows": 100000, "columns": 12, "candidates": 262, "checks_per_candidate": 3,
///   "parallel_model": "level_synchronous_critical_path",
///   "environment": {"rustc": "rustc 1.95.0 (...)", "cpu_features": ["sse2", "avx2"],
///                   "simd_feature": false, "block_kernel": "block"},
///   "configs": [
///     {"name": "prefix_cache_epoch_x4", "workers": 4, "checks": 786,
///      "elapsed_ms": 1234.5, "wall_ms": 4800.2, "checks_per_sec": 636.7,
///      "speedup_vs_seed": 4.1, "speedup_vs_1worker": 3.2,
///      "cache": {"hits": 0, "misses": 0, "evictions": 0, "resident_bytes": 0}}
///   ]
/// }
/// ```
///
/// `elapsed_ms` is the modeled level-synchronous critical path (see
/// [`RunResult::elapsed`]); `wall_ms` the actual sequential measurement
/// time. `cache` is `null` for configurations without a shared cache;
/// `speedup_vs_seed` is relative to the first (seed-baseline) entry and
/// `speedup_vs_1worker` to the same backend's single-worker entry.
pub fn matrix_to_json(rel: &Relation, candidates_len: usize, results: &[RunResult]) -> String {
    let seed_cps = results.first().map_or(0.0, RunResult::checks_per_sec);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"rows\": {}, \"columns\": {}, \"candidates\": {}, \"checks_per_candidate\": {},\n  \"parallel_model\": \"level_synchronous_critical_path\",\n  \"environment\": {},\n  \"configs\": [",
        rel.num_rows(),
        rel.num_columns(),
        candidates_len,
        CHECKS_PER_CANDIDATE,
        environment_json(),
    );
    for (i, r) in results.iter().enumerate() {
        let cache = match &r.cache {
            Some(c) => format!(
                "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"resident_bytes\": {}, \"entries\": {}}}",
                c.hits, c.misses, c.evictions, c.resident_bytes, c.entries
            ),
            None => "null".to_owned(),
        };
        let vs_1worker = one_worker_baseline(results, r)
            .map_or(1.0, |b| r.checks_per_sec() / b.checks_per_sec());
        let _ = write!(
            out,
            "{}\n    {{\"name\": \"{}\", \"workers\": {}, \"checks\": {}, \"elapsed_ms\": {:.3}, \"wall_ms\": {:.3}, \"checks_per_sec\": {:.1}, \"speedup_vs_seed\": {:.3}, \"speedup_vs_1worker\": {:.3}, \"cache\": {}}}",
            if i == 0 { "" } else { "," },
            r.spec.name,
            r.spec.workers,
            r.checks,
            r.elapsed.as_secs_f64() * 1e3,
            r.wall.as_secs_f64() * 1e3,
            r.checks_per_sec(),
            if seed_cps > 0.0 {
                r.checks_per_sec() / seed_cps
            } else {
                0.0
            },
            vs_1worker,
            cache,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full matrix at tiny scale: all backends agree and the JSON has
    /// the advertised fields.
    #[test]
    fn tiny_matrix_agrees_and_serializes() {
        let rel = workload_relation(400, 11);
        let candidates = workload_candidates(rel.num_columns());
        assert!(candidates.len() > 100, "workload too small");
        let results = run_matrix(&rel, &candidates, DEFAULT_SPECS, 64 << 20, 1);
        assert_eq!(results.len(), DEFAULT_SPECS.len());
        for r in &results {
            assert_eq!(r.checks, candidates.len() as u64 * CHECKS_PER_CANDIDATE);
            assert!(r.checks_per_sec() > 0.0);
            assert!(r.wall >= r.elapsed || r.spec.workers == 1);
            // Epoch configurations expose cache stats; the rest do not.
            let epoch = matches!(
                r.spec.backend,
                Backend::PrefixCacheEpoch | Backend::SortedPartitionsEpoch
            );
            assert_eq!(r.cache.is_some(), epoch, "{}", r.spec.name);
        }
        let json = matrix_to_json(&rel, candidates.len(), &results);
        for needle in [
            "\"rows\": 400",
            "\"columns\": 12",
            "\"parallel_model\": \"level_synchronous_critical_path\"",
            "seed_resort_comparator",
            "resort_radix_block_x1",
            "prefix_cache_epoch_x4",
            "sorted_partitions_scalar_x1",
            "sorted_partitions_epoch_x8",
            "\"speedup_vs_seed\"",
            "\"speedup_vs_1worker\"",
            "\"wall_ms\"",
            "\"resident_bytes\"",
            "\"environment\"",
            "\"rustc\"",
            "\"cpu_features\"",
            "\"simd_feature\"",
            "\"block_kernel\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    /// The workload decomposes into the BFS structure the scheduler
    /// expects: levels keyed by LHS length, batches keyed by shared
    /// prefix, and every candidate lands in exactly one batch.
    #[test]
    fn workload_levels_and_batches_partition_the_candidates() {
        let candidates = workload_candidates(12);
        let levels = workload_levels(&candidates);
        // LHS lengths 1 ([a]), 2 ([0,a] / [3,a]), 3 ([0,1,a]), 4 ([0,1,2,a]).
        assert_eq!(levels.len(), 4);
        assert_eq!(
            levels.iter().map(Vec::len).sum::<usize>(),
            candidates.len(),
            "levels partition the workload"
        );
        let mut total = 0usize;
        for level in &levels {
            let batches = prefix_batches(&candidates, level);
            assert!(!batches.is_empty());
            for batch in &batches {
                let key = candidates[batch[0]].0.as_slice();
                assert!(batch.iter().all(|&i| candidates[i].0.as_slice() == key));
            }
            total += batches.iter().map(Vec::len).sum::<usize>();
        }
        assert_eq!(total, candidates.len(), "batches partition every level");
        // Level 1: singletons [a] for a = 0..11 each pair up with some
        // b > a, so 11 distinct prefixes.
        assert_eq!(prefix_batches(&candidates, &levels[0]).len(), 11);
    }

    /// The comparator baseline agrees with the kernel checker per check.
    #[test]
    fn seed_baseline_matches_kernel_checker() {
        let rel = workload_relation(300, 7);
        for (x, y) in workload_candidates(rel.num_columns()).iter().take(40) {
            let xy = x.concat(y);
            let yx = y.concat(x);
            assert_eq!(
                check_od_comparator(&rel, &xy, &yx),
                ocdd_core::check::check_od(&rel, &xy, &yx).is_valid(),
                "{x} ~ {y}"
            );
        }
    }
}
