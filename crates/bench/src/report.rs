//! Tabular experiment reports: markdown rendering and TSV export.

use std::fmt::Write as _;
use std::path::Path;

/// A simple rectangular report: a title, column headers and string rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Human-readable title (e.g. `"Table 6 — dataset comparison"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes appended below the table.
    pub notes: Vec<String>,
}

impl Report {
    /// Create an empty report.
    pub fn new(title: impl Into<String>, headers: Vec<&str>) -> Report {
        Report {
            title: title.into(),
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity mismatch in report"
        );
        self.rows.push(row);
    }

    /// Append a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let render_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", render_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "| {} |", sep.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row));
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n> {note}");
        }
        out
    }

    /// Render as tab-separated values (header row included).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }

    /// Write the TSV form to `dir/<slug>.tsv` (atomic tmp+fsync+rename, so
    /// a crashed bench run never leaves a half-written table behind).
    pub fn write_tsv(&self, dir: &Path, slug: &str) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("{slug}.tsv"));
        ocdd_iosafe::atomic_write_str(&path, &self.to_tsv())?;
        Ok(path)
    }
}

/// Format a duration in adaptive units (µs / ms / s).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn markdown_renders_aligned_table() {
        let mut r = Report::new("T", vec!["a", "long_header"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.note("a note");
        let md = r.to_markdown();
        assert!(md.contains("## T"));
        assert!(md.contains("| a | long_header |"));
        assert!(md.contains("| 1 | 2           |"));
        assert!(md.contains("> a note"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Report::new("T", vec!["a", "b"]);
        r.push_row(vec!["1".into()]);
    }

    #[test]
    fn tsv_round_trip() {
        let mut r = Report::new("T", vec!["a", "b"]);
        r.push_row(vec!["1".into(), "x y".into()]);
        assert_eq!(r.to_tsv(), "a\tb\n1\tx y\n");
    }

    #[test]
    fn tsv_written_to_disk() {
        let mut r = Report::new("T", vec!["a"]);
        r.push_row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("ocdd_report_test");
        let path = r.write_tsv(&dir, "t").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\n1\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
