//! `bench_approx` — score the sample-first triage pipeline against the
//! exhaustive pipeline at the same ε and write `BENCH_approx.json`.
//!
//! ```text
//! bench_approx [--rows N] [--sample N] [--epsilon E] [--confidence C]
//!              [--seed S] [--threads N] [--out PATH]
//! ```
//!
//! The headline the JSON records: full-data row scans of the exhaustive
//! baseline over those of the sampled run (`full_scan_reduction`, target
//! ≥ 5x) at an F1 of the sampled dependency set vs the exhaustive one
//! (target ≥ 0.95).

use ocdd_bench::approx_triage::{
    comparison_to_json, default_config, run_comparison, workload_relation,
};

fn main() {
    let mut rows: usize = 1_000_000;
    let mut sample: usize = 50_000;
    let mut epsilon: f64 = 0.01;
    let mut confidence: f64 = 0.95;
    let mut seed: u64 = 11;
    let mut threads: usize = 4;
    let mut out = "BENCH_approx.json".to_owned();

    let usage = "usage: bench_approx [--rows N] [--sample N] [--epsilon E] \
                 [--confidence C] [--seed S] [--threads N] [--out PATH]";
    let die = |msg: String| -> ! {
        eprintln!("bench_approx: {msg}\n{usage}");
        std::process::exit(2);
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| die(format!("missing value after {}", args[i])))
        };
        macro_rules! parse {
            () => {
                need(i).parse().unwrap_or_else(|_| {
                    die(format!(
                        "{} expects a number, got {:?}",
                        args[i],
                        args[i + 1]
                    ))
                })
            };
        }
        match args[i].as_str() {
            "--rows" => rows = parse!(),
            "--sample" => sample = parse!(),
            "--epsilon" => epsilon = parse!(),
            "--confidence" => confidence = parse!(),
            "--seed" => seed = parse!(),
            "--threads" => threads = parse!(),
            "--out" => out = need(i).clone(),
            "--help" | "-h" => {
                eprintln!("{usage}");
                return;
            }
            other => die(format!("unknown flag {other}")),
        }
        i += 2;
    }

    eprintln!("[bench_approx] generating workload: {rows} rows");
    let rel = workload_relation(rows, seed);
    let mut cfg = default_config(sample, threads);
    cfg.epsilon = epsilon;
    cfg.confidence = confidence;
    cfg.seed = seed;

    eprintln!(
        "[bench_approx] exhaustive baseline vs {sample}-row sample at ε = {epsilon} \
         ({confidence:.0}% confidence, {threads} escalation workers)",
        confidence = confidence * 100.0
    );
    let cmp = run_comparison(&rel, &cfg);
    for run in [&cmp.exact, &cmp.sampled] {
        let s = run.result.approx.as_ref();
        eprintln!(
            "[bench_approx] {:8} {:>8.1}ms  {} checks, {} ocds + {} ods, {} full row scans",
            run.name,
            run.wall.as_secs_f64() * 1e3,
            run.result.checks,
            run.result.ocds.len(),
            run.result.ods.len(),
            s.map_or(0, |s| s.full_row_scans),
        );
    }
    if let Some(s) = cmp.sampled.result.approx.as_ref() {
        eprintln!(
            "[bench_approx] triage: {} accepted, {} rejected, {} escalated of {} estimates",
            s.accepted_by_sample, s.rejected_by_sample, s.escalated, s.estimated
        );
    }
    eprintln!(
        "[bench_approx] full-scan reduction {:.2}x at F1 {:.4} \
         (precision {:.4}, recall {:.4})",
        cmp.scan_reduction(),
        cmp.f1(),
        cmp.precision(),
        cmp.recall()
    );

    let json = comparison_to_json(&rel, &cfg, &cmp);
    if let Err(e) = ocdd_iosafe::atomic_write_str(std::path::Path::new(&out), &json) {
        eprintln!("bench_approx: writing {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("[bench_approx] wrote {out}");
}
