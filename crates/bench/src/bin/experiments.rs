//! CLI regenerating every table and figure of the paper.
//!
//! ```text
//! experiments <id|all> [--scale F] [--full] [--budget SECS] [--threads a,b,c]
//!             [--reps N] [--samples N] [--seed N] [--out DIR]
//!
//! ids: table6 fig2 fig3 fig4 fig5 fig6 fig7 yesno numbers
//! ```
//!
//! Reports print as markdown and are written as TSV under `--out`
//! (default `results/`).

use ocdd_bench::experiments::{
    run_ablation, run_fig2, run_fig3, run_fig4, run_fig5, run_fig6, run_fig7, run_numbers,
    run_table6, run_yesno, ExpOptions,
};
use ocdd_bench::Report;
use std::path::PathBuf;
use std::time::Duration;

const IDS: &[&str] = &[
    "table6", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "yesno", "numbers", "ablation",
];

fn usage() -> ! {
    eprintln!(
        "usage: experiments <{}|all> [--scale F] [--full] [--budget SECS] \
         [--threads a,b,c] [--reps N] [--samples N] [--seed N] [--out DIR]",
        IDS.join("|")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut ids: Vec<String> = Vec::new();
    let mut opts = ExpOptions::default();
    let mut out_dir = PathBuf::from("results");

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--scale" => opts.scale = take("--scale").parse().unwrap_or_else(|_| usage()),
            "--full" => opts.full = true,
            "--budget" => {
                let secs: f64 = take("--budget").parse().unwrap_or_else(|_| usage());
                opts.budget = Duration::from_secs_f64(secs);
            }
            "--threads" => {
                opts.threads = take("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--reps" => opts.reps = take("--reps").parse().unwrap_or_else(|_| usage()),
            "--samples" => opts.samples = take("--samples").parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = take("--seed").parse().unwrap_or_else(|_| usage()),
            "--out" => out_dir = PathBuf::from(take("--out")),
            "all" => ids.extend(IDS.iter().map(|s| s.to_string())),
            id if IDS.contains(&id) => ids.push(id.to_owned()),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if ids.is_empty() {
        usage();
    }
    ids.dedup();

    for id in &ids {
        eprintln!(
            "[experiments] running {id} (scale={}, budget={:?})",
            opts.scale, opts.budget
        );
        let report: Report = match id.as_str() {
            "table6" => run_table6(&opts),
            "fig2" => run_fig2(&opts),
            "fig3" => run_fig3(&opts),
            "fig4" => run_fig4(&opts),
            "fig5" => run_fig5(&opts),
            "fig6" => run_fig6(&opts),
            "fig7" => run_fig7(&opts),
            "yesno" => run_yesno(&opts),
            "numbers" => run_numbers(&opts),
            "ablation" => run_ablation(&opts),
            _ => unreachable!("validated above"),
        };
        println!("{}", report.to_markdown());
        match report.write_tsv(&out_dir, id) {
            Ok(path) => eprintln!("[experiments] wrote {}", path.display()),
            Err(e) => eprintln!("[experiments] failed to write TSV: {e}"),
        }
    }
}
