//! `bench_check` — replay the check-heavy workload against every checker
//! backend × cache configuration and write `BENCH_check.json`.
//!
//! ```text
//! bench_check [--rows N] [--seed S] [--budget-mb MB] [--out PATH]
//! ```
//!
//! The first configuration is the seed baseline (comparator re-sort per
//! candidate); every other row reports `speedup_vs_seed` relative to it.
//! Multi-worker rows replay the level-synchronous schedule of the
//! work-stealing discovery mode and report the modeled critical-path time
//! plus `speedup_vs_1worker` against the same backend's single-worker row.

use ocdd_bench::check_throughput::{
    matrix_to_json, run_matrix, workload_candidates, workload_relation, DEFAULT_SPECS,
};

fn main() {
    let mut rows: usize = 100_000;
    let mut seed: u64 = 11;
    let mut budget_mb: usize = 256;
    let mut reps: usize = 3;
    let mut out = "BENCH_check.json".to_owned();

    let usage = "usage: bench_check [--rows N] [--seed S] [--budget-mb MB] [--reps N] [--out PATH]";
    let die = |msg: String| -> ! {
        eprintln!("bench_check: {msg}\n{usage}");
        std::process::exit(2);
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| die(format!("missing value after {}", args[i])))
        };
        let parse = |i: usize| {
            need(i).parse().unwrap_or_else(|_| {
                die(format!(
                    "{} expects a number, got {:?}",
                    args[i],
                    args[i + 1]
                ))
            })
        };
        match args[i].as_str() {
            "--rows" => rows = parse(i),
            "--seed" => seed = parse(i) as u64,
            "--budget-mb" => budget_mb = parse(i),
            "--reps" => reps = parse(i),
            "--out" => out = need(i).clone(),
            "--help" | "-h" => {
                eprintln!("{usage}");
                return;
            }
            other => die(format!("unknown flag {other}")),
        }
        i += 2;
    }

    eprintln!("[bench_check] generating workload: {rows} rows");
    let rel = workload_relation(rows, seed);
    let candidates = workload_candidates(rel.num_columns());
    eprintln!(
        "[bench_check] {} columns, {} candidates ({} checks)",
        rel.num_columns(),
        candidates.len(),
        candidates.len() * 3
    );

    let results = run_matrix(&rel, &candidates, DEFAULT_SPECS, budget_mb << 20, reps);
    let seed_cps = results[0].checks_per_sec();
    for r in &results {
        let baseline = results
            .iter()
            .find(|b| b.spec.backend == r.spec.backend && b.spec.workers == 1);
        let vs_1w = baseline.map_or(1.0, |b| r.checks_per_sec() / b.checks_per_sec());
        let cache = match &r.cache {
            Some(c) => format!(
                "  cache: {} hits / {} misses / {} evictions, {} KiB resident",
                c.hits,
                c.misses,
                c.evictions,
                c.resident_bytes >> 10
            ),
            None => String::new(),
        };
        eprintln!(
            "[bench_check] {:28} {:>10.1} checks/s  ({:>6.2}x seed, {:>5.2}x 1-worker){cache}",
            r.spec.name,
            r.checks_per_sec(),
            r.checks_per_sec() / seed_cps,
            vs_1w,
        );
    }

    let json = matrix_to_json(&rel, candidates.len(), &results);
    if let Err(e) = ocdd_iosafe::atomic_write_str(std::path::Path::new(&out), &json) {
        eprintln!("bench_check: writing {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("[bench_check] wrote {out}");
}
