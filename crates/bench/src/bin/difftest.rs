//! Differential tester: hammer OCDDISCOVER, FASTOD, TANE, FastFDs and the
//! brute-force oracles with random relations and report any disagreement.
//!
//! ```text
//! difftest [--cases N] [--rows R] [--cols C] [--domain D] [--seed S]
//! ```
//!
//! Exit code 0 = no mismatches. Each mismatch prints the offending seed so
//! it can be replayed; the generation is fully deterministic.

use ocdd_baselines::{fastfds, fastod, tane, FastFdsConfig, FastodConfig, TaneConfig};
use ocdd_core::brute::{brute_force_minimal_fds, brute_force_minimal_ocds};
use ocdd_core::check::check_od_pairwise;
use ocdd_core::{discover, DiscoveryConfig, Ocd};
use ocdd_relation::{Relation, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

struct Options {
    cases: u64,
    rows: usize,
    cols: usize,
    domain: i64,
    seed: u64,
}

fn parse() -> Options {
    let mut opts = Options {
        cases: 200,
        rows: 14,
        cols: 4,
        domain: 3,
        seed: 0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut val = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--cases" => opts.cases = val("--cases").parse().expect("number"),
            "--rows" => opts.rows = val("--rows").parse().expect("number"),
            "--cols" => opts.cols = val("--cols").parse().expect("number"),
            "--domain" => opts.domain = val("--domain").parse().expect("number"),
            "--seed" => opts.seed = val("--seed").parse().expect("number"),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn random_relation(seed: u64, rows: usize, cols: usize, domain: i64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_columns(
        (0..cols)
            .map(|c| {
                (
                    format!("c{c}"),
                    (0..rows)
                        .map(|_| Value::Int(rng.random_range(0..domain)))
                        .collect(),
                )
            })
            .collect(),
    )
    .expect("columns have equal length")
}

fn main() {
    let opts = parse();
    let mut mismatches = 0u64;

    for case in 0..opts.cases {
        let seed = opts.seed.wrapping_add(case);
        let rel = random_relation(seed, opts.rows, opts.cols, opts.domain);

        // 1. FD discoverers vs brute force.
        let tane_fds: HashSet<_> = tane(&rel, &TaneConfig::default())
            .fds
            .into_iter()
            .map(|fd| (fd.lhs, fd.rhs))
            .collect();
        let ff_fds: HashSet<_> = fastfds(&rel, &FastFdsConfig::default())
            .fds
            .into_iter()
            .map(|fd| (fd.lhs, fd.rhs))
            .collect();
        let brute_fds: HashSet<_> = brute_force_minimal_fds(&rel, opts.cols)
            .into_iter()
            .collect();
        if tane_fds != brute_fds {
            mismatches += 1;
            eprintln!("seed {seed}: TANE != brute-force FDs");
        }
        if ff_fds != brute_fds {
            mismatches += 1;
            eprintln!("seed {seed}: FastFDs != brute-force FDs");
        }

        // 2. OCDDISCOVER soundness + singleton agreement with FASTOD.
        let ours = discover(
            &rel,
            &DiscoveryConfig {
                column_reduction: false,
                ..DiscoveryConfig::default()
            },
        );
        for od in &ours.ods {
            if !check_od_pairwise(&rel, &od.lhs, &od.rhs) {
                mismatches += 1;
                eprintln!("seed {seed}: ocddiscover emitted spurious OD {od}");
            }
        }
        let brute_ocds: HashSet<Ocd> = brute_force_minimal_ocds(&rel, 1).into_iter().collect();
        let our_singleton_ocds: HashSet<Ocd> = ours
            .ocds
            .iter()
            .filter(|o| o.lhs.len() == 1 && o.rhs.len() == 1)
            .map(Ocd::canonical)
            .collect();
        if our_singleton_ocds != brute_ocds {
            mismatches += 1;
            eprintln!("seed {seed}: singleton OCDs disagree with brute force");
        }

        let fast = fastod(&rel, &FastodConfig::default());
        let fast_pairs: HashSet<(usize, usize)> = fast
            .ocds
            .iter()
            .filter(|o| o.context.is_empty())
            .map(|o| (o.a, o.b))
            .collect();
        let our_pairs: HashSet<(usize, usize)> = our_singleton_ocds
            .iter()
            .map(|o| {
                let a = o.lhs.as_slice()[0];
                let b = o.rhs.as_slice()[0];
                (a.min(b), a.max(b))
            })
            .collect();
        if fast_pairs != our_pairs {
            mismatches += 1;
            eprintln!("seed {seed}: FASTOD empty-context pairs != ocddiscover");
        }

        if (case + 1) % 50 == 0 {
            eprintln!(
                "[difftest] {}/{} cases, {mismatches} mismatches",
                case + 1,
                opts.cases
            );
        }
    }

    if mismatches == 0 {
        println!("difftest: {} cases, all algorithms agree", opts.cases);
    } else {
        println!(
            "difftest: {mismatches} MISMATCHES over {} cases",
            opts.cases
        );
        std::process::exit(1);
    }
}
