//! Sample-first triage benchmark: the workload and metrics behind
//! `bench_approx` / `BENCH_approx.json`.
//!
//! The workload is a wide synthetic relation mixing the three triage
//! regimes the Hoeffding interval produces:
//!
//! * clean co-monotone columns — exact OCDs the sample *accepts*,
//! * uniform random columns — gross violations the sample *rejects*,
//! * "near-miss" columns whose true error sits within one interval
//!   half-width of ε — the borderline candidates that *escalate* to
//!   full-data checks.
//!
//! [`run_comparison`] runs the same ε over the exhaustive pipeline
//! (`sample_rows: None` — every estimate is a full-data pass) and the
//! sampled pipeline, then scores the sampled answer against the
//! exhaustive one: precision/recall/F1 over the discovered dependency
//! sets, and the full-data row-scan reduction the triage bought.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use ocdd_core::approximate::{discover_approximate_with, ApproxConfig, ApproximateResult};
use ocdd_core::{DiscoveryConfig, ParallelMode};
use ocdd_relation::{Relation, SampleStrategy, Value};

/// SplitMix64 step — the same generator the sampler uses, kept local so
/// the workload is reproducible from the seed alone.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Corruption rates of the two near-miss columns, as fractions of rows
/// replaced with uniform noise. With ε = 0.01 and a 50k-row sample the
/// Hoeffding half-width is ≈ 0.006: `NEAR_BELOW` lands inside the
/// interval from below (true OCD, but the sample cannot accept it) and
/// `NEAR_ABOVE` from above (true violation the sample cannot reject) —
/// both must escalate.
pub const NEAR_BELOW: f64 = 0.004;
/// See [`NEAR_BELOW`].
pub const NEAR_ABOVE: f64 = 0.012;

/// Build the benchmark relation: 11 integer columns over `rows` rows.
///
/// | column    | structure                                 | triage regime      |
/// |-----------|-------------------------------------------|--------------------|
/// | `bb`      | sorted backbone, ≤ 50k distinct           | accepts vs family  |
/// | `ord`     | coarsening of `bb` (monotone function)    | accept + OD `bb→ord` |
/// | `co1-3`   | non-decreasing, independent tie structure | accepts (exact OCD) |
/// | `rnd1/2`  | uniform random                            | clear rejects      |
/// | `nbase1`  | uniform random                            | reject vs others   |
/// | `near1`   | `nbase1` with [`NEAR_BELOW`] noise        | escalates vs `nbase1`, holds |
/// | `nbase2`  | uniform random                            | reject vs others   |
/// | `near2`   | `nbase2` with [`NEAR_ABOVE`] noise        | escalates vs `nbase2`, fails |
///
/// Each near-miss column shadows its *own* random base, so the
/// borderline pairs are exactly `near1 ~ nbase1` / `near2 ~ nbase2`
/// (plus their OD directions) — everything else the sample resolves
/// alone, which is the regime the ≥5x scan-reduction headline measures.
pub fn workload_relation(rows: usize, seed: u64) -> Relation {
    let mut state = seed ^ 0x0cdd_bea7;
    let distinct = 50_000usize.min(rows.max(1));
    let bb: Vec<i64> = (0..rows)
        .map(|i| (i * distinct / rows.max(1)) as i64)
        .collect();
    let ord: Vec<i64> = bb.iter().map(|v| v / 5).collect();

    // Non-decreasing walks with their own tie structure: co-monotone
    // with the backbone (swap error 0) without being a function of it.
    let mut walk = |per_mille: u64| -> Vec<i64> {
        let mut v = 0i64;
        (0..rows)
            .map(|_| {
                if splitmix(&mut state) % 1000 < per_mille {
                    v += 1;
                }
                v
            })
            .collect()
    };
    let co1 = walk(30);
    let co2 = walk(7);
    let co3 = walk(120);

    let mut random_col = || -> Vec<i64> {
        (0..rows)
            .map(|_| (splitmix(&mut state) % distinct as u64) as i64)
            .collect()
    };
    let rnd1 = random_col();
    let rnd2 = random_col();
    let nbase1 = random_col();
    let nbase2 = random_col();

    // A mostly-identical copy: ordering by the base orders the copy up
    // to the corrupted rows, so the pair's g3 error ≈ the noise rate.
    let mut noisy = |base: &[i64], rate: f64| -> Vec<i64> {
        let cut = (rate * 1e6) as u64;
        base.iter()
            .map(|&v| {
                if splitmix(&mut state) % 1_000_000 < cut {
                    (splitmix(&mut state) % distinct as u64) as i64
                } else {
                    v
                }
            })
            .collect()
    };
    let near1 = noisy(&nbase1, NEAR_BELOW);
    let near2 = noisy(&nbase2, NEAR_ABOVE);

    let named: Vec<(String, Vec<Value>)> = [
        ("bb", bb),
        ("ord", ord),
        ("co1", co1),
        ("co2", co2),
        ("co3", co3),
        ("rnd1", rnd1),
        ("rnd2", rnd2),
        ("nbase1", nbase1),
        ("near1", near1),
        ("nbase2", nbase2),
        ("near2", near2),
    ]
    .into_iter()
    .map(|(n, vals)| (n.to_owned(), vals.into_iter().map(Value::Int).collect()))
    .collect();
    // All eleven columns are built over 0..rows, so lengths agree.
    Relation::from_columns(named).expect("equal-length columns")
}

/// One timed pipeline run.
pub struct BenchRun {
    /// `"exact"` or `"sampled"`.
    pub name: &'static str,
    /// The pipeline's answer (with its triage accounting).
    pub result: ApproximateResult,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

/// The scored exact-vs-sampled comparison.
pub struct Comparison {
    /// Exhaustive baseline (`sample_rows: None`).
    pub exact: BenchRun,
    /// Sampled pipeline at the same ε.
    pub sampled: BenchRun,
    /// Dependencies found by both pipelines.
    pub agree: usize,
    /// Found by the sampled pipeline only (false positives).
    pub sampled_only: usize,
    /// Found by the exhaustive pipeline only (false negatives).
    pub exact_only: usize,
}

fn dependency_keys(r: &ApproximateResult) -> Vec<String> {
    let mut keys: Vec<String> = r.ocds.iter().map(|a| format!("ocd {}", a.ocd)).collect();
    keys.extend(r.ods.iter().map(|od| format!("od {od}")));
    keys.sort();
    keys
}

impl Comparison {
    /// Fraction of the sampled answer that is correct.
    pub fn precision(&self) -> f64 {
        let found = self.agree + self.sampled_only;
        if found == 0 {
            1.0
        } else {
            self.agree as f64 / found as f64
        }
    }

    /// Fraction of the exhaustive answer the sampled pipeline found.
    pub fn recall(&self) -> f64 {
        let truth = self.agree + self.exact_only;
        if truth == 0 {
            1.0
        } else {
            self.agree as f64 / truth as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Full-data row scans of the baseline over those of the sampled
    /// run (the headline reduction; the sampled run's escalations are
    /// its only full-data passes). A sampled run with zero full scans
    /// reports the baseline count verbatim.
    pub fn scan_reduction(&self) -> f64 {
        let base = exact_full_scans(&self.exact.result);
        let samp = exact_full_scans(&self.sampled.result).max(1);
        base as f64 / samp as f64
    }
}

fn exact_full_scans(r: &ApproximateResult) -> u64 {
    r.approx.as_ref().map_or(0, |s| s.full_row_scans)
}

/// Run the exhaustive baseline and the sampled pipeline over `rel` at
/// the same ε and score them against each other.
pub fn run_comparison(rel: &Relation, cfg: &ApproxConfig) -> Comparison {
    let exact_cfg = ApproxConfig {
        base: cfg.base.clone(),
        sample_rows: None,
        ..*cfg
    };
    let timed = |name: &'static str, c: &ApproxConfig| -> BenchRun {
        let start = Instant::now();
        let result = discover_approximate_with(rel, c);
        BenchRun {
            name,
            result,
            wall: start.elapsed(),
        }
    };
    let exact = timed("exact", &exact_cfg);
    let sampled = timed("sampled", cfg);

    let truth = dependency_keys(&exact.result);
    let found = dependency_keys(&sampled.result);
    let agree = found
        .iter()
        .filter(|k| truth.binary_search(k).is_ok())
        .count();
    Comparison {
        sampled_only: found.len() - agree,
        exact_only: truth.len() - agree,
        agree,
        exact,
        sampled,
    }
}

fn run_json(run: &BenchRun) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"wall_ms\": {:.3}, \"checks\": {}, \"ocds\": {}, \"ods\": {}",
        run.wall.as_secs_f64() * 1e3,
        run.result.checks,
        run.result.ocds.len(),
        run.result.ods.len(),
    );
    if let Some(s) = &run.result.approx {
        let _ = write!(
            out,
            ", \"sample_rows\": {}, \"exhaustive\": {}, \"estimated\": {}, \
             \"accepted_by_sample\": {}, \"rejected_by_sample\": {}, \"escalated\": {}, \
             \"full_checks_saved\": {}, \"sample_row_scans\": {}, \"full_row_scans\": {}",
            s.sample_rows,
            s.exhaustive,
            s.estimated,
            s.accepted_by_sample,
            s.rejected_by_sample,
            s.escalated,
            s.full_checks_saved,
            s.sample_row_scans,
            s.full_row_scans,
        );
    }
    out.push('}');
    out
}

/// Render a comparison as the `BENCH_approx.json` document.
pub fn comparison_to_json(rel: &Relation, cfg: &ApproxConfig, cmp: &Comparison) -> String {
    let stratified = matches!(cfg.strategy, SampleStrategy::Stratified(_));
    let workers = match cfg.base.mode {
        ParallelMode::WorkStealing(n) => n,
        _ => 1,
    };
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"rows\": {}, \"columns\": {},\n  \
         \"epsilon\": {}, \"confidence\": {}, \"seed\": {}, \"sample_rows\": {}, \
         \"stratified\": {stratified}, \"escalation_workers\": {workers},\n  \
         \"exact\": {},\n  \"sampled\": {},\n  \
         \"agree\": {}, \"sampled_only\": {}, \"exact_only\": {},\n  \
         \"precision\": {:.6}, \"recall\": {:.6}, \"f1\": {:.6},\n  \
         \"full_scan_reduction\": {:.3},\n  \
         \"headline\": {{\"target_reduction\": 5.0, \"target_f1\": 0.95, \"met\": {}}}\n}}\n",
        rel.num_rows(),
        rel.num_columns(),
        cfg.epsilon,
        cfg.confidence,
        cfg.seed,
        cfg.sample_spec(rel.num_rows()).rows,
        run_json(&cmp.exact),
        run_json(&cmp.sampled),
        cmp.agree,
        cmp.sampled_only,
        cmp.exact_only,
        cmp.precision(),
        cmp.recall(),
        cmp.f1(),
        cmp.scan_reduction(),
        cmp.scan_reduction() >= 5.0 && cmp.f1() >= 0.95,
    );
    out
}

/// The default benchmark configuration over `DiscoveryConfig::default()`:
/// ε = 0.01 at 95% confidence, 50k-row sample, level cap 2 (the regime
/// comparison needs only the pairwise + one composite level).
pub fn default_config(sample: usize, threads: usize) -> ApproxConfig {
    ApproxConfig {
        base: DiscoveryConfig {
            max_level: Some(2),
            mode: if threads > 1 {
                ParallelMode::WorkStealing(threads)
            } else {
                ParallelMode::Sequential
            },
            ..DiscoveryConfig::default()
        },
        sample_rows: Some(sample),
        epsilon: 0.01,
        ..ApproxConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_the_three_triage_regimes() {
        let rel = workload_relation(4_000, 11);
        assert_eq!(rel.num_columns(), 11);
        assert_eq!(rel.num_rows(), 4_000);
        let mut cfg = default_config(400, 1);
        cfg.epsilon = 0.05; // wide enough for hw ≈ 0.068 at 400 rows
        let cmp = run_comparison(&rel, &cfg);
        let stats = cmp.sampled.result.approx.as_ref().expect("sampled stats");
        assert!(!stats.exhaustive);
        assert!(stats.rejected_by_sample > 0, "random columns must reject");
        assert!(
            stats.accepted_by_sample + stats.escalated > 0,
            "clean/near-miss columns must accept or escalate"
        );
        let base = cmp.exact.result.approx.as_ref().expect("exact stats");
        assert!(base.exhaustive);
        assert!(base.full_row_scans > stats.full_row_scans);
    }

    #[test]
    fn full_sample_comparison_is_a_fixed_point() {
        let rel = workload_relation(600, 3);
        let mut cfg = default_config(600, 1);
        cfg.epsilon = 0.02;
        let cmp = run_comparison(&rel, &cfg);
        assert_eq!(cmp.sampled_only, 0, "full sample must match exact");
        assert_eq!(cmp.exact_only, 0);
        assert_eq!(cmp.f1(), 1.0);
        let json = comparison_to_json(&rel, &cfg, &cmp);
        assert!(json.contains("\"f1\": 1.000000"), "{json}");
        assert!(json.ends_with("}\n"));
    }
}
