//! The experiment implementations, one function per table/figure.
//!
//! Absolute numbers differ from the paper (different hardware and synthetic
//! stand-in data); each function's doc comment names the *shape* claim the
//! experiment verifies. EXPERIMENTS.md records paper-vs-measured.

use crate::report::{fmt_duration, Report};
use ocdd_baselines::{
    fastfds, fastod, order_discover, tane, FastFdsConfig, FastodConfig, OrderConfig, TaneConfig,
};
use ocdd_core::entropy::rank_columns;
use ocdd_core::expand::expanded_od_count;
use ocdd_core::{discover, DiscoveryConfig, ParallelMode};
use ocdd_datasets::{Dataset, RowScale};
use ocdd_relation::Relation;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Duration;

/// Options shared by every experiment.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Row-count multiplier applied to large datasets (small paper tables
    /// always run at full size). `--full` overrides to 1.0.
    pub scale: f64,
    /// Use the paper's full row counts.
    pub full: bool,
    /// Per-algorithm-run wall-clock budget (the paper used 5 hours; the
    /// default here keeps the whole suite laptop-sized).
    pub budget: Duration,
    /// Thread counts for the multithreading experiment.
    pub threads: Vec<usize>,
    /// Repetitions per measurement (the paper averages 5).
    pub reps: usize,
    /// Random column samples per column count (the paper uses 50).
    pub samples: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 0.1,
            full: false,
            budget: Duration::from_secs(10),
            threads: vec![1, 2, 4, 8],
            reps: 1,
            samples: 10,
            seed: 42,
        }
    }
}

impl ExpOptions {
    fn effective_rows(&self, ds: Dataset) -> usize {
        let default = ds.default_rows();
        if self.full || default <= 2_000 {
            return default;
        }
        (((default as f64) * self.scale) as usize).clamp(2_000, default)
    }

    fn load(&self, ds: Dataset) -> Relation {
        ds.generate(RowScale::Rows(self.effective_rows(ds)))
    }
}

fn discovery_config(budget: Duration) -> DiscoveryConfig {
    DiscoveryConfig {
        time_budget: Some(budget),
        ..DiscoveryConfig::default()
    }
}

fn mark(complete: bool) -> &'static str {
    if complete {
        ""
    } else {
        "†"
    }
}

/// **Table 6** — per-dataset comparison of TANE (`|Fd|`), ORDER, FASTOD and
/// OCDDISCOVER.
///
/// Shape claims: OCDDISCOVER completes wherever ORDER does and is faster on
/// dependency-rich data; it finds OCDs that ORDER misses (YES row); FLIGHT
/// exceeds any budget for every algorithm.
pub fn run_table6(opts: &ExpOptions) -> Report {
    let mut report = Report::new(
        "Table 6 — datasets and execution statistics",
        vec![
            "dataset",
            "rows",
            "cols",
            "|Fd| tane",
            "|Fd| fastfds",
            "order |Od|",
            "order time",
            "fastod |Od|",
            "fastod time",
            "ocdd |Ocd|",
            "ocdd |Od|",
            "ocdd expanded",
            "ocdd checks",
            "ocdd time",
        ],
    );
    for &ds in Dataset::all() {
        eprintln!("[table6] generating {}", ds.name());
        let rel = opts.load(ds);

        eprintln!("[table6] {}: tane", ds.name());
        let tane_res = tane(
            &rel,
            &TaneConfig {
                time_budget: Some(opts.budget),
                max_level: None,
            },
        );
        // FastFDs is O(rows²): run it only where that is tractable, with
        // the same budget (the paper's |Fd| numbers come from FastFDs).
        let fastfds_cell = if rel.num_rows() <= 5_000 {
            let res = fastfds(
                &rel,
                &FastFdsConfig {
                    time_budget: Some(opts.budget),
                },
            );
            format!("{}{}", res.fds.len(), mark(res.complete))
        } else {
            "—".to_owned()
        };
        eprintln!("[table6] {}: order", ds.name());
        let order_res = order_discover(
            &rel,
            &OrderConfig {
                time_budget: Some(opts.budget),
                ..OrderConfig::default()
            },
        );
        eprintln!("[table6] {}: fastod", ds.name());
        let fast_res = fastod(
            &rel,
            &FastodConfig {
                time_budget: Some(opts.budget),
                ..FastodConfig::default()
            },
        );
        eprintln!("[table6] {}: ocddiscover", ds.name());
        let ours = discover(&rel, &discovery_config(opts.budget));

        report.push_row(vec![
            ds.name().to_owned(),
            rel.num_rows().to_string(),
            rel.num_columns().to_string(),
            format!("{}{}", tane_res.fds.len(), mark(tane_res.complete)),
            fastfds_cell,
            format!("{}{}", order_res.ods.len(), mark(order_res.complete)),
            fmt_duration(order_res.elapsed),
            format!("{}{}", fast_res.od_count(), mark(fast_res.complete)),
            fmt_duration(fast_res.elapsed),
            format!("{}{}", ours.ocd_count(), mark(ours.complete())),
            ours.od_count().to_string(),
            expanded_od_count(&ours).to_string(),
            ours.checks.to_string(),
            fmt_duration(ours.elapsed),
        ]);
    }
    report.note(format!(
        "† = stopped at the {:?} per-run budget (partial results), mirroring the paper's 5h limit.",
        opts.budget
    ));
    report.note("Synthetic stand-ins: absolute counts differ from the paper; see DESIGN.md §4.");
    report
}

/// **Figure 2** — row scalability on LINEITEM and NCVOTER (20 random
/// columns): runtime grows close to linearly with the row count.
pub fn run_fig2(opts: &ExpOptions) -> Report {
    let mut report = Report::new(
        "Figure 2 — row scalability",
        vec![
            "dataset", "fraction", "rows", "avg time", "ocds", "ods", "checks",
        ],
    );

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let cases: Vec<(String, Relation)> = vec![
        ("lineitem".to_owned(), opts.load(Dataset::Lineitem)),
        ("ncvoter(20cols)".to_owned(), {
            let full = opts.load(Dataset::Ncvoter);
            let mut cols: Vec<usize> = (0..full.num_columns()).collect();
            cols.shuffle(&mut rng);
            cols.truncate(20);
            cols.sort_unstable();
            full.project(&cols).expect("columns in range")
        }),
    ];

    for (name, base) in &cases {
        for step in 1..=10usize {
            let rows = base.num_rows() * step / 10;
            let sample = base.head(rows);
            let mut total = Duration::ZERO;
            let mut last = None;
            for _ in 0..opts.reps.max(1) {
                let res = discover(&sample, &discovery_config(opts.budget));
                total += res.elapsed;
                last = Some(res);
            }
            let res = last.expect("at least one rep");
            report.push_row(vec![
                name.clone(),
                format!("{}%", step * 10),
                rows.to_string(),
                fmt_duration(total / opts.reps.max(1) as u32),
                res.ocd_count().to_string(),
                res.od_count().to_string(),
                res.checks.to_string(),
            ]);
        }
    }
    report.note("Expected shape: near-linear growth in rows (O(m log m) checker dominates).");
    report
}

/// Column scalability core shared by Figures 3 and 4: average discovery
/// time over random column samples of increasing width.
fn column_scalability(ds: Dataset, opts: &ExpOptions, title: &str) -> Report {
    let mut report = Report::new(
        title,
        vec!["cols", "avg time", "avg checks", "avg deps", "samples"],
    );
    let rel = opts.load(ds);
    let n = rel.num_columns();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for c in 2..=n {
        let mut total = Duration::ZERO;
        let mut checks = 0u64;
        let mut deps = 0u64;
        let samples = opts.samples.max(1);
        for _ in 0..samples {
            let mut cols: Vec<usize> = (0..n).collect();
            cols.shuffle(&mut rng);
            cols.truncate(c);
            let projected = rel.project(&cols).expect("columns in range");
            let res = discover(&projected, &discovery_config(opts.budget));
            total += res.elapsed;
            checks += res.checks;
            deps += (res.ocd_count() + res.od_count()) as u64;
        }
        report.push_row(vec![
            c.to_string(),
            fmt_duration(total / samples as u32),
            (checks / samples as u64).to_string(),
            (deps / samples as u64).to_string(),
            samples.to_string(),
        ]);
    }
    report.note("Expected shape: growth with column count, driven by the number of valid OCDs.");
    report
}

/// **Figure 3** — column scalability on HEPATITIS.
pub fn run_fig3(opts: &ExpOptions) -> Report {
    column_scalability(
        Dataset::Hepatitis,
        opts,
        "Figure 3 — column scalability (HEPATITIS)",
    )
}

/// **Figure 4** — column scalability on HORSE.
pub fn run_fig4(opts: &ExpOptions) -> Report {
    column_scalability(
        Dataset::Horse,
        opts,
        "Figure 4 — column scalability (HORSE)",
    )
}

/// **Figure 5** — single-run column scalability on HORSE with the number
/// of discovered dependencies: a quasi-constant column joining the sample
/// inflates both the dependency count and the runtime (log scale in the
/// paper).
pub fn run_fig5(opts: &ExpOptions) -> Report {
    let mut report = Report::new(
        "Figure 5 — single-run column scalability with dependency counts (HORSE)",
        vec!["cols", "added column", "distinct", "time", "deps", "checks"],
    );
    let rel = opts.load(Dataset::Horse);
    let n = rel.num_columns();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    for c in 2..=n {
        let cols = &order[..c];
        let projected = rel.project(cols).expect("columns in range");
        let res = discover(&projected, &discovery_config(opts.budget));
        let added = cols[c - 1];
        report.push_row(vec![
            c.to_string(),
            rel.meta(added).name.clone(),
            rel.meta(added).distinct.to_string(),
            format!("{}{}", fmt_duration(res.elapsed), mark(res.complete())),
            (res.ocd_count() + res.od_count()).to_string(),
            res.checks.to_string(),
        ]);
    }
    report.note(
        "Expected shape: jumps in deps/time when low-distinct (quasi-constant) columns join.",
    );
    report
}

/// **Figure 6 + Table 8** — multithreaded scalability on LETTER, LINEITEM
/// and DBTESMA.
///
/// Shape claims: all three speed up with threads; DBTESMA gains most (many
/// more checks to spread over queues).
///
/// Two measurements per (dataset, thread-count):
/// * **measured** wall-clock of the static-queue run — meaningful only on
///   a machine with that many cores;
/// * **simulated** time from per-branch cost profiling
///   ([`ocdd_core::profile_branches`]): the level-2 branches are assigned
///   round-robin to K queues exactly like the real scheduler, and the
///   simulated parallel time is `reduction + max queue load`. This is the
///   speedup the partitioning achieves independent of the host's core
///   count (single-core CI boxes measure flat wall-clock).
pub fn run_fig6(opts: &ExpOptions) -> Report {
    let mut report = Report::new(
        "Figure 6 / Table 8 — multithreaded scalability",
        vec![
            "dataset",
            "threads",
            "measured",
            "measured norm",
            "simulated",
            "simulated norm",
            "checks",
        ],
    );
    for &ds in &[Dataset::Letter, Dataset::Lineitem, Dataset::Dbtesma] {
        let rel = opts.load(ds);
        let config = DiscoveryConfig {
            time_budget: Some(opts.budget),
            ..DiscoveryConfig::default()
        };
        // Per-branch cost profile drives the simulation.
        let (reduction_time, branches) = ocdd_core::profile_branches(&rel, &config);
        let total_branch: Duration = branches.iter().map(|b| b.elapsed).sum();
        let sim_time = |k: usize| -> Duration {
            let k = k.max(1);
            let mut queues = vec![Duration::ZERO; k];
            for (i, b) in branches.iter().enumerate() {
                queues[i % k] += b.elapsed;
            }
            // The reduction's pairwise checks are also spread over the k
            // workers (columns_reduction_with_threads), hence the division.
            reduction_time / k as u32 + queues.into_iter().max().unwrap_or(Duration::ZERO)
        };
        let sim_base = reduction_time + total_branch;

        let mut base: Option<Duration> = None;
        for &t in &opts.threads {
            let mode = if t <= 1 {
                ParallelMode::Sequential
            } else {
                ParallelMode::StaticQueues(t)
            };
            let mut total = Duration::ZERO;
            let mut checks = 0;
            for _ in 0..opts.reps.max(1) {
                let res = discover(
                    &rel,
                    &DiscoveryConfig {
                        mode,
                        ..config.clone()
                    },
                );
                total += res.elapsed;
                checks = res.checks;
            }
            let avg = total / opts.reps.max(1) as u32;
            let base_time = *base.get_or_insert(avg);
            let sim = if t <= 1 { sim_base } else { sim_time(t) };
            report.push_row(vec![
                ds.name().to_owned(),
                t.to_string(),
                fmt_duration(avg),
                format!("{:.3}", avg.as_secs_f64() / base_time.as_secs_f64()),
                fmt_duration(sim),
                format!("{:.3}", sim.as_secs_f64() / sim_base.as_secs_f64()),
                checks.to_string(),
            ]);
        }
    }
    report.note(
        "Normalized to the single-thread time per dataset (Figure 6's y-axis). \
         The simulated columns replay the measured per-branch costs through the \
         static round-robin queue assignment of §4.2.2; on a multi-core host the \
         measured columns approach them.",
    );
    report.note(format!(
        "Host parallelism while measuring: {} core(s).",
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    ));
    report
}

/// **Figure 7** — entropy-guided column addition on FLIGHT: adding the
/// first quasi-constant columns (those with the fewest distinct values,
/// added last in decreasing-entropy order) blows the runtime up by orders
/// of magnitude.
pub fn run_fig7(opts: &ExpOptions) -> Report {
    let mut report = Report::new(
        "Figure 7 — columns added by decreasing entropy (FLIGHT_1K)",
        vec![
            "cols",
            "last added",
            "distinct",
            "time",
            "termination",
            "checks",
        ],
    );
    let rel = opts.load(Dataset::Flight1k);
    let ranked = rank_columns(&rel);
    let order: Vec<usize> = ranked.iter().map(|r| r.column).collect();
    let mut consecutive_budget_hits = 0;
    for c in 2..=order.len() {
        let cols = &order[..c];
        let projected = rel.project(cols).expect("columns in range");
        let res = discover(&projected, &discovery_config(opts.budget));
        let added = cols[c - 1];
        report.push_row(vec![
            c.to_string(),
            rel.meta(added).name.clone(),
            rel.meta(added).distinct.to_string(),
            fmt_duration(res.elapsed),
            res.termination.label().to_string(),
            res.checks.to_string(),
        ]);
        consecutive_budget_hits = if res.complete() {
            0
        } else {
            consecutive_budget_hits + 1
        };
        if consecutive_budget_hits >= 3 {
            report.note(format!(
                "Stopped at {c} columns after 3 consecutive budget hits — the quasi-constant \
                 blow-up the paper reports between columns 50 and 52."
            ));
            break;
        }
    }
    report
        .note("Expected shape: completes while columns are diverse; explodes once distinct ≤ ~4.");
    report
}

/// **Ablations** — the design choices DESIGN.md calls out, measured on
/// DBTESMA_1K and HORSE:
///
/// * faithful re-sort per candidate vs the cached-prefix refinement
///   (the optimization §5.3.1 leaves out of scope);
/// * per-level candidate dedup on vs off;
/// * column reduction on vs off;
/// * sequential vs static queues vs rayon scheduling.
pub fn run_ablation(opts: &ExpOptions) -> Report {
    let mut report = Report::new(
        "Ablations — design-choice measurements",
        vec![
            "dataset", "variant", "time", "checks", "ocds", "ods", "cache",
        ],
    );
    let run =
        |name: &str, ds: Dataset, rel: &Relation, config: &DiscoveryConfig, report: &mut Report| {
            let mut total = Duration::ZERO;
            let mut last = None;
            for _ in 0..opts.reps.max(1) {
                let res = discover(rel, config);
                total += res.elapsed;
                last = Some(res);
            }
            let res = last.expect("at least one rep");
            let cache = match &res.cache {
                Some(c) => format!(
                    "{}h/{}m/{}ev {}KiB",
                    c.hits,
                    c.misses,
                    c.evictions,
                    c.resident_bytes >> 10
                ),
                None => "-".to_owned(),
            };
            report.push_row(vec![
                ds.name().to_owned(),
                name.to_owned(),
                fmt_duration(total / opts.reps.max(1) as u32),
                res.checks.to_string(),
                res.ocd_count().to_string(),
                res.od_count().to_string(),
                cache,
            ]);
        };
    for &ds in &[Dataset::Dbtesma1k, Dataset::Horse] {
        let rel = opts.load(ds);
        let base = discovery_config(opts.budget);
        run("baseline (paper-faithful)", ds, &rel, &base, &mut report);
        run(
            "sort cache (prefix refinement)",
            ds,
            &rel,
            &DiscoveryConfig {
                checker: ocdd_core::CheckerBackend::PrefixCache,
                ..base.clone()
            },
            &mut report,
        );
        run(
            "sorted partitions (§5.3.1)",
            ds,
            &rel,
            &DiscoveryConfig {
                checker: ocdd_core::CheckerBackend::SortedPartitions,
                ..base.clone()
            },
            &mut report,
        );
        run(
            "dedup off",
            ds,
            &rel,
            &DiscoveryConfig {
                dedup_candidates: false,
                ..base.clone()
            },
            &mut report,
        );
        run(
            "column reduction off",
            ds,
            &rel,
            &DiscoveryConfig {
                column_reduction: false,
                ..base.clone()
            },
            &mut report,
        );
        run(
            "static queues ×4",
            ds,
            &rel,
            &DiscoveryConfig {
                mode: ParallelMode::StaticQueues(4),
                ..base.clone()
            },
            &mut report,
        );
        run(
            "rayon ×4",
            ds,
            &rel,
            &DiscoveryConfig {
                mode: ParallelMode::Rayon(4),
                ..base.clone()
            },
            &mut report,
        );
        run(
            "prefix cache + shared ×4",
            ds,
            &rel,
            &DiscoveryConfig {
                checker: ocdd_core::CheckerBackend::PrefixCache,
                mode: ParallelMode::StaticQueues(4),
                shared_cache: true,
                ..base.clone()
            },
            &mut report,
        );
        run(
            "sorted partitions + shared ×4",
            ds,
            &rel,
            &DiscoveryConfig {
                checker: ocdd_core::CheckerBackend::SortedPartitions,
                mode: ParallelMode::StaticQueues(4),
                shared_cache: true,
                ..base.clone()
            },
            &mut report,
        );
    }
    report.note("All variants must report identical ocds/ods (dedup/reduction change only work).");
    report.note(
        "cache = shared-cache hits/misses/evictions and resident bytes ('-' when worker-private).",
    );
    report.note(
        "Column-reduction-off changes counts: equivalent/constant columns re-enter the search.",
    );
    report
}

/// **Tables 5(a)/5(b)** — the YES/NO completeness demonstration: ORDER
/// finds nothing on either; OCDDISCOVER finds `A ~ B` (i.e. `AB ↔ BA`) on
/// YES and, correctly, nothing on NO.
pub fn run_yesno(opts: &ExpOptions) -> Report {
    let mut report = Report::new(
        "Tables 5(a)/(b) — YES/NO completeness demonstration",
        vec!["dataset", "algorithm", "found"],
    );
    for &ds in &[Dataset::Yes, Dataset::No] {
        let rel = ds.generate(RowScale::Default);
        eprintln!("[table6] {}: ocddiscover", ds.name());
        let ours = discover(&rel, &discovery_config(opts.budget));
        let ocd_text = if ours.ocds.is_empty() {
            "-".to_owned()
        } else {
            ours.ocds
                .iter()
                .map(|o| o.display(&rel))
                .collect::<Vec<_>>()
                .join(", ")
        };
        report.push_row(vec![
            ds.name().to_owned(),
            "ocddiscover".to_owned(),
            ocd_text,
        ]);

        let order_res = order_discover(&rel, &OrderConfig::default());
        let od_text = if order_res.ods.is_empty() {
            "-".to_owned()
        } else {
            order_res
                .ods
                .iter()
                .map(|o| o.display(&rel))
                .collect::<Vec<_>>()
                .join(", ")
        };
        report.push_row(vec![ds.name().to_owned(), "order".to_owned(), od_text]);

        let fast = fastod(&rel, &FastodConfig::default());
        let fast_text = if fast.ocds.is_empty() {
            "-".to_owned()
        } else {
            fast.ocds
                .iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        report.push_row(vec![ds.name().to_owned(), "fastod".to_owned(), fast_text]);
    }
    report.note("ORDER misses A ~ B on YES (repeated-attribute OD AB -> B); OCDDISCOVER finds it.");
    report
}

/// **Table 7** — the NUMBERS relation: the reference FASTOD reported the
/// spurious OD `[B] → [AC]`; our reimplementation and OCDDISCOVER agree
/// it is invalid.
pub fn run_numbers(opts: &ExpOptions) -> Report {
    use ocdd_core::check::check_od_pairwise;
    use ocdd_core::AttrList;

    let mut report = Report::new(
        "Table 7 — NUMBERS correctness check",
        vec!["check", "result"],
    );
    let rel = Dataset::Numbers.generate(RowScale::Default);
    let spurious = check_od_pairwise(
        &rel,
        &AttrList::from_slice(&[1]),
        &AttrList::from_slice(&[0, 2]),
    );
    report.push_row(vec![
        "[B] -> [A,C] valid in the data".into(),
        spurious.to_string(),
    ]);

    let fast = fastod(&rel, &FastodConfig::default());
    report.push_row(vec![
        "our fastod reports FD B -> A".into(),
        fast.fds
            .iter()
            .any(|fd| fd.lhs == vec![1] && fd.rhs == 0)
            .to_string(),
    ]);
    report.push_row(vec![
        "fastod canonical ODs".into(),
        fast.od_count().to_string(),
    ]);

    let ours = discover(&rel, &discovery_config(opts.budget));
    report.push_row(vec![
        "ocddiscover OCDs".into(),
        ours.ocd_count().to_string(),
    ]);
    report.push_row(vec!["ocddiscover ODs".into(), ours.od_count().to_string()]);
    report.note("The reference implementation's bug (§5.2.2) does not reproduce: both algorithms reject [B] -> [AC].");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            scale: 0.001,
            budget: Duration::from_millis(400),
            threads: vec![1, 2],
            samples: 2,
            reps: 1,
            ..ExpOptions::default()
        }
    }

    #[test]
    fn yesno_report_shape() {
        let r = run_yesno(&tiny());
        assert_eq!(r.rows.len(), 6);
        // OCDDISCOVER finds A ~ B on YES; ORDER finds nothing.
        let ocdd_yes = &r.rows[0];
        assert_eq!(ocdd_yes[1], "ocddiscover");
        assert!(ocdd_yes[2].contains("[A] ~ [B]"), "got {:?}", ocdd_yes[2]);
        let order_yes = &r.rows[1];
        assert_eq!(order_yes[2], "-");
        // On NO, nobody finds anything.
        assert_eq!(r.rows[3][2], "-");
        assert_eq!(r.rows[4][2], "-");
    }

    #[test]
    fn numbers_report_rejects_spurious_od() {
        let r = run_numbers(&tiny());
        assert_eq!(r.rows[0][1], "false", "[B] -> [AC] must be invalid");
        assert_eq!(r.rows[1][1], "false", "our fastod must not report B -> A");
    }

    #[test]
    fn fig6_normalized_starts_at_one() {
        let r = run_fig6(&tiny());
        // First row per dataset has normalized 1.000.
        let letters: Vec<&Vec<String>> = r.rows.iter().filter(|row| row[0] == "letter").collect();
        assert_eq!(letters[0][3], "1.000");
        assert_eq!(letters.len(), 2);
    }

    #[test]
    fn effective_rows_respects_scale_and_full() {
        let opts = tiny();
        assert_eq!(opts.effective_rows(Dataset::Yes), 5);
        // 0.001 × 6,001,215 = 6,001 — above the 2,000-row floor.
        assert_eq!(opts.effective_rows(Dataset::Lineitem), 6_001);
        let tinier = ExpOptions {
            scale: 0.0001,
            ..tiny()
        };
        assert_eq!(
            tinier.effective_rows(Dataset::Lineitem),
            2_000,
            "clamped at minimum"
        );
        let full = ExpOptions {
            full: true,
            ..tiny()
        };
        assert_eq!(full.effective_rows(Dataset::Hepatitis), 155);
    }

    #[test]
    fn fig5_report_covers_all_columns() {
        let r = run_fig5(&tiny());
        assert_eq!(r.rows.len(), 28); // 2..=29 columns
        assert_eq!(r.rows[0][0], "2");
    }
}
