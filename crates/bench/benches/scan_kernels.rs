//! Criterion timing of the adjacent-pair scan kernels in isolation:
//! the per-pair scalar oracle vs the blockwise branchless kernel (or the
//! explicit SIMD kernel when compiled with `--features simd` — the
//! `dispatched` id covers whichever large-scan kernel the build selects,
//! see `environment_json`'s `block_kernel` field), swept across the three
//! rank-code widths and two value distributions:
//!
//! * `ties` — 200 classes over the sorted column, rhs co-monotone with
//!   ties, so the lexicographic fold stays open and both columns are
//!   gathered for every block (the split-hunting profile).
//! * `unique` — key-like columns: the rhs fold closes every pair in the
//!   first column, exercising the early-close path and the gather
//!   bandwidth (the swap-hunting profile).
//!
//! Both workloads are valid ODs, so every scan runs the full index —
//! these are throughput numbers, not early-exit numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use ocdd_relation::scan::{block_kernel, od_scan, od_scan_scalar, ScanKernel};
use ocdd_relation::sort::sort_index_by;
use ocdd_relation::{CodeWidth, Relation, Value};
use std::hint::black_box;

const ROWS: usize = 60_000;

/// Two-column relation `(lhs, rhs)` whose OD `lhs → rhs` is valid.
fn relation(tie_heavy: bool) -> Relation {
    let (lhs, rhs): (Vec<Value>, Vec<Value>) = (0..ROWS as i64)
        .map(|i| {
            if tie_heavy {
                // 200 classes of 300 rows; rhs equal within each class.
                (Value::Int(i / 300), Value::Int(i / 300))
            } else {
                (Value::Int(i), Value::Int(i))
            }
        })
        .unzip();
    Relation::from_columns(vec![("x".to_string(), lhs), ("y".to_string(), rhs)])
        .expect("equal-length columns")
}

fn bench_scan_kernels(c: &mut Criterion) {
    let dispatched = match block_kernel() {
        ScanKernel::Simd => "simd",
        _ => "block",
    };
    let mut group = c.benchmark_group("scan_kernels");
    group.sample_size(10);
    for (profile, tie_heavy) in [("ties", true), ("unique", false)] {
        let base = relation(tie_heavy);
        for width in [CodeWidth::U8, CodeWidth::U16, CodeWidth::U32] {
            let mut rel = base.clone();
            rel.widen_code_width(width);
            if rel.code_width(0) != width || rel.code_width(1) != width {
                // Natural width exceeds the requested one (e.g. the
                // unique profile has > 256 distinct values, so no u8
                // mirror exists) — skip rather than mislabel.
                continue;
            }
            let index = sort_index_by(&rel, &[0]);
            let label = |kernel: &str| format!("{profile}_{width:?}_{kernel}").to_lowercase();
            group.bench_function(label("scalar"), |b| {
                b.iter(|| black_box(od_scan_scalar(&rel, &[0], &[1], &index)))
            });
            group.bench_function(label(dispatched), |b| {
                b.iter(|| black_box(od_scan(&rel, &[0], &[1], &index)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scan_kernels);
criterion_main!(benches);
