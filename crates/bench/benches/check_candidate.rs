//! Microbenchmarks for the candidate checker (§4.3): the `O(m log m)` index
//! sort plus adjacent scan that dominates discovery time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocdd_core::{check_ocd, check_od, AttrList};
use ocdd_datasets::{ColumnSpec, TableSpec};
use std::hint::black_box;

fn valid_pair_relation(rows: usize) -> ocdd_relation::Relation {
    TableSpec::new(
        vec![
            ("a", ColumnSpec::SortedInt { distinct: rows / 4 }),
            (
                "b",
                ColumnSpec::CoMonotoneWith {
                    source: 0,
                    distinct: rows / 4,
                },
            ),
            ("k", ColumnSpec::Key),
        ],
        rows,
    )
    .generate(7)
}

fn random_pair_relation(rows: usize) -> ocdd_relation::Relation {
    TableSpec::new(
        vec![
            ("a", ColumnSpec::RandomInt { distinct: rows }),
            ("b", ColumnSpec::RandomInt { distinct: rows }),
        ],
        rows,
    )
    .generate(8)
}

fn bench_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_candidate");
    for rows in [1_000usize, 10_000, 100_000] {
        let valid = valid_pair_relation(rows);
        let invalid = random_pair_relation(rows);
        let x = AttrList::single(0);
        let y = AttrList::single(1);

        group.throughput(Throughput::Elements(rows as u64));
        // Worst case: the OCD holds, so the scan covers every row.
        group.bench_with_input(
            BenchmarkId::new("ocd_valid_full_scan", rows),
            &rows,
            |b, _| b.iter(|| black_box(check_ocd(&valid, &x, &y)).is_valid()),
        );
        // Early exit: random columns swap almost immediately.
        group.bench_with_input(
            BenchmarkId::new("ocd_invalid_early_exit", rows),
            &rows,
            |b, _| b.iter(|| black_box(check_ocd(&invalid, &x, &y)).is_valid()),
        );
        // OD with a two-attribute LHS (longer sort comparator).
        let xy = AttrList::from_slice(&[0, 2]);
        group.bench_with_input(BenchmarkId::new("od_two_col_lhs", rows), &rows, |b, _| {
            b.iter(|| black_box(check_od(&valid, &xy, &y)).is_valid())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_check);
criterion_main!(benches);
