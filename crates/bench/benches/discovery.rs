//! End-to-end discovery benchmarks on the Table 6 datasets (small scales).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocdd_core::{discover, DiscoveryConfig};
use ocdd_datasets::{Dataset, RowScale};
use std::hint::black_box;

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);
    let cases = [
        (Dataset::Yes, 5usize),
        (Dataset::Numbers, 6),
        (Dataset::Hepatitis, 155),
        (Dataset::Horse, 300),
        (Dataset::Dbtesma1k, 1_000),
        (Dataset::Letter, 2_000),
    ];
    for (ds, rows) in cases {
        let rel = ds.generate(RowScale::Rows(rows));
        group.bench_with_input(BenchmarkId::new(ds.name(), rows), &rel, |b, rel| {
            b.iter(|| black_box(discover(rel, &DiscoveryConfig::default())))
        });
    }
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    use ocdd_core::columns_reduction;
    let mut group = c.benchmark_group("column_reduction");
    group.sample_size(10);
    for (ds, rows) in [(Dataset::Horse, 300usize), (Dataset::Letter, 5_000)] {
        let rel = ds.generate(RowScale::Rows(rows));
        group.bench_with_input(BenchmarkId::new(ds.name(), rows), &rel, |b, rel| {
            b.iter(|| black_box(columns_reduction(rel)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_discovery, bench_reduction);
criterion_main!(benches);
