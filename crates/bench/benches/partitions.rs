//! Benchmarks for the stripped-partition machinery shared by the TANE and
//! FASTOD baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocdd_baselines::{fastod, tane, FastodConfig, StrippedPartition, TaneConfig};
use ocdd_datasets::{ColumnSpec, Dataset, RowScale, TableSpec};
use std::hint::black_box;

fn bench_partition_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitions");
    for rows in [10_000usize, 100_000] {
        let rel = TableSpec::new(
            vec![
                ("a", ColumnSpec::RandomInt { distinct: 100 }),
                ("b", ColumnSpec::RandomInt { distinct: 100 }),
            ],
            rows,
        )
        .generate(3);
        group.bench_with_input(BenchmarkId::new("for_column", rows), &rel, |b, rel| {
            b.iter(|| black_box(StrippedPartition::for_column(rel, 0)))
        });
        let pa = StrippedPartition::for_column(&rel, 0);
        let pb = StrippedPartition::for_column(&rel, 1);
        group.bench_with_input(BenchmarkId::new("product", rows), &rows, |b, _| {
            b.iter(|| black_box(pa.product(&pb)))
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let rel = Dataset::Hepatitis.generate(RowScale::Default);
    group.bench_function("tane_hepatitis", |b| {
        b.iter(|| black_box(tane(&rel, &TaneConfig::default())))
    });
    let small = Dataset::Numbers.generate(RowScale::Default);
    group.bench_function("fastod_numbers", |b| {
        b.iter(|| black_box(fastod(&small, &FastodConfig::default())))
    });
    group.finish();
}

criterion_group!(benches, bench_partition_ops, bench_baselines);
criterion_main!(benches);
