//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * **sort cache** — the paper's checker re-sorts per candidate (§5.3.1
//!   leaves sorted-partition reuse as out of scope); the cached-prefix
//!   refinement is our optional optimization.
//! * **candidate dedup** — a candidate has up to two parents; deduplication
//!   trades a hash set for duplicate checks.
//! * **scheduling** — the paper's static per-branch queues vs rayon
//!   work-stealing.

use criterion::{criterion_group, criterion_main, Criterion};
use ocdd_core::{discover, DiscoveryConfig, ParallelMode};
use ocdd_datasets::{Dataset, RowScale};
use std::hint::black_box;

fn bench_sort_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sort_cache");
    group.sample_size(10);
    let rel = Dataset::Dbtesma1k.generate(RowScale::Default);
    group.bench_function("resort_per_candidate(paper)", |b| {
        b.iter(|| black_box(discover(&rel, &DiscoveryConfig::default())))
    });
    group.bench_function("cached_prefix_refinement", |b| {
        b.iter(|| {
            black_box(discover(
                &rel,
                &DiscoveryConfig {
                    checker: ocdd_core::CheckerBackend::PrefixCache,
                    ..Default::default()
                },
            ))
        })
    });
    group.bench_function("sorted_partitions", |b| {
        b.iter(|| {
            black_box(discover(
                &rel,
                &DiscoveryConfig {
                    checker: ocdd_core::CheckerBackend::SortedPartitions,
                    ..Default::default()
                },
            ))
        })
    });
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dedup");
    group.sample_size(10);
    let rel = Dataset::Horse.generate(RowScale::Default);
    group.bench_function("dedup_on", |b| {
        b.iter(|| black_box(discover(&rel, &DiscoveryConfig::default())))
    });
    group.bench_function("dedup_off", |b| {
        b.iter(|| {
            black_box(discover(
                &rel,
                &DiscoveryConfig {
                    dedup_candidates: false,
                    ..Default::default()
                },
            ))
        })
    });
    group.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scheduling");
    group.sample_size(10);
    let rel = Dataset::Dbtesma1k.generate(RowScale::Default);
    for (name, mode) in [
        ("sequential", ParallelMode::Sequential),
        ("static_queues_4(paper)", ParallelMode::StaticQueues(4)),
        ("rayon_4", ParallelMode::Rayon(4)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(discover(
                    &rel,
                    &DiscoveryConfig {
                        mode,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    group.finish();
}

fn bench_checker_backends(c: &mut Criterion) {
    use ocdd_core::sorted_partitions::PartitionChecker;
    use ocdd_core::{check_od, AttrList, SortCache};
    use ocdd_datasets::{ColumnSpec, TableSpec};
    use std::hint::black_box as bb;

    let rel = TableSpec::new(
        vec![
            ("a", ColumnSpec::SortedInt { distinct: 500 }),
            (
                "b",
                ColumnSpec::CoMonotoneWith {
                    source: 0,
                    distinct: 400,
                },
            ),
            ("c", ColumnSpec::RandomInt { distinct: 1000 }),
            ("d", ColumnSpec::RandomInt { distinct: 50 }),
        ],
        20_000,
    )
    .generate(11);
    // A fixed workload of sibling candidates sharing LHS prefixes.
    let workload: Vec<(AttrList, AttrList)> = vec![
        (AttrList::from_slice(&[0]), AttrList::from_slice(&[1])),
        (AttrList::from_slice(&[0, 1]), AttrList::from_slice(&[2])),
        (AttrList::from_slice(&[0, 2]), AttrList::from_slice(&[1])),
        (AttrList::from_slice(&[0, 3]), AttrList::from_slice(&[1])),
        (AttrList::from_slice(&[0, 1, 2]), AttrList::from_slice(&[3])),
        (AttrList::from_slice(&[0, 1, 3]), AttrList::from_slice(&[2])),
    ];

    let mut group = c.benchmark_group("ablation_checker_backend");
    group.sample_size(20);
    group.bench_function("resort_per_candidate(paper)", |b| {
        b.iter(|| {
            for (x, y) in &workload {
                bb(check_od(&rel, x, y));
            }
        })
    });
    group.bench_function("sorted_index_prefix_cache", |b| {
        b.iter(|| {
            let mut cache = SortCache::new(&rel);
            for (x, y) in &workload {
                bb(cache.check_od(x, y));
            }
        })
    });
    group.bench_function("sorted_partitions(s5.3.1)", |b| {
        b.iter(|| {
            let mut checker = PartitionChecker::new(&rel);
            for (x, y) in &workload {
                bb(checker.check_od(x, y));
            }
        })
    });
    // Shared-cache variants: the second pass simulates a sibling worker
    // arriving after the cache is warm.
    group.bench_function("prefix_cache_shared_warm", |b| {
        use ocdd_core::SharedPrefixCache;
        use std::sync::Arc;
        let shared = Arc::new(SharedPrefixCache::<Vec<u32>>::new(256 << 20));
        let mut warm = SortCache::with_shared(&rel, Arc::clone(&shared));
        for (x, y) in &workload {
            bb(warm.check_od(x, y));
        }
        b.iter(|| {
            let mut cache = SortCache::with_shared(&rel, Arc::clone(&shared));
            for (x, y) in &workload {
                bb(cache.check_od(x, y));
            }
        })
    });
    group.bench_function("sorted_partitions_shared_warm", |b| {
        use ocdd_core::SharedPrefixCache;
        use std::sync::Arc;
        let shared = Arc::new(SharedPrefixCache::new(256 << 20));
        let mut warm = PartitionChecker::with_shared(&rel, Arc::clone(&shared));
        for (x, y) in &workload {
            bb(warm.check_od(x, y));
        }
        b.iter(|| {
            let mut checker = PartitionChecker::with_shared(&rel, Arc::clone(&shared));
            for (x, y) in &workload {
                bb(checker.check_od(x, y));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sort_cache,
    bench_dedup,
    bench_scheduling,
    bench_checker_backends
);
criterion_main!(benches);
