//! Criterion timing of the check-heavy workload per backend ×
//! worker-count configuration (the level-synchronous critical-path
//! schedule of the work-stealing mode). The same workload, run once with
//! JSON output, backs `BENCH_check.json` via the `bench_check` binary;
//! this bench provides the statistically sampled timings (and the ≥2×
//! radix+cache vs seed-comparator acceptance comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use ocdd_bench::check_throughput::{
    run_spec, workload_candidates, workload_relation, DEFAULT_SPECS,
};
use std::hint::black_box;

fn bench_check_throughput(c: &mut Criterion) {
    // Criterion runs each config many times; 20k rows keeps a full
    // sample set tractable while preserving the 100k-row kernel mix
    // (the binary measures the full-size workload).
    let rel = workload_relation(20_000, 11);
    let candidates = workload_candidates(rel.num_columns());

    let mut group = c.benchmark_group("check_throughput");
    group.sample_size(10);
    for &spec in DEFAULT_SPECS {
        group.bench_function(spec.name, |b| {
            b.iter(|| black_box(run_spec(&rel, &candidates, spec, 256 << 20)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_check_throughput);
criterion_main!(benches);
