//! Column reduction (§4.1): the `columnsReduction()` preprocessing step.
//!
//! Two operations shrink the attribute universe before the search starts:
//!
//! 1. **Removal of constant columns.** A constant column is ordered by every
//!    attribute list, so it would generate a huge number of trivial ODs.
//! 2. **Reduction of order-equivalent columns.** All `n(n-1)` single-column
//!    OD candidates `A → B` are checked; the valid ones form a digraph whose
//!    strongly connected components (computed with Tarjan's algorithm, as in
//!    the paper) are exactly the order-equivalence classes `A ↔ B ↔ …`.
//!    One representative per class is kept.
//!
//! The dependencies implied by the removed columns (constancy facts,
//! equivalences, and the one-directional single-column ODs among
//! representatives) are part of the algorithm's output and are re-expanded
//! by [`crate::expand`].

use crate::check::check_od;
use crate::deps::{AttrList, Od, OrderEquivalence};
use ocdd_relation::{ColumnId, Relation};

/// Output of the column-reduction phase.
#[derive(Debug, Clone, Default)]
pub struct Reduction {
    /// The reduced attribute universe `U'` (class representatives of
    /// non-constant columns), in ascending column order.
    pub attributes: Vec<ColumnId>,
    /// Constant columns removed from the universe.
    pub constants: Vec<ColumnId>,
    /// Order-equivalence classes with at least two members. The first
    /// element of each class is the representative kept in `attributes`.
    pub equivalence_classes: Vec<Vec<ColumnId>>,
    /// Single-column ODs `[A] → [B]` valid between *representatives* where
    /// the reverse does not hold (these edges survive the SCC collapse and
    /// are results in their own right).
    pub single_ods: Vec<Od>,
    /// Number of OD checks performed by this phase.
    pub checks: u64,
}

impl Reduction {
    /// Equivalences as explicit `A ↔ B` facts (representative first).
    pub fn equivalences(&self) -> Vec<OrderEquivalence> {
        let mut out = Vec::new();
        for class in &self.equivalence_classes {
            let rep = class[0];
            for &other in &class[1..] {
                out.push(OrderEquivalence {
                    lhs: AttrList::single(rep),
                    rhs: AttrList::single(other),
                });
            }
        }
        out
    }

    /// The class representative a column was collapsed to (itself if it was
    /// not collapsed). Constants map to themselves.
    pub fn representative(&self, col: ColumnId) -> ColumnId {
        for class in &self.equivalence_classes {
            if class.contains(&col) {
                return class[0];
            }
        }
        col
    }
}

/// Tarjan's strongly-connected-components algorithm over a dense digraph.
///
/// `adj[u]` lists the successors of node `u`. Returns the components in
/// reverse topological order; nodes within a component keep discovery
/// order. Public because the bidirectional reduction
/// ([`crate::bidirectional`]) reuses it over the digraph of marked
/// attributes.
pub fn strongly_connected_components(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    tarjan_scc(adj)
}

// lint: allow(panic-reachability, every index is a node id < adj.len() — frames and the Tarjan stack only ever hold ids produced by iterating 0..n)
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNDEF: usize = usize::MAX;
    let mut index_of = vec![UNDEF; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Iterative DFS to avoid recursion depth limits on wide tables.
    enum Frame {
        Enter(usize),
        Resume(usize, usize), // (node, next child position)
    }

    for start in 0..n {
        if index_of[start] != UNDEF {
            continue;
        }
        let mut work = vec![Frame::Enter(start)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index_of[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut child) => {
                    let mut descended = false;
                    while child < adj[v].len() {
                        let w = adj[v][child];
                        child += 1;
                        if index_of[w] == UNDEF {
                            work.push(Frame::Resume(v, child));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index_of[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if lowlink[v] == index_of[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("stack holds the component");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        component.reverse();
                        components.push(component);
                    }
                    // Propagate lowlink to parent Resume frame, if any.
                    if let Some(Frame::Resume(parent, _)) = work.last() {
                        let parent = *parent;
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }
    }
    components
}

/// Run column reduction over `rel` (single-threaded).
pub fn columns_reduction(rel: &Relation) -> Reduction {
    columns_reduction_with_threads(rel, 1)
}

/// Column reduction with the `n(n-1)` single-column OD checks spread over
/// `threads` rayon workers. The checks are independent, so the result is
/// identical to the sequential run (enforced by tests); only wall-clock
/// changes. `discover` picks the thread count from its
/// [`crate::config::ParallelMode`].
// lint: allow(panic-reachability, indices are bounded by construction — i and j range over 0..k with edge sized k*k, every SCC is non-empty, and every live column lands in exactly one equivalence class)
pub fn columns_reduction_with_threads(rel: &Relation, threads: usize) -> Reduction {
    let n = rel.num_columns();
    let mut constants = Vec::new();
    let mut live: Vec<ColumnId> = Vec::new();
    for c in 0..n {
        if rel.meta(c).is_constant() {
            constants.push(c);
        } else {
            live.push(c);
        }
    }

    // Digraph of valid single-column ODs among live columns.
    let k = live.len();
    let pairs: Vec<(usize, usize)> = (0..k)
        .flat_map(|i| (0..k).filter(move |&j| j != i).map(move |j| (i, j)))
        .collect();
    // Total by construction: pairs only ever hold indexes < live.len(), and
    // `get`-based access keeps the closure panic-free either way.
    let check_pair = |i: usize, j: usize| -> bool {
        match (live.get(i), live.get(j)) {
            (Some(&a), Some(&b)) => {
                check_od(rel, &AttrList::single(a), &AttrList::single(b)).is_valid()
            }
            _ => false,
        }
    };
    let run_checks = |pairs: &[(usize, usize)]| -> Vec<bool> {
        pairs.iter().map(|&(i, j)| check_pair(i, j)).collect()
    };
    let results: Vec<bool> = if threads > 1 && !pairs.is_empty() {
        use rayon::prelude::*;
        // Pool creation only fails on resource exhaustion; the checks are
        // correct at any parallelism, so degrade to the sequential path
        // instead of panicking.
        match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            Ok(pool) => pool.install(|| pairs.par_iter().map(|&(i, j)| check_pair(i, j)).collect()),
            Err(_) => run_checks(&pairs),
        }
    } else {
        run_checks(&pairs)
    };
    let checks = pairs.len() as u64;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut edge = vec![false; k * k];
    for (&(i, j), &valid) in pairs.iter().zip(&results) {
        if valid {
            adj[i].push(j);
            edge[i * k + j] = true;
        }
    }

    let sccs = tarjan_scc(&adj);

    // Order classes by their smallest member so output is deterministic.
    let mut classes: Vec<Vec<ColumnId>> = sccs
        .into_iter()
        .map(|comp| {
            let mut cols: Vec<ColumnId> = comp.iter().map(|&i| live[i]).collect();
            cols.sort_unstable();
            cols
        })
        .collect();
    classes.sort_unstable_by_key(|c| c[0]);

    let mut attributes: Vec<ColumnId> = classes.iter().map(|c| c[0]).collect();
    attributes.sort_unstable();

    // One-directional single-column ODs between representatives: keep an
    // edge rep(a) -> rep(b) iff some original edge existed and the reverse
    // class edge does not (otherwise they'd share an SCC).
    let rep_index = |col: ColumnId| -> usize {
        classes
            .iter()
            .position(|c| c.contains(&col))
            .expect("live column is in a class")
    };
    let mut single_ods = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for i in 0..k {
        for j in 0..k {
            if edge[i * k + j] {
                let (ci, cj) = (rep_index(live[i]), rep_index(live[j]));
                if ci != cj && seen.insert((ci, cj)) {
                    single_ods.push(Od::new(
                        AttrList::single(classes[ci][0]),
                        AttrList::single(classes[cj][0]),
                    ));
                }
            }
        }
    }
    single_ods.sort();

    let equivalence_classes: Vec<Vec<ColumnId>> =
        classes.into_iter().filter(|c| c.len() > 1).collect();

    Reduction {
        attributes,
        constants,
        equivalence_classes,
        single_ods,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::{Relation, Value};

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn constants_are_removed() {
        let r = rel(&[("a", &[1, 2, 3]), ("k", &[9, 9, 9]), ("b", &[3, 1, 2])]);
        let red = columns_reduction(&r);
        assert_eq!(red.constants, vec![1]);
        assert_eq!(red.attributes, vec![0, 2]);
    }

    #[test]
    fn order_equivalent_columns_collapse() {
        // b = 2*a, c unrelated.
        let r = rel(&[("a", &[1, 3, 2]), ("b", &[2, 6, 4]), ("c", &[5, 1, 9])]);
        let red = columns_reduction(&r);
        assert_eq!(red.equivalence_classes, vec![vec![0, 1]]);
        assert_eq!(red.attributes, vec![0, 2]);
        assert_eq!(red.representative(1), 0);
        assert_eq!(red.representative(2), 2);
        let eqs = red.equivalences();
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].to_string(), "[0] <-> [1]");
    }

    #[test]
    fn three_way_equivalence_class() {
        let r = rel(&[
            ("a", &[1, 2, 3, 4]),
            ("b", &[10, 20, 30, 40]),
            ("c", &[-4, -3, -2, -1]),
        ]);
        let red = columns_reduction(&r);
        assert_eq!(red.equivalence_classes, vec![vec![0, 1, 2]]);
        assert_eq!(red.attributes, vec![0]);
        assert_eq!(red.equivalences().len(), 2);
    }

    #[test]
    fn one_directional_od_is_reported_not_collapsed() {
        // a -> b (ties in b where a splits? we need a->b valid, b->a invalid):
        // a: 1,2,3,4  b: 1,1,2,2  => a->b valid (b non-decr along a),
        // b->a invalid (split: b ties, a differs).
        let r = rel(&[("a", &[1, 2, 3, 4]), ("b", &[1, 1, 2, 2])]);
        let red = columns_reduction(&r);
        assert!(red.equivalence_classes.is_empty());
        assert_eq!(red.attributes, vec![0, 1]);
        assert_eq!(red.single_ods.len(), 1);
        assert_eq!(red.single_ods[0].to_string(), "[0] -> [1]");
    }

    #[test]
    fn single_ods_lift_to_representatives() {
        // a <-> b (equivalent), both order c one-directionally.
        let r = rel(&[
            ("a", &[1, 2, 3, 4]),
            ("b", &[5, 6, 7, 8]),
            ("c", &[1, 1, 2, 2]),
        ]);
        let red = columns_reduction(&r);
        assert_eq!(red.equivalence_classes, vec![vec![0, 1]]);
        // Between representatives: [0] -> [2] once (not duplicated via b).
        assert_eq!(
            red.single_ods,
            vec![Od::new(AttrList::single(0), AttrList::single(2))]
        );
    }

    #[test]
    fn checks_counted() {
        let r = rel(&[("a", &[1, 2]), ("b", &[2, 1]), ("c", &[1, 1])]);
        let red = columns_reduction(&r);
        // c constant -> 2 live columns -> 2 directed checks.
        assert_eq!(red.checks, 2);
    }

    #[test]
    fn all_constant_relation_reduces_to_nothing() {
        let r = rel(&[("a", &[1, 1]), ("b", &[2, 2])]);
        let red = columns_reduction(&r);
        assert_eq!(red.attributes, Vec::<usize>::new());
        assert_eq!(red.constants, vec![0, 1]);
    }

    #[test]
    fn tarjan_handles_chain_and_cycle() {
        // 0 -> 1 -> 2 -> 0 forms a cycle; 3 hangs off.
        let adj = vec![vec![1], vec![2], vec![0], vec![0]];
        let mut sccs = tarjan_scc(&adj);
        for c in &mut sccs {
            c.sort_unstable();
        }
        sccs.sort();
        assert!(sccs.contains(&vec![0, 1, 2]));
        assert!(sccs.contains(&vec![3]));
    }

    #[test]
    fn tarjan_deep_graph_no_stack_overflow() {
        // A path of 100_000 nodes would overflow a recursive Tarjan.
        let n = 100_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let sccs = tarjan_scc(&adj);
        assert_eq!(sccs.len(), n);
    }

    #[test]
    fn tarjan_two_cycles_bridged() {
        // {0,1} and {2,3} cycles, bridge 1 -> 2.
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        let mut sccs = tarjan_scc(&adj);
        for c in &mut sccs {
            c.sort_unstable();
        }
        sccs.sort();
        assert_eq!(sccs, vec![vec![0, 1], vec![2, 3]]);
    }
}
