//! A sharded, byte-budgeted prefix cache shared by every worker of a run.
//!
//! The per-worker caches ([`crate::check::SortCache`],
//! [`crate::sorted_partitions::PartitionChecker`]) rebuild the same prefix
//! artefacts once *per thread*: in the parallel modes the sorted index (or
//! partition) of a popular prefix like `[A]` is recomputed by every worker
//! that meets it. [`SharedPrefixCache`] lifts that store to the run level:
//! one concurrent map, keyed by attribute-list prefix, visible to all
//! workers of `StaticQueues` and `Rayon` runs.
//!
//! Design:
//!
//! * **Sharding** — keys hash to one of a fixed number of shards, each a
//!   `Mutex<HashMap>`. Workers touching different prefixes never contend.
//! * **Byte budget** — each entry carries its approximate heap size (via
//!   [`CacheWeight`]). When the resident total exceeds the budget, shards
//!   are swept round-robin and their least-recently-touched entries are
//!   dropped until the total fits again.
//! * **Approximate LRU** — a global atomic clock stamps every hit; eviction
//!   picks the oldest stamp *within a shard*, not globally. Cheap, and
//!   close enough: the cache only ever trades recomputation for memory,
//!   never correctness.
//!
//! The cache stores values behind `Arc`, so an evicted entry stays alive
//! for workers still holding it. Counters (hits / misses / evictions /
//! resident bytes) are relaxed atomics, snapshot into
//! [`crate::results::DiscoveryResult`] at the end of a run.

use ocdd_relation::ColumnId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Approximate heap footprint of a cached value, used for budgeting.
pub trait CacheWeight {
    /// Heap bytes owned by the value (the `Arc` and map-key overhead are
    /// added by the cache itself).
    fn weight_bytes(&self) -> usize;
}

impl CacheWeight for Vec<u32> {
    fn weight_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<u32>()
    }
}

/// Point-in-time counters of a [`SharedPrefixCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-key lookups that found an entry.
    pub hits: u64,
    /// Exact-key lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// Approximate bytes currently held by cached values.
    pub resident_bytes: u64,
    /// Entries currently cached.
    pub entries: u64,
}

struct Entry<V> {
    value: Arc<V>,
    bytes: usize,
    last_touch: u64,
}

type Shard<V> = Mutex<HashMap<Vec<ColumnId>, Entry<V>>>;

/// Concurrent prefix-keyed cache with a global byte budget.
pub struct SharedPrefixCache<V> {
    shards: Vec<Shard<V>>,
    budget_bytes: usize,
    clock: AtomicU64,
    resident: AtomicUsize,
    entries: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<Arc<crate::runtime::FaultPlan>>,
}

/// The cache is purely advisory — a worker that panicked while holding a
/// shard lock leaves behind a map that is still structurally valid (the
/// mutation under the lock is a single `HashMap` operation), so poisoning
/// is recovered instead of propagated: the surviving workers keep the
/// cache, they don't inherit the panic.
fn recover<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shard count: enough that a dozen workers rarely collide, small enough
/// that a budget sweep stays cheap.
const NUM_SHARDS: usize = 64;

/// Fixed per-entry overhead charged against the budget (map slot, `Arc`
/// control block, key header) on top of the key and value bytes.
const ENTRY_OVERHEAD: usize = 96;

impl<V: CacheWeight> SharedPrefixCache<V> {
    /// Create a cache bounded by `budget_bytes` of (approximate) value
    /// memory. A budget of 0 disables storage entirely — every lookup
    /// misses, which is occasionally useful for ablation.
    pub fn new(budget_bytes: usize) -> SharedPrefixCache<V> {
        SharedPrefixCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            budget_bytes,
            clock: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            #[cfg(any(test, feature = "fault-injection"))]
            fault: None,
        }
    }

    /// Attach a fault-injection plan (test / `fault-injection` builds
    /// only). Must be called before the cache is shared across workers.
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) fn set_fault_plan(&mut self, fault: Option<Arc<crate::runtime::FaultPlan>>) {
        self.fault = fault;
    }

    fn shard_for(&self, key: &[ColumnId]) -> &Shard<V> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % NUM_SHARDS]
    }

    /// Exact lookup; bumps the LRU stamp on hit.
    pub fn get(&self, key: &[ColumnId]) -> Option<Arc<V>> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = recover(self.shard_for(key).lock());
        match shard.get_mut(key) {
            Some(entry) => {
                entry.last_touch = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Longest cached *proper* prefix of `key` (silent: no hit/miss
    /// accounting — callers follow up with the decisive exact lookup or
    /// insert).
    pub fn longest_prefix(&self, key: &[ColumnId]) -> Option<(usize, Arc<V>)> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        for len in (1..key.len()).rev() {
            let prefix = &key[..len];
            let mut shard = recover(self.shard_for(prefix).lock());
            if let Some(entry) = shard.get_mut(prefix) {
                entry.last_touch = now;
                return Some((len, Arc::clone(&entry.value)));
            }
        }
        None
    }

    /// Insert (or overwrite) `key → value`, then enforce the byte budget.
    pub fn insert(&self, key: Vec<ColumnId>, value: Arc<V>) {
        let bytes =
            value.weight_bytes() + key.len() * std::mem::size_of::<ColumnId>() + ENTRY_OVERHEAD;
        if self.budget_bytes == 0 || bytes > self.budget_bytes {
            return; // would be evicted immediately; don't bother
        }
        // Fault injection: an "eviction storm" drops every insert on the
        // floor, forcing workers to recompute each prefix — results must
        // not change, only the counters.
        #[cfg(any(test, feature = "fault-injection"))]
        if self.fault.as_ref().is_some_and(|f| f.drops_cache_inserts()) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = recover(self.shard_for(&key).lock());
            if let Some(old) = shard.insert(
                key,
                Entry {
                    value,
                    bytes,
                    last_touch: now,
                },
            ) {
                self.resident.fetch_sub(old.bytes, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
            }
            self.resident.fetch_add(bytes, Ordering::Relaxed);
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        self.enforce_budget();
    }

    /// Drop least-recently-touched entries until the resident total fits
    /// the budget. Each round scans the shard minima and evicts the oldest
    /// stamp found — approximate because a concurrent hit may re-stamp the
    /// victim between the scan and the removal, which only costs a
    /// recomputation later, never correctness.
    fn enforce_budget(&self) {
        // Bounded sweep: at worst every entry is evicted once.
        let mut guard = self.entries.load(Ordering::Relaxed) + 1;
        while self.resident.load(Ordering::Relaxed) > self.budget_bytes && guard > 0 {
            guard -= 1;
            let mut victim: Option<(usize, Vec<ColumnId>, u64)> = None;
            for (s, shard) in self.shards.iter().enumerate() {
                let shard = recover(shard.lock());
                if let Some((k, e)) = shard.iter().min_by_key(|(_, e)| e.last_touch) {
                    if victim.as_ref().is_none_or(|(_, _, t)| e.last_touch < *t) {
                        victim = Some((s, k.clone(), e.last_touch));
                    }
                }
            }
            let Some((s, key, _)) = victim else { break };
            let mut shard = recover(self.shards[s].lock());
            if let Some(e) = shard.remove(&key) {
                self.resident.fetch_sub(e.bytes, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed) as u64,
            entries: self.entries.load(Ordering::Relaxed) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(vals: &[u32]) -> Arc<Vec<u32>> {
        Arc::new(vals.to_vec())
    }

    #[test]
    fn get_after_insert_hits() {
        let cache: SharedPrefixCache<Vec<u32>> = SharedPrefixCache::new(1 << 20);
        assert!(cache.get(&[0]).is_none());
        cache.insert(vec![0], idx(&[2, 0, 1]));
        assert_eq!(cache.get(&[0]).unwrap().as_slice(), &[2, 0, 1]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn longest_prefix_finds_deepest() {
        let cache: SharedPrefixCache<Vec<u32>> = SharedPrefixCache::new(1 << 20);
        cache.insert(vec![3], idx(&[0]));
        cache.insert(vec![3, 1], idx(&[1]));
        let (len, v) = cache.longest_prefix(&[3, 1, 4]).unwrap();
        assert_eq!(len, 2);
        assert_eq!(v.as_slice(), &[1]);
        // A proper prefix only: the full key is not considered.
        assert!(cache.longest_prefix(&[3]).is_none());
    }

    #[test]
    fn budget_evicts_oldest() {
        // Budget for roughly two entries of 100 u32s each.
        let per_entry = 100 * 4 + 8 + ENTRY_OVERHEAD;
        let cache: SharedPrefixCache<Vec<u32>> = SharedPrefixCache::new(2 * per_entry + 16);
        let big = idx(&vec![7u32; 100]);
        cache.insert(vec![0], Arc::clone(&big));
        cache.insert(vec![1], Arc::clone(&big));
        // Touch [1] so [0] is the LRU victim.
        assert!(cache.get(&[1]).is_some());
        cache.insert(vec![2], big);
        let s = cache.stats();
        assert!(s.evictions >= 1, "stats: {s:?}");
        assert!(s.resident_bytes <= (2 * per_entry + 16) as u64);
        // The newest entry survives.
        assert!(cache.get(&[2]).is_some());
    }

    #[test]
    fn zero_budget_stores_nothing() {
        let cache: SharedPrefixCache<Vec<u32>> = SharedPrefixCache::new(0);
        cache.insert(vec![0], idx(&[1, 2, 3]));
        assert!(cache.get(&[0]).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn oversized_value_is_rejected_not_thrashed() {
        let cache: SharedPrefixCache<Vec<u32>> = SharedPrefixCache::new(64);
        cache.insert(vec![0], idx(&vec![0u32; 1000]));
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: Arc<SharedPrefixCache<Vec<u32>>> = Arc::new(SharedPrefixCache::new(1 << 22));
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200usize {
                        let key = vec![(i % 17), t % 3];
                        match cache.get(&key) {
                            Some(v) => assert_eq!(v.len(), key[0] + 1),
                            None => {
                                cache.insert(key.clone(), idx(&vec![9u32; key[0] + 1]));
                            }
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert!(s.hits > 0 && s.entries > 0);
        assert_eq!(s.evictions, 0, "budget is ample: {s:?}");
    }
}
