//! A sharded, byte-budgeted prefix cache shared by every worker of a run.
//!
//! The per-worker caches ([`crate::check::SortCache`],
//! [`crate::sorted_partitions::PartitionChecker`]) rebuild the same prefix
//! artefacts once *per thread*: in the parallel modes the sorted index (or
//! partition) of a popular prefix like `[A]` is recomputed by every worker
//! that meets it. [`SharedPrefixCache`] lifts that store to the run level:
//! one concurrent map, keyed by attribute-list prefix, visible to all
//! workers of `StaticQueues` and `Rayon` runs.
//!
//! Design:
//!
//! * **Sharding** — keys hash to one of a fixed number of shards, each a
//!   `Mutex<HashMap>`. Workers touching different prefixes never contend.
//! * **Byte budget** — each entry carries its approximate heap size (via
//!   [`CacheWeight`]). When the resident total exceeds the budget, shards
//!   are swept round-robin and their least-recently-touched entries are
//!   dropped until the total fits again.
//! * **Approximate LRU** — a global atomic clock stamps every hit; eviction
//!   picks the oldest stamp *within a shard*, not globally. Cheap, and
//!   close enough: the cache only ever trades recomputation for memory,
//!   never correctness.
//!
//! The cache stores values behind `Arc`, so an evicted entry stays alive
//! for workers still holding it. Counters (hits / misses / evictions /
//! resident bytes) are relaxed atomics, snapshot into
//! [`crate::results::DiscoveryResult`] at the end of a run.

use crate::sync_shim::{AtomicU64, AtomicUsize, Mutex};
use ocdd_relation::ColumnId;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Approximate heap footprint of a cached value, used for budgeting.
pub trait CacheWeight {
    /// Heap bytes owned by the value (the `Arc` and map-key overhead are
    /// added by the cache itself).
    fn weight_bytes(&self) -> usize;
}

impl CacheWeight for Vec<u32> {
    fn weight_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<u32>()
    }
}

/// Point-in-time counters of a [`SharedPrefixCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-key lookups that found an entry.
    pub hits: u64,
    /// Exact-key lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// Approximate bytes currently held by cached values.
    pub resident_bytes: u64,
    /// Entries currently cached.
    pub entries: u64,
}

struct Entry<V> {
    value: Arc<V>,
    bytes: usize,
    last_touch: u64,
}

type Shard<V> = Mutex<HashMap<Vec<ColumnId>, Entry<V>>>;

/// Concurrent prefix-keyed cache with a global byte budget.
pub struct SharedPrefixCache<V> {
    shards: Vec<Shard<V>>,
    budget_bytes: usize,
    clock: AtomicU64,
    resident: AtomicUsize,
    entries: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<Arc<crate::runtime::FaultPlan>>,
}

/// The cache is purely advisory — a worker that panicked while holding a
/// shard lock leaves behind a map that is still structurally valid (the
/// mutation under the lock is a single `HashMap` operation), so poisoning
/// is recovered instead of propagated: the surviving workers keep the
/// cache, they don't inherit the panic.
fn recover<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shard count: enough that a dozen workers rarely collide, small enough
/// that a budget sweep stays cheap.
const NUM_SHARDS: usize = 64;

/// Fixed per-entry overhead charged against the budget (map slot, `Arc`
/// control block, key header) on top of the key and value bytes.
const ENTRY_OVERHEAD: usize = 96;

impl<V: CacheWeight> SharedPrefixCache<V> {
    /// Create a cache bounded by `budget_bytes` of (approximate) value
    /// memory. A budget of 0 disables storage entirely — every lookup
    /// misses, which is occasionally useful for ablation.
    pub fn new(budget_bytes: usize) -> SharedPrefixCache<V> {
        SharedPrefixCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            budget_bytes,
            clock: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            #[cfg(any(test, feature = "fault-injection"))]
            fault: None,
        }
    }

    /// Attach a fault-injection plan (test / `fault-injection` builds
    /// only). Must be called before the cache is shared across workers.
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) fn set_fault_plan(&mut self, fault: Option<Arc<crate::runtime::FaultPlan>>) {
        self.fault = fault;
    }

    // lint: allow(panic-reachability, the index is reduced modulo NUM_SHARDS, the length of the shard array)
    fn shard_for(&self, key: &[ColumnId]) -> &Shard<V> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % NUM_SHARDS]
    }

    /// Exact lookup; bumps the LRU stamp on hit.
    pub fn get(&self, key: &[ColumnId]) -> Option<Arc<V>> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = recover(self.shard_for(key).lock());
        match shard.get_mut(key) {
            Some(entry) => {
                entry.last_touch = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Longest cached *proper* prefix of `key` (silent: no hit/miss
    /// accounting — callers follow up with the decisive exact lookup or
    /// insert).
    // lint: allow(panic-reachability, &key[..len] takes proper prefixes with len < key.len() from the loop range)
    pub fn longest_prefix(&self, key: &[ColumnId]) -> Option<(usize, Arc<V>)> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        for len in (1..key.len()).rev() {
            let prefix = &key[..len];
            let mut shard = recover(self.shard_for(prefix).lock());
            if let Some(entry) = shard.get_mut(prefix) {
                entry.last_touch = now;
                return Some((len, Arc::clone(&entry.value)));
            }
        }
        None
    }

    /// Insert (or overwrite) `key → value`, then enforce the byte budget.
    pub fn insert(&self, key: Vec<ColumnId>, value: Arc<V>) {
        let bytes =
            value.weight_bytes() + key.len() * std::mem::size_of::<ColumnId>() + ENTRY_OVERHEAD;
        if self.budget_bytes == 0 || bytes > self.budget_bytes {
            return; // would be evicted immediately; don't bother
        }
        // Fault injection: an "eviction storm" drops every insert on the
        // floor, forcing workers to recompute each prefix — results must
        // not change, only the counters.
        #[cfg(any(test, feature = "fault-injection"))]
        if self.fault.as_ref().is_some_and(|f| f.drops_cache_inserts()) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = recover(self.shard_for(&key).lock());
            // lint: allow(lock-order, name-based call resolution false edge: the receiver is the shard's plain HashMap, whose insert acquires nothing)
            if let Some(old) = shard.insert(
                key,
                Entry {
                    value,
                    bytes,
                    last_touch: now,
                },
            ) {
                self.resident.fetch_sub(old.bytes, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
            }
            self.resident.fetch_add(bytes, Ordering::Relaxed);
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        self.enforce_budget();
    }

    /// Drop least-recently-touched entries until the resident total fits
    /// the budget. Each round scans the shard minima and evicts the oldest
    /// stamp found — approximate because a concurrent hit may re-stamp the
    /// victim between the scan and the removal, which only costs a
    /// recomputation later, never correctness.
    fn enforce_budget(&self) {
        // Bounded sweep: at worst every entry is evicted once.
        let mut guard = self.entries.load(Ordering::Relaxed) + 1;
        while self.resident.load(Ordering::Relaxed) > self.budget_bytes && guard > 0 {
            guard -= 1;
            let mut victim: Option<(usize, Vec<ColumnId>, u64)> = None;
            for (s, shard) in self.shards.iter().enumerate() {
                let shard = recover(shard.lock());
                if let Some((k, e)) = shard.iter().min_by_key(|(_, e)| e.last_touch) {
                    if victim.as_ref().is_none_or(|(_, _, t)| e.last_touch < *t) {
                        // lint: allow(hot-loop-alloc, eviction slow path; the key clone must outlive the shard lock, which is released before removal)
                        victim = Some((s, k.clone(), e.last_touch));
                    }
                }
            }
            let Some((s, key, _)) = victim else { break };
            let Some(slot) = self.shards.get(s) else {
                break;
            };
            let mut shard = recover(slot.lock());
            if let Some(e) = shard.remove(&key) {
                self.resident.fetch_sub(e.bytes, Ordering::Relaxed);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed) as u64,
            entries: self.entries.load(Ordering::Relaxed) as u64,
        }
    }
}

// ---------------------------------------------------------------------------
// Epoch-published cache for the work-stealing scheduler
// ---------------------------------------------------------------------------

struct EpochEntry<V> {
    value: Arc<V>,
    bytes: usize,
    /// Monotone insertion stamp; eviction drops the oldest stamps first.
    /// Reads never re-stamp (they are lock-free on an immutable snapshot),
    /// so this is FIFO rather than LRU — the price of contention-free
    /// lookups, and an acceptable one because prefixes computed in early
    /// levels are exactly the ones that stop being useful first.
    epoch: u64,
}

// Manual impl: `V` itself need not be `Clone`, entries share it by `Arc`.
impl<V> Clone for EpochEntry<V> {
    fn clone(&self) -> Self {
        EpochEntry {
            value: Arc::clone(&self.value),
            bytes: self.bytes,
            epoch: self.epoch,
        }
    }
}

/// Immutable point-in-time view of an [`EpochPrefixCache`]. Cloning the
/// snapshot is one `Arc` bump; lookups on it take no lock and touch no
/// shared counter — workers tally hits and misses locally and flush them
/// through [`EpochPrefixCache::record_lookups`] at level boundaries.
pub struct EpochSnapshot<V> {
    map: Arc<HashMap<Vec<ColumnId>, EpochEntry<V>>>,
}

// Manual impl: one `Arc` bump, no `V: Clone` bound.
impl<V> Clone for EpochSnapshot<V> {
    fn clone(&self) -> Self {
        EpochSnapshot {
            map: Arc::clone(&self.map),
        }
    }
}

impl<V> EpochSnapshot<V> {
    /// Exact lookup. No accounting side effects.
    pub fn get(&self, key: &[ColumnId]) -> Option<Arc<V>> {
        self.map.get(key).map(|e| Arc::clone(&e.value))
    }

    /// Longest *proper* prefix of `key` present in the snapshot.
    // lint: allow(panic-reachability, &key[..len] takes proper prefixes with len < key.len() from the loop range)
    pub fn longest_prefix(&self, key: &[ColumnId]) -> Option<(usize, Arc<V>)> {
        for len in (1..key.len()).rev() {
            if let Some(e) = self.map.get(&key[..len]) {
                return Some((len, Arc::clone(&e.value)));
            }
        }
        None
    }

    /// Entries visible in this snapshot.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Read-mostly prefix cache for the level-synchronous work-stealing
/// scheduler ([`crate::config::ParallelMode::WorkStealing`]).
///
/// Where [`SharedPrefixCache`] takes a shard lock on every lookup, this
/// cache publishes an **immutable snapshot** once per level: workers clone
/// the snapshot `Arc` when the level starts, read it lock-free for the
/// whole level, and buffer their own inserts locally. Between levels the
/// driver drains the per-worker buffers *in worker order* and calls
/// [`publish`](EpochPrefixCache::publish), which builds the next snapshot
/// (old entries + new inserts, byte budget enforced by evicting the oldest
/// insertion epochs) and swaps it in atomically. Publishing in a fixed
/// order keeps the cache contents — and therefore the eviction sequence —
/// deterministic, although the cache is advisory either way.
pub struct EpochPrefixCache<V> {
    snapshot: Mutex<EpochSnapshot<V>>,
    budget_bytes: usize,
    next_epoch: AtomicU64,
    resident: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    publishes: AtomicU64,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<Arc<crate::runtime::FaultPlan>>,
}

impl<V: CacheWeight> EpochPrefixCache<V> {
    /// Cache bounded by `budget_bytes` of approximate value memory. A zero
    /// budget stores nothing (every publish is dropped).
    pub fn new(budget_bytes: usize) -> EpochPrefixCache<V> {
        EpochPrefixCache {
            snapshot: Mutex::new(EpochSnapshot {
                map: Arc::new(HashMap::new()),
            }),
            budget_bytes,
            next_epoch: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            #[cfg(any(test, feature = "fault-injection"))]
            fault: None,
        }
    }

    /// Attach a fault-injection plan (test / `fault-injection` builds
    /// only). Must be called before the cache is shared across workers.
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) fn set_fault_plan(&mut self, fault: Option<Arc<crate::runtime::FaultPlan>>) {
        self.fault = fault;
    }

    /// Clone the current snapshot (one lock, one `Arc` bump — called once
    /// per worker per level, never per check).
    pub fn snapshot(&self) -> EpochSnapshot<V> {
        recover(self.snapshot.lock()).clone()
    }

    /// Merge buffered inserts into a fresh snapshot and swap it in. The
    /// iteration order of `inserts` decides epoch stamps (and with them the
    /// eviction order), so callers drain worker buffers in a fixed order.
    /// Later duplicates of a key overwrite earlier ones.
    pub fn publish<I>(&self, inserts: I)
    where
        I: IntoIterator<Item = (Vec<ColumnId>, Arc<V>)>,
    {
        self.publishes.fetch_add(1, Ordering::Relaxed);
        // Fault injection: the eviction-storm plan drops every published
        // insert, so the snapshot never grows — results must not change.
        #[cfg(any(test, feature = "fault-injection"))]
        let storm = self.fault.as_ref().is_some_and(|f| f.drops_cache_inserts());
        #[cfg(not(any(test, feature = "fault-injection")))]
        let storm = false;

        let mut guard = recover(self.snapshot.lock());
        let mut map: HashMap<Vec<ColumnId>, EpochEntry<V>> = HashMap::clone(&guard.map);
        let mut resident: usize = self.resident.load(Ordering::Relaxed);
        let mut evicted: u64 = 0;
        for (key, value) in inserts {
            let bytes =
                value.weight_bytes() + key.len() * std::mem::size_of::<ColumnId>() + ENTRY_OVERHEAD;
            if storm || self.budget_bytes == 0 || bytes > self.budget_bytes {
                evicted += 1;
                continue;
            }
            let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
            if let Some(old) = map.insert(
                key,
                EpochEntry {
                    value,
                    bytes,
                    epoch,
                },
            ) {
                resident -= old.bytes;
            }
            resident += bytes;
        }
        // Enforce the byte budget by dropping the oldest insertion epochs.
        if resident > self.budget_bytes {
            let mut by_age: Vec<(u64, Vec<ColumnId>)> =
                map.iter().map(|(k, e)| (e.epoch, k.clone())).collect();
            by_age.sort_unstable();
            for (_, key) in by_age {
                if resident <= self.budget_bytes {
                    break;
                }
                if let Some(e) = map.remove(&key) {
                    resident -= e.bytes;
                    evicted += 1;
                }
            }
        }
        self.resident.store(resident, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        *guard = EpochSnapshot { map: Arc::new(map) };
    }

    /// Flush a worker's locally-tallied lookup counters — called at level
    /// boundaries, never from the check hot path (satellite of ISSUE 3:
    /// stats via relaxed atomics aggregated between levels, not under
    /// locks).
    pub fn record_lookups(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed) as u64,
            entries: recover(self.snapshot.lock()).map.len() as u64,
        }
    }

    /// Number of publishes (≈ levels × workers with pending inserts).
    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }
}

/// Interleaving models of the snapshot-publish protocol, run by the loom
/// lane (`cargo test -p ocdd-core --features loom`, `OCDD_CI_LOOM=1
/// ./ci.sh`). See `crates/shims/loom` and DESIGN.md §10.
#[cfg(all(test, feature = "loom"))]
mod loom_models {
    use super::*;

    /// A reader snapshots while a two-entry publish is in flight. On every
    /// interleaving the snapshot is frozen — it holds either nothing or
    /// the complete publish, never a torn half — and a snapshot taken
    /// after the publish completes sees both entries.
    #[test]
    fn publish_is_atomic_with_respect_to_snapshots() {
        loom::model(|| {
            let cache = Arc::new(EpochPrefixCache::<Vec<u32>>::new(1 << 16));
            let c2 = Arc::clone(&cache);
            let reader = loom::thread::spawn(move || {
                let snap = c2.snapshot();
                match snap.len() {
                    0 => assert!(snap.get(&[0]).is_none(), "empty snapshot stays empty"),
                    2 => {
                        let a = snap.get(&[0]).expect("published entry [0]");
                        let b = snap.get(&[0, 1]).expect("published entry [0,1]");
                        assert_eq!((a.as_slice(), b.as_slice()), (&[1u32][..], &[2u32][..]));
                    }
                    n => panic!("torn snapshot with {n} entries"),
                }
            });
            cache.publish(vec![
                (vec![0], Arc::new(vec![1u32])),
                (vec![0, 1], Arc::new(vec![2u32])),
            ]);
            reader.join().expect("reader finishes");
            assert_eq!(cache.snapshot().len(), 2, "publish fully visible");
        });
    }

    /// Two workers flush their locally-tallied lookup counters while a
    /// third party reads `stats()`: no flushed increment is ever lost.
    #[test]
    fn record_lookups_flushes_are_not_lost() {
        loom::model(|| {
            let cache = Arc::new(EpochPrefixCache::<Vec<u32>>::new(1 << 16));
            let c2 = Arc::clone(&cache);
            let flusher = loom::thread::spawn(move || c2.record_lookups(5, 1));
            cache.record_lookups(7, 3);
            flusher.join().expect("flusher finishes");
            let s = cache.stats();
            assert_eq!((s.hits, s.misses), (12, 4));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(vals: &[u32]) -> Arc<Vec<u32>> {
        Arc::new(vals.to_vec())
    }

    #[test]
    fn get_after_insert_hits() {
        let cache: SharedPrefixCache<Vec<u32>> = SharedPrefixCache::new(1 << 20);
        assert!(cache.get(&[0]).is_none());
        cache.insert(vec![0], idx(&[2, 0, 1]));
        assert_eq!(cache.get(&[0]).unwrap().as_slice(), &[2, 0, 1]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn longest_prefix_finds_deepest() {
        let cache: SharedPrefixCache<Vec<u32>> = SharedPrefixCache::new(1 << 20);
        cache.insert(vec![3], idx(&[0]));
        cache.insert(vec![3, 1], idx(&[1]));
        let (len, v) = cache.longest_prefix(&[3, 1, 4]).unwrap();
        assert_eq!(len, 2);
        assert_eq!(v.as_slice(), &[1]);
        // A proper prefix only: the full key is not considered.
        assert!(cache.longest_prefix(&[3]).is_none());
    }

    #[test]
    fn budget_evicts_oldest() {
        // Budget for roughly two entries of 100 u32s each.
        let per_entry = 100 * 4 + 8 + ENTRY_OVERHEAD;
        let cache: SharedPrefixCache<Vec<u32>> = SharedPrefixCache::new(2 * per_entry + 16);
        let big = idx(&vec![7u32; 100]);
        cache.insert(vec![0], Arc::clone(&big));
        cache.insert(vec![1], Arc::clone(&big));
        // Touch [1] so [0] is the LRU victim.
        assert!(cache.get(&[1]).is_some());
        cache.insert(vec![2], big);
        let s = cache.stats();
        assert!(s.evictions >= 1, "stats: {s:?}");
        assert!(s.resident_bytes <= (2 * per_entry + 16) as u64);
        // The newest entry survives.
        assert!(cache.get(&[2]).is_some());
    }

    #[test]
    fn zero_budget_stores_nothing() {
        let cache: SharedPrefixCache<Vec<u32>> = SharedPrefixCache::new(0);
        cache.insert(vec![0], idx(&[1, 2, 3]));
        assert!(cache.get(&[0]).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn oversized_value_is_rejected_not_thrashed() {
        let cache: SharedPrefixCache<Vec<u32>> = SharedPrefixCache::new(64);
        cache.insert(vec![0], idx(&vec![0u32; 1000]));
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn epoch_snapshot_is_isolated_until_publish() {
        let cache: EpochPrefixCache<Vec<u32>> = EpochPrefixCache::new(1 << 20);
        let before = cache.snapshot();
        assert!(before.is_empty());
        cache.publish(vec![(vec![0], idx(&[2, 0, 1]))]);
        // The old snapshot is frozen; a fresh one sees the publish.
        assert!(before.get(&[0]).is_none());
        let after = cache.snapshot();
        assert_eq!(after.get(&[0]).unwrap().as_slice(), &[2, 0, 1]);
        assert_eq!(after.len(), 1);
    }

    #[test]
    fn epoch_longest_prefix_finds_deepest_proper_prefix() {
        let cache: EpochPrefixCache<Vec<u32>> = EpochPrefixCache::new(1 << 20);
        cache.publish(vec![(vec![3], idx(&[0])), (vec![3, 1], idx(&[1]))]);
        let snap = cache.snapshot();
        let (len, v) = snap.longest_prefix(&[3, 1, 4]).unwrap();
        assert_eq!((len, v.as_slice()), (2, &[1u32][..]));
        assert!(snap.longest_prefix(&[3]).is_none(), "proper prefixes only");
    }

    #[test]
    fn epoch_budget_evicts_oldest_insertion_first() {
        let per_entry = 100 * 4 + 8 + ENTRY_OVERHEAD;
        let cache: EpochPrefixCache<Vec<u32>> = EpochPrefixCache::new(2 * per_entry + 16);
        let big = idx(&vec![7u32; 100]);
        cache.publish(vec![
            (vec![0], Arc::clone(&big)),
            (vec![1], Arc::clone(&big)),
            (vec![2], Arc::clone(&big)),
        ]);
        let snap = cache.snapshot();
        assert!(snap.get(&[0]).is_none(), "oldest epoch is the victim");
        assert!(snap.get(&[1]).is_some() && snap.get(&[2]).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= (2 * per_entry + 16) as u64);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn epoch_publish_overwrites_duplicate_keys() {
        let cache: EpochPrefixCache<Vec<u32>> = EpochPrefixCache::new(1 << 20);
        cache.publish(vec![(vec![5], idx(&[1])), (vec![5], idx(&[2, 3]))]);
        let snap = cache.snapshot();
        assert_eq!(snap.get(&[5]).unwrap().as_slice(), &[2, 3]);
        assert_eq!(snap.len(), 1);
        let resident = cache.stats().resident_bytes;
        // Resident accounting reflects only the surviving value.
        assert_eq!(
            resident as usize,
            2 * 4 + std::mem::size_of::<ColumnId>() + ENTRY_OVERHEAD
        );
    }

    #[test]
    fn epoch_lookup_stats_flushed_at_level_boundaries() {
        let cache: EpochPrefixCache<Vec<u32>> = EpochPrefixCache::new(1 << 20);
        cache.record_lookups(7, 3);
        cache.record_lookups(0, 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (7, 5));
    }

    #[test]
    fn epoch_zero_budget_stores_nothing() {
        let cache: EpochPrefixCache<Vec<u32>> = EpochPrefixCache::new(0);
        cache.publish(vec![(vec![0], idx(&[1, 2, 3]))]);
        assert!(cache.snapshot().is_empty());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn epoch_fault_storm_drops_published_inserts() {
        let mut cache: EpochPrefixCache<Vec<u32>> = EpochPrefixCache::new(1 << 20);
        let mut plan = crate::runtime::FaultPlan::default();
        plan.drop_cache_inserts = true;
        cache.set_fault_plan(Some(Arc::new(plan)));
        cache.publish(vec![(vec![0], idx(&[1]))]);
        assert!(cache.snapshot().is_empty());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.publishes(), 1);
    }

    #[test]
    fn epoch_concurrent_readers_race_free() {
        let cache: Arc<EpochPrefixCache<Vec<u32>>> = Arc::new(EpochPrefixCache::new(1 << 22));
        cache.publish((0..32u32).map(|i| (vec![i as ColumnId], idx(&[i; 8]))));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let snap = cache.snapshot();
                    for i in 0..32u32 {
                        assert_eq!(snap.get(&[i as ColumnId]).unwrap().len(), 8);
                    }
                    cache.record_lookups(32, 0);
                });
            }
        });
        assert_eq!(cache.stats().hits, 128);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: Arc<SharedPrefixCache<Vec<u32>>> = Arc::new(SharedPrefixCache::new(1 << 22));
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200usize {
                        let key = vec![(i % 17), t % 3];
                        match cache.get(&key) {
                            Some(v) => assert_eq!(v.len(), key[0] + 1),
                            None => {
                                cache.insert(key.clone(), idx(&vec![9u32; key[0] + 1]));
                            }
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert!(s.hits > 0 && s.entries > 0);
        assert_eq!(s.evictions, 0, "budget is ample: {s:?}");
    }
}
