//! Interestingness-guided discovery (§5.4).
//!
//! Quasi-constant columns (few distinct values) blow up the candidate tree:
//! they participate in a huge number of valid OCDs without being pruned by
//! column reduction. The paper measures column diversity with Shannon
//! entropy (Definition 5.1) and proposes restricting discovery to the most
//! diverse columns. This module packages that strategy.

use crate::config::DiscoveryConfig;
use crate::results::DiscoveryResult;
use crate::search::discover;
use ocdd_relation::stats::{all_column_stats, columns_by_decreasing_entropy, ColumnStats};
use ocdd_relation::{ColumnId, Relation};

/// A column ranked by interestingness.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedColumn {
    /// Column id in the original relation.
    pub column: ColumnId,
    /// Column name.
    pub name: String,
    /// Shannon entropy (nats).
    pub entropy: f64,
    /// Distinct value count.
    pub distinct: usize,
}

/// Rank all columns by decreasing entropy.
pub fn rank_columns(rel: &Relation) -> Vec<RankedColumn> {
    let stats: Vec<ColumnStats> = all_column_stats(rel);
    let mut ranked: Vec<RankedColumn> = stats
        .into_iter()
        .map(|s| RankedColumn {
            column: s.column,
            name: rel.meta(s.column).name.clone(),
            entropy: s.entropy,
            distinct: s.distinct,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.entropy
            .partial_cmp(&a.entropy)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.column.cmp(&b.column))
    });
    ranked
}

/// The `k` most diverse (highest-entropy) columns.
pub fn top_k_columns(rel: &Relation, k: usize) -> Vec<ColumnId> {
    columns_by_decreasing_entropy(rel)
        .into_iter()
        .take(k)
        .collect()
}

/// Identify quasi-constant columns: non-constant columns with at most
/// `max_distinct` distinct values. These are the columns §5.3.2/§5.4
/// blames for the candidate-tree blow-up.
pub fn quasi_constant_columns(rel: &Relation, max_distinct: usize) -> Vec<ColumnId> {
    (0..rel.num_columns())
        .filter(|&c| {
            let d = rel.meta(c).distinct;
            d > 1 && d <= max_distinct
        })
        .collect()
}

/// Result of an entropy-guided run: the projection used plus the discovery
/// output over it. Column ids inside `result` refer to `projection`
/// positions; `selected` maps them back to the original relation.
#[derive(Debug)]
pub struct GuidedDiscovery {
    /// Original ids of the selected columns, in projection order.
    pub selected: Vec<ColumnId>,
    /// Discovery output over the projected relation.
    pub result: DiscoveryResult,
}

/// Discover dependencies over only the `k` most diverse columns.
pub fn discover_top_k(
    rel: &Relation,
    k: usize,
    config: &DiscoveryConfig,
) -> ocdd_relation::Result<GuidedDiscovery> {
    let selected = top_k_columns(rel, k);
    let projected = rel.project(&selected)?;
    let result = discover(&projected, config);
    Ok(GuidedDiscovery { selected, result })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::{Relation, Value};

    fn wide_relation() -> Relation {
        Relation::from_columns(vec![
            ("key".to_string(), (0..8).map(Value::Int).collect()),
            (
                "quasi".to_string(),
                vec![0, 0, 0, 1, 1, 1, 1, 1]
                    .into_iter()
                    .map(Value::Int)
                    .collect(),
            ),
            ("konst".to_string(), vec![Value::Int(3); 8]),
            (
                "mid".to_string(),
                vec![0, 0, 1, 1, 2, 2, 3, 3]
                    .into_iter()
                    .map(Value::Int)
                    .collect(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn ranking_is_by_entropy_desc() {
        let ranked = rank_columns(&wide_relation());
        let names: Vec<&str> = ranked.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["key", "mid", "quasi", "konst"]);
        assert!(ranked[0].entropy > ranked[1].entropy);
        assert_eq!(ranked[3].entropy, 0.0);
    }

    #[test]
    fn top_k_selects_most_diverse() {
        let r = wide_relation();
        assert_eq!(top_k_columns(&r, 2), vec![0, 3]);
        assert_eq!(top_k_columns(&r, 0), Vec::<usize>::new());
        // k larger than the column count returns everything.
        assert_eq!(top_k_columns(&r, 10).len(), 4);
    }

    #[test]
    fn quasi_constant_detection() {
        let r = wide_relation();
        // max_distinct = 3: "quasi" (2 distinct) qualifies; "konst" is
        // constant (excluded); "mid" has 4 distinct (excluded).
        assert_eq!(quasi_constant_columns(&r, 3), vec![1]);
        assert_eq!(quasi_constant_columns(&r, 4), vec![1, 3]);
    }

    #[test]
    fn guided_discovery_runs_on_projection() {
        let r = wide_relation();
        let guided = discover_top_k(&r, 2, &DiscoveryConfig::default()).unwrap();
        assert_eq!(guided.selected, vec![0, 3]);
        // "key" orders "mid" in the projection: OD [0] -> [1] there.
        assert!(guided
            .result
            .ods
            .iter()
            .any(|od| od.to_string() == "[0] -> [1]"));
    }
}
