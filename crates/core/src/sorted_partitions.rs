//! Sorted-partition candidate checking — the linear-row-scaling method the
//! paper points at but leaves out of scope (§5.3.1: *"Previous work …
//! performs the check of dependency candidates with sorted partitions
//! computed from the data. This method could have been re-implemented in
//! our approach as well"*).
//!
//! A [`SortedPartition`] of an attribute list `X` is the sequence of
//! `X`-equivalence classes **in `X`-sorted order**. Once available, an OD
//! check `X → Y` is a single linear pass — no per-candidate sort:
//!
//! * **split** — some class is not constant on `Y`;
//! * **swap** — the lexicographic maximum of a class's `Y` projection
//!   exceeds the minimum of the next class's.
//!
//! Partitions are built once per column and *refined* incrementally: the
//! sorted partition of `XA` is obtained from `X`'s by two stable counting
//! scatters over the rank codes (by code, then by class id) — `O(m + d)`
//! for `d` distinct values, never a comparison sort. A
//! [`PartitionChecker`] memoizes partitions per list prefix, so sibling
//! candidates sharing a prefix pay for it once; with
//! [`PartitionChecker::with_shared`] the memo is a run-wide
//! [`SharedPrefixCache`] reused across workers.

use crate::check::{CheckOutcome, EpochTier};
use crate::deps::AttrList;
use crate::shared_cache::{CacheWeight, EpochPrefixCache, SharedPrefixCache};
use ocdd_relation::scan::{self, BlockEq, BlockLex, ScanKernel, BLOCK_PAIRS};
use ocdd_relation::{ColumnId, Relation};
use std::collections::HashMap;
use std::sync::Arc;

/// Equivalence classes of an attribute list, ordered by the list's
/// lexicographic order. Row ids within a class are in arbitrary order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedPartition {
    /// Concatenated row ids, class by class.
    rows: Vec<u32>,
    /// Start offset of each class within `rows` (plus a final sentinel).
    offsets: Vec<u32>,
}

impl SortedPartition {
    /// The partition of the empty list: a single class with every row.
    pub fn unit(num_rows: usize) -> SortedPartition {
        SortedPartition {
            rows: (0..num_rows as u32).collect(),
            offsets: vec![0, num_rows as u32],
        }
    }

    /// Build the partition of a single column from its rank codes.
    pub fn for_column(rel: &Relation, col: ColumnId) -> SortedPartition {
        SortedPartition::unit(rel.num_rows()).refined(rel, col)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Iterate the classes in sorted order.
    // lint: allow(panic-reachability, offsets is a monotone fence vector bounded by rows.len(), so every w[0]..w[1] range is in bounds)
    pub fn classes(&self) -> impl Iterator<Item = &[u32]> {
        self.offsets
            .windows(2)
            .map(|w| &self.rows[w[0] as usize..w[1] as usize])
    }

    /// Refine by one more column: each class is reordered by `col`'s rank
    /// codes and split at rank changes. The result is the sorted partition
    /// of `X ++ [col]` when `self` is the partition of `X`.
    ///
    /// Because codes are dense ranks, the reorder is two stable counting
    /// scatters — first by the new column's code, then by the old class id
    /// (stability keeps the code order inside every class) — so a
    /// refinement costs `O(m + d)` regardless of class sizes.
    // lint: allow(panic-reachability, offsets fences are bounded by rows.len() and every scatter target is sized by its counting pass)
    pub fn refined(&self, rel: &Relation, col: ColumnId) -> SortedPartition {
        let m = self.rows.len();
        if m == 0 {
            return SortedPartition {
                rows: Vec::new(),
                offsets: vec![0],
            };
        }
        let codes = rel.codes(col);
        let d = rel.meta(col).distinct.max(1);
        let num_classes = self.num_classes();

        let mut class_of = vec![0u32; m];
        for (cid, w) in self.offsets.windows(2).enumerate() {
            for slot in &mut class_of[w[0] as usize..w[1] as usize] {
                *slot = cid as u32;
            }
        }

        // Pass 1: stable counting scatter by the new column's code.
        let mut starts = vec![0u32; d + 1];
        for &r in &self.rows {
            starts[codes[r as usize] as usize + 1] += 1;
        }
        for i in 1..=d {
            starts[i] += starts[i - 1];
        }
        let mut rows_by_code = vec![0u32; m];
        let mut cls_by_code = vec![0u32; m];
        for (i, &r) in self.rows.iter().enumerate() {
            let slot = &mut starts[codes[r as usize] as usize];
            rows_by_code[*slot as usize] = r;
            cls_by_code[*slot as usize] = class_of[i];
            *slot += 1;
        }

        // Pass 2: stable counting scatter by old class id — classes regain
        // dominance, code order survives within each by stability.
        let mut starts = vec![0u32; num_classes + 1];
        for &c in &cls_by_code {
            starts[c as usize + 1] += 1;
        }
        for i in 1..=num_classes {
            starts[i] += starts[i - 1];
        }
        let mut rows = vec![0u32; m];
        let mut cls = vec![0u32; m];
        for i in 0..m {
            let slot = &mut starts[cls_by_code[i] as usize];
            rows[*slot as usize] = rows_by_code[i];
            cls[*slot as usize] = cls_by_code[i];
            *slot += 1;
        }

        // Class boundaries: wherever the old class or the new code changes.
        let mut offsets = Vec::with_capacity(self.offsets.len());
        offsets.push(0u32);
        for i in 1..m {
            if cls[i] != cls[i - 1] || codes[rows[i] as usize] != codes[rows[i - 1] as usize] {
                offsets.push(i as u32);
            }
        }
        offsets.push(m as u32);
        SortedPartition { rows, offsets }
    }

    /// Check the OD `X → rhs` where `self` is the sorted partition of `X`:
    /// one linear pass classifying the outcome.
    ///
    /// Dispatches like the index scans ([`scan::select_kernel`]): beyond
    /// one block the concatenated `rows` sequence is filtered blockwise —
    /// a pair decreasing on `rhs` anywhere, or increasing inside a class,
    /// is a violation — and the hit is classified by rescanning the
    /// scalar class walk from one class before the hit, which reproduces
    /// the scalar outcome (including its split-before-boundary event
    /// order and witness rows) byte for byte.
    pub fn check_od(&self, rel: &Relation, rhs: &AttrList) -> CheckOutcome {
        let pairs = self.rows.len().saturating_sub(1);
        if scan::select_kernel(pairs) == ScanKernel::Scalar {
            return self.check_od_scalar(rel, rhs);
        }
        scan::note_scan(scan::block_kernel());
        match self.first_block_violation(rel, rhs.as_slice()) {
            None => CheckOutcome::Valid,
            Some(pos) => {
                // Class of the pair's second row; every class strictly
                // before it is constant on rhs with non-decreasing
                // boundaries (no earlier pair violated), so the scalar
                // walk restarted one class back — prev-less, re-proving
                // that class constant before the boundary into the hit —
                // sees exactly the events the full walk would.
                let ci = self.offsets.partition_point(|&o| (o as usize) <= pos + 1) - 1;
                self.scalar_walk(rel, rhs.as_slice(), ci.saturating_sub(1))
            }
        }
    }

    /// [`SortedPartition::check_od`] pinned to the scalar class walk —
    /// the differential oracle and the pinned-scalar bench config.
    pub fn check_od_scalar(&self, rel: &Relation, rhs: &AttrList) -> CheckOutcome {
        scan::note_scan(ScanKernel::Scalar);
        self.scalar_walk(rel, rhs.as_slice(), 0)
    }

    /// The scalar class walk from `from_class` onward, with no
    /// previous-class context (the boundary into `from_class` itself is
    /// not checked — callers start either at 0 or one class before a
    /// known violation).
    // lint: allow(panic-reachability, offsets is a monotone fence vector bounded by rows.len(), so every w[0]..w[1] range is in bounds)
    fn scalar_walk(
        &self,
        rel: &Relation,
        rhs_cols: &[ColumnId],
        from_class: usize,
    ) -> CheckOutcome {
        // Lexicographic compare of two rows on rhs via codes.
        let cmp = |a: u32, b: u32| {
            for &c in rhs_cols {
                let (ca, cb) = (rel.code(a as usize, c), rel.code(b as usize, c));
                if ca != cb {
                    return ca.cmp(&cb);
                }
            }
            std::cmp::Ordering::Equal
        };

        let mut prev_class_max: Option<u32> = None;
        for w in self.offsets[from_class..].windows(2) {
            let class = &self.rows[w[0] as usize..w[1] as usize];
            let Some((&first, rest)) = class.split_first() else {
                continue;
            };
            // Split: every row of the class must equal `first` on rhs.
            for &r in rest {
                if cmp(first, r) != std::cmp::Ordering::Equal {
                    return CheckOutcome::Split {
                        row_a: first,
                        row_b: r,
                    };
                }
            }
            // Swap: the previous class's rhs must not exceed this one's.
            if let Some(prev) = prev_class_max {
                if cmp(prev, first) == std::cmp::Ordering::Greater {
                    return CheckOutcome::Swap {
                        row_a: prev,
                        row_b: first,
                    };
                }
            }
            prev_class_max = Some(first);
        }
        CheckOutcome::Valid
    }

    /// Blockwise violation filter over the concatenated `rows` sequence:
    /// position of the first adjacent pair decreasing on `rhs`, or
    /// changing on `rhs` inside one class. `None` iff the OD holds —
    /// every class constant on `rhs` (no in-class change) and the class
    /// sequence non-decreasing (no decrease anywhere).
    // lint: allow(panic-reachability, offsets is a strictly increasing fence ending at rows.len(), so the cursor stays in bounds and every boundary k maps into the first n sel bytes)
    fn first_block_violation(&self, rel: &Relation, rhs: &[ColumnId]) -> Option<usize> {
        let total = self.rows.len() - 1;
        let mut lex = BlockLex::default();
        // Cursor over class boundaries: offsets[0] == 0 never forms a pair.
        let mut ob = 1usize;
        let mut start = 0usize;
        while start < total {
            let n = (total - start).min(BLOCK_PAIRS);
            let ob_start = ob;
            while (self.offsets[ob] as usize) <= start + n {
                ob += 1;
            }
            let window = &self.rows[start..=start + n];
            lex.reset(n);
            for &c in rhs {
                if rel.meta(c).is_constant() {
                    continue; // folds all-Equal: a no-op on the state
                }
                lex.fold_column(rel, c, window);
                if lex.closed() {
                    break;
                }
            }
            if lex.lt_any() || lex.gt_any() {
                // Same-class selection mask: boundary pairs (offset k in
                // this block => pair k - 1 - start) are deselected — an
                // increase across classes is the valid case.
                let mut sel = [0u8; BLOCK_PAIRS];
                for s in sel.iter_mut().take(n) {
                    *s = 0xFF;
                }
                for &k in &self.offsets[ob_start..ob] {
                    sel[k as usize - 1 - start] = 0;
                }
                if let Some(i) = lex.first_od_violation(&sel) {
                    return Some(start + i);
                }
            }
            start += n;
        }
        None
    }

    /// Split-only pass: true iff every class of `self` is constant on
    /// `rhs`. Sound as a *full* OD check only when a swap is impossible —
    /// i.e. after the corresponding OCD has been validated (see
    /// [`crate::check::check_od_after_ocd`] for the argument). Skips the
    /// cross-class boundary comparison of [`SortedPartition::check_od`]
    /// entirely: one fewer `rhs` comparison per class, and classes of
    /// size 1 (the common case near key-like prefixes) cost nothing.
    ///
    /// Dispatches blockwise beyond one block; on key-like prefixes
    /// (every pair of a block crossing a boundary) the `rhs` codes are
    /// never even gathered.
    // lint: allow(panic-reachability, offsets is a strictly increasing fence ending at rows.len(), so the cursor stays in bounds and every boundary k maps into the first n sel bytes)
    pub fn check_od_splits_only(&self, rel: &Relation, rhs: &AttrList) -> bool {
        let pairs = self.rows.len().saturating_sub(1);
        if scan::select_kernel(pairs) == ScanKernel::Scalar {
            return self.check_od_splits_only_scalar(rel, rhs);
        }
        scan::note_scan(scan::block_kernel());
        let rhs_cols = rhs.as_slice();
        let total = self.rows.len() - 1;
        let mut eq = BlockEq::default();
        let mut ob = 1usize;
        let mut start = 0usize;
        while start < total {
            let n = (total - start).min(BLOCK_PAIRS);
            let ob_start = ob;
            while (self.offsets[ob] as usize) <= start + n {
                ob += 1;
            }
            // Key-like fast path: all pairs cross boundaries, nothing to
            // compare.
            if ob - ob_start < n {
                let mut sel = [0u8; BLOCK_PAIRS];
                for s in sel.iter_mut().take(n) {
                    *s = 0xFF;
                }
                for &k in &self.offsets[ob_start..ob] {
                    sel[k as usize - 1 - start] = 0;
                }
                let window = &self.rows[start..=start + n];
                eq.reset(n);
                for &c in rhs_cols {
                    if rel.meta(c).is_constant() {
                        continue;
                    }
                    eq.fold_column(rel, c, window);
                    if eq.none() {
                        break; // every pair already differs somewhere
                    }
                }
                if eq.first_unequal(&sel).is_some() {
                    return false;
                }
            }
            start += n;
        }
        true
    }

    /// [`SortedPartition::check_od_splits_only`] pinned to the scalar
    /// class walk — the differential oracle.
    pub fn check_od_splits_only_scalar(&self, rel: &Relation, rhs: &AttrList) -> bool {
        scan::note_scan(ScanKernel::Scalar);
        let rhs_cols = rhs.as_slice();
        for class in self.classes() {
            let Some((&first, rest)) = class.split_first() else {
                continue;
            };
            for &r in rest {
                for &c in rhs_cols {
                    if rel.code(first as usize, c) != rel.code(r as usize, c) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl CacheWeight for SortedPartition {
    fn weight_bytes(&self) -> usize {
        (self.rows.len() + self.offsets.len()) * std::mem::size_of::<u32>()
    }
}

/// Memoizing checker over sorted partitions, keyed by list prefix.
///
/// The memo is worker-private by default; [`PartitionChecker::with_shared`]
/// swaps it for a run-wide [`SharedPrefixCache`] so all workers of a
/// parallel run refine each other's partitions instead of their own copies.
pub struct PartitionChecker<'r> {
    rel: &'r Relation,
    cache: HashMap<Vec<ColumnId>, Arc<SortedPartition>>,
    shared: Option<Arc<SharedPrefixCache<SortedPartition>>>,
    epoch: Option<EpochTier<SortedPartition>>,
    /// The empty-list partition (one class, every row).
    unit: Arc<SortedPartition>,
    /// Partitions built by refinement (cache hits on the parent).
    pub refinements: u64,
    /// Partitions built from scratch (column base cases).
    pub base_builds: u64,
    /// Epoch-mode lookups satisfied by the snapshot or local buffer
    /// (exactly or via a proper prefix); 0 in the other modes.
    pub hits: u64,
    /// Epoch-mode lookups with no usable prefix (built from the unit
    /// partition); 0 in the other modes.
    pub misses: u64,
}

impl<'r> PartitionChecker<'r> {
    /// Create an empty checker over `rel`.
    pub fn new(rel: &'r Relation) -> PartitionChecker<'r> {
        let unit = Arc::new(SortedPartition::unit(rel.num_rows()));
        let mut cache = HashMap::new();
        cache.insert(Vec::new(), Arc::clone(&unit));
        PartitionChecker {
            rel,
            cache,
            shared: None,
            epoch: None,
            unit,
            refinements: 0,
            base_builds: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Create a checker whose memo is a run-wide shared store. The private
    /// map is not used: partitions live in (and are evicted from) `shared`.
    pub fn with_shared(
        rel: &'r Relation,
        shared: Arc<SharedPrefixCache<SortedPartition>>,
    ) -> PartitionChecker<'r> {
        PartitionChecker {
            rel,
            cache: HashMap::new(),
            shared: Some(shared),
            epoch: None,
            unit: Arc::new(SortedPartition::unit(rel.num_rows())),
            refinements: 0,
            base_builds: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Create a checker whose memo is an epoch-published shared store
    /// ([`EpochPrefixCache`]): reads go to an immutable snapshot (no lock
    /// per check), new partitions are buffered locally until
    /// [`PartitionChecker::publish_pending`]. Used by the work-stealing
    /// mode.
    pub fn with_epoch(
        rel: &'r Relation,
        cache: Arc<EpochPrefixCache<SortedPartition>>,
    ) -> PartitionChecker<'r> {
        PartitionChecker {
            rel,
            cache: HashMap::new(),
            shared: None,
            epoch: Some(EpochTier::new(cache)),
            unit: Arc::new(SortedPartition::unit(rel.num_rows())),
            refinements: 0,
            base_builds: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Refresh the epoch snapshot at a level boundary. No-op for the
    /// private and lock-striped modes.
    pub fn begin_level(&mut self) {
        if let Some(tier) = &mut self.epoch {
            tier.begin_level();
        }
    }

    /// Publish locally-buffered partitions and flush lookup counters to
    /// the epoch cache. No-op for the private and lock-striped modes.
    pub fn publish_pending(&mut self) {
        if let Some(tier) = &mut self.epoch {
            tier.publish(self.hits, self.misses);
        }
    }

    /// The sorted partition of `cols`, built by refining the longest cached
    /// prefix.
    // lint: allow(panic-reachability, len < cols.len() inside the refinement loop, and cols[..len] after the increment never exceeds cols.len())
    pub fn partition_for(&mut self, cols: &[ColumnId]) -> Arc<SortedPartition> {
        if cols.is_empty() {
            return Arc::clone(&self.unit);
        }
        if let Some(tier) = &mut self.epoch {
            if let Some(p) = tier.get(cols) {
                self.hits += 1;
                return p;
            }
            // Longest usable prefix, falling back to the unit partition,
            // then refine one column at a time, buffering every
            // intermediate so siblings (and next level's children) reuse
            // them after publish.
            let (mut len, mut part) = match tier.longest_prefix(cols) {
                Some((len, p)) => {
                    self.hits += 1;
                    (len, p)
                }
                None => {
                    self.misses += 1;
                    (0, Arc::clone(&self.unit))
                }
            };
            while len < cols.len() {
                if len == 0 {
                    self.base_builds += 1;
                } else {
                    self.refinements += 1;
                }
                part = Arc::new(part.refined(self.rel, cols[len]));
                len += 1;
                // lint: allow(hot-loop-alloc, the vec is the cache key retained by the epoch tier — one per prefix build, not per row)
                tier.buffer(cols[..len].to_vec(), Arc::clone(&part));
            }
            return part;
        }
        if let Some(shared) = &self.shared {
            if let Some(p) = shared.get(cols) {
                return p;
            }
        } else if let Some(p) = self.cache.get(cols) {
            return Arc::clone(p);
        }
        let parent = self.partition_for(&cols[..cols.len() - 1]);
        if cols.len() == 1 {
            self.base_builds += 1;
        } else {
            self.refinements += 1;
        }
        let refined = Arc::new(parent.refined(self.rel, cols[cols.len() - 1]));
        match &self.shared {
            Some(shared) => shared.insert(cols.to_vec(), Arc::clone(&refined)),
            None => {
                self.cache.insert(cols.to_vec(), Arc::clone(&refined));
            }
        }
        refined
    }

    /// Check `lhs → rhs` through the partition cache.
    pub fn check_od(&mut self, lhs: &AttrList, rhs: &AttrList) -> CheckOutcome {
        let partition = self.partition_for(lhs.as_slice());
        partition.check_od(self.rel, rhs)
    }

    /// Check the OCD `x ~ y` via the single check `XY → YX` (Theorem 4.1).
    pub fn check_ocd(&mut self, x: &AttrList, y: &AttrList) -> CheckOutcome {
        let xy = x.concat(y);
        let yx = y.concat(x);
        self.check_od(&xy, &yx)
    }

    /// Fused direction check after a validated OCD — partition counterpart
    /// of [`crate::check::check_od_after_ocd`]: swaps are impossible, so
    /// only the class-constant (split) pass runs.
    pub fn check_od_after_ocd(&mut self, lhs: &AttrList, rhs: &AttrList) -> bool {
        let partition = self.partition_for(lhs.as_slice());
        partition.check_od_splits_only(self.rel, rhs)
    }

    /// Number of cached partitions.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_od;
    use ocdd_relation::Value;

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    fn l(ids: &[usize]) -> AttrList {
        AttrList::from_slice(ids)
    }

    #[test]
    fn single_column_partition_orders_classes() {
        let r = rel(&[("a", &[3, 1, 2, 1])]);
        let p = SortedPartition::for_column(&r, 0);
        assert_eq!(p.num_classes(), 3);
        let classes: Vec<Vec<u32>> = p
            .classes()
            .map(|c| {
                let mut v = c.to_vec();
                v.sort_unstable();
                v
            })
            .collect();
        assert_eq!(classes, vec![vec![1, 3], vec![2], vec![0]]);
    }

    #[test]
    fn refinement_matches_direct_build() {
        let r = rel(&[("a", &[1, 1, 2, 2, 1]), ("b", &[2, 1, 2, 1, 1])]);
        let pa = SortedPartition::for_column(&r, 0);
        let pab = pa.refined(&r, 1);
        // Classes of [a, b] in lexicographic order:
        // (1,1)->rows 1,4; (1,2)->row 0; (2,1)->row 3; (2,2)->row 2.
        let classes: Vec<Vec<u32>> = pab
            .classes()
            .map(|c| {
                let mut v = c.to_vec();
                v.sort_unstable();
                v
            })
            .collect();
        assert_eq!(classes, vec![vec![1, 4], vec![0], vec![3], vec![2]]);
    }

    #[test]
    fn check_agrees_with_sort_based_checker() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let cols: Vec<(String, Vec<Value>)> = (0..3)
                .map(|c| {
                    (
                        format!("c{c}"),
                        (0..15)
                            .map(|_| Value::Int(rng.random_range(0..4)))
                            .collect(),
                    )
                })
                .collect();
            let r = Relation::from_columns(cols).unwrap();
            let mut checker = PartitionChecker::new(&r);
            let lists = [
                l(&[0]),
                l(&[1]),
                l(&[2]),
                l(&[0, 1]),
                l(&[1, 2]),
                l(&[2, 0]),
            ];
            for x in &lists {
                for y in &lists {
                    assert_eq!(
                        checker.check_od(x, y).is_valid(),
                        check_od(&r, x, y).is_valid(),
                        "seed {seed}: {x} -> {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn ocd_check_agrees_with_core() {
        use crate::check::check_ocd;
        let r = rel(&[("a", &[1, 1, 2, 2, 3]), ("b", &[1, 2, 2, 3, 3])]);
        let mut checker = PartitionChecker::new(&r);
        assert_eq!(
            checker.check_ocd(&l(&[0]), &l(&[1])).is_valid(),
            check_ocd(&r, &l(&[0]), &l(&[1])).is_valid()
        );
        assert!(checker.check_ocd(&l(&[0]), &l(&[1])).is_valid());
    }

    #[test]
    fn witnesses_are_genuine() {
        let r = rel(&[("a", &[1, 1, 2]), ("b", &[5, 6, 1])]);
        let mut checker = PartitionChecker::new(&r);
        match checker.check_od(&l(&[0]), &l(&[1])) {
            CheckOutcome::Split { row_a, row_b } => {
                assert_eq!(r.code(row_a as usize, 0), r.code(row_b as usize, 0));
                assert_ne!(r.code(row_a as usize, 1), r.code(row_b as usize, 1));
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn cache_reuses_prefixes() {
        let r = rel(&[
            ("a", &[1, 2, 1, 2]),
            ("b", &[1, 1, 2, 2]),
            ("c", &[1, 2, 3, 4]),
        ]);
        let mut checker = PartitionChecker::new(&r);
        checker.check_od(&l(&[0, 1]), &l(&[2]));
        checker.check_od(&l(&[0, 2]), &l(&[1]));
        // [0] built once (base), [0,1] and [0,2] by refinement.
        assert_eq!(checker.base_builds, 1);
        assert_eq!(checker.refinements, 2);
        assert_eq!(checker.cached(), 4); // [], [0], [0,1], [0,2]
    }

    #[test]
    fn shared_checker_agrees_and_reuses_across_workers() {
        let r = rel(&[
            ("a", &[1, 2, 1, 2, 3]),
            ("b", &[1, 1, 2, 2, 3]),
            ("c", &[1, 2, 3, 4, 5]),
        ]);
        let shared = Arc::new(SharedPrefixCache::new(1 << 20));
        let mut one = PartitionChecker::with_shared(&r, Arc::clone(&shared));
        let mut two = PartitionChecker::with_shared(&r, Arc::clone(&shared));
        let lists = [l(&[0]), l(&[1]), l(&[0, 1]), l(&[1, 2])];
        for x in &lists {
            for y in &lists {
                assert_eq!(
                    one.check_od(x, y).is_valid(),
                    check_od(&r, x, y).is_valid(),
                    "{x} -> {y}"
                );
            }
        }
        // Worker two finds every partition already built by worker one.
        for x in &lists {
            for y in &lists {
                assert_eq!(two.check_od(x, y).is_valid(), check_od(&r, x, y).is_valid());
            }
        }
        assert_eq!(two.base_builds + two.refinements, 0, "fully shared");
        assert!(shared.stats().hits > 0);
    }

    #[test]
    fn epoch_checker_agrees_and_shares_after_publish() {
        let r = rel(&[
            ("a", &[1, 2, 1, 2, 3]),
            ("b", &[1, 1, 2, 2, 3]),
            ("c", &[1, 2, 3, 4, 5]),
        ]);
        let cache = Arc::new(EpochPrefixCache::new(1 << 20));
        let mut one = PartitionChecker::with_epoch(&r, Arc::clone(&cache));
        let mut two = PartitionChecker::with_epoch(&r, Arc::clone(&cache));
        let lists = [l(&[0]), l(&[1]), l(&[0, 1]), l(&[1, 2])];
        for x in &lists {
            for y in &lists {
                assert_eq!(
                    one.check_od(x, y).is_valid(),
                    check_od(&r, x, y).is_valid(),
                    "{x} -> {y}"
                );
            }
        }
        one.publish_pending();
        two.begin_level();
        for x in &lists {
            for y in &lists {
                assert_eq!(two.check_od(x, y).is_valid(), check_od(&r, x, y).is_valid());
            }
        }
        assert_eq!(
            two.base_builds + two.refinements,
            0,
            "everything arrived via the published snapshot"
        );
        two.publish_pending();
        let s = cache.stats();
        assert_eq!(s.misses, one.misses);
        assert_eq!(s.hits, one.hits + two.hits);
    }

    #[test]
    fn split_only_check_matches_full_check_after_valid_ocd() {
        use crate::check::check_ocd;
        // Exhaustive over all pairs of 4-row columns with values in
        // {0, 1, 2}: every OCD-valid pair must get the same direction
        // verdicts from the fused split-only scan as from the full check.
        let patterns: Vec<Vec<i64>> = (0..81)
            .map(|mut n: i64| {
                (0..4)
                    .map(|_| {
                        let v = n % 3;
                        n /= 3;
                        v
                    })
                    .collect()
            })
            .collect();
        let mut fused_cases = 0;
        for a in &patterns {
            for b in &patterns {
                let r = Relation::from_columns(vec![
                    ("a".to_string(), a.iter().map(|&v| Value::Int(v)).collect()),
                    ("b".to_string(), b.iter().map(|&v| Value::Int(v)).collect()),
                ])
                .unwrap();
                let (x, y) = (l(&[0]), l(&[1]));
                if !check_ocd(&r, &x, &y).is_valid() {
                    continue;
                }
                fused_cases += 1;
                let mut checker = PartitionChecker::new(&r);
                assert_eq!(
                    checker.check_od_after_ocd(&x, &y),
                    check_od(&r, &x, &y).is_valid(),
                    "{a:?} / {b:?}: x→y"
                );
                assert_eq!(
                    checker.check_od_after_ocd(&y, &x),
                    check_od(&r, &y, &x).is_valid(),
                    "{a:?} / {b:?}: y→x"
                );
            }
        }
        assert!(fused_cases > 500, "need OCD-valid cases ({fused_cases})");
    }

    /// Deterministic pseudo-random integer relation (xorshift).
    fn random_relation(cols: usize, rows: usize, domains: &[i64], seed: u64) -> Relation {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        Relation::from_columns(
            (0..cols)
                .map(|c| {
                    let d = domains[c % domains.len()];
                    (
                        format!("c{c}"),
                        (0..rows)
                            .map(|_| Value::Int((next() % d as u64) as i64))
                            .collect(),
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    // Beyond one block the walk dispatches blockwise; outcome — including
    // witness rows and the scalar's split-before-boundary event order —
    // must be byte-identical to the pinned scalar walk.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        #[test]
        fn blockwise_walk_matches_scalar_walk_with_witnesses(
            seed in 0u64..1 << 32,
            rows in 2usize..260,
        ) {
            use proptest::prop_assert_eq;
            let r = random_relation(3, rows, &[3, 40, 5000], seed);
            let mut checker = PartitionChecker::new(&r);
            for (x, y) in [
                (l(&[0]), l(&[1])),
                (l(&[1]), l(&[2])),
                (l(&[2]), l(&[0])),
                (l(&[0, 1]), l(&[2])),
                (l(&[2, 1]), l(&[0, 1])),
            ] {
                let p = checker.partition_for(x.as_slice());
                prop_assert_eq!(p.check_od(&r, &y), p.check_od_scalar(&r, &y));
                prop_assert_eq!(
                    p.check_od_splits_only(&r, &y),
                    p.check_od_splits_only_scalar(&r, &y)
                );
            }
        }
    }

    #[test]
    fn blockwise_walk_prefers_split_over_earlier_boundary_swap() {
        // 100 rows, 10 classes of 10. Class 5 both swaps against class 4
        // at the boundary (an earlier pair in row order) AND contains an
        // internal split; the scalar walk checks a class's splits before
        // the boundary into it, so the split must win — also blockwise.
        let lhs: Vec<i64> = (0..100).map(|i| i / 10).collect();
        let rhs: Vec<i64> = (0..100)
            .map(|i| {
                if (50..60).contains(&i) {
                    10 + (i % 2) // below class 4's 40s: boundary swap; non-constant: split
                } else {
                    i
                }
            })
            .collect();
        let r = rel(&[("x", lhs.as_slice()), ("y", rhs.as_slice())]);
        let p = SortedPartition::for_column(&r, 0);
        let scalar = p.check_od_scalar(&r, &l(&[1]));
        assert!(matches!(scalar, CheckOutcome::Split { .. }), "{scalar:?}");
        assert_eq!(p.check_od(&r, &l(&[1])), scalar);
    }

    #[test]
    fn empty_relation_is_trivially_valid() {
        let r = rel(&[("a", &[]), ("b", &[])]);
        let mut checker = PartitionChecker::new(&r);
        assert!(checker.check_od(&l(&[0]), &l(&[1])).is_valid());
    }

    #[test]
    fn unit_partition_detects_constants() {
        let r = rel(&[("a", &[1, 2]), ("k", &[5, 5])]);
        let unit = SortedPartition::unit(2);
        assert!(
            unit.check_od(&r, &l(&[1])).is_valid(),
            "[] -> constant holds"
        );
        assert!(!unit.check_od(&r, &l(&[0])).is_valid());
    }
}
