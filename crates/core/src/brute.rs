//! Brute-force ground truth: enumerate and validate dependencies directly
//! from the pairwise definitions (Definitions 2.2 and 2.4).
//!
//! Exponential in the number of attributes and quadratic in rows — only
//! usable on small relations, which is exactly what the test-suite needs to
//! validate the discovery algorithms (ours and the baselines) against.

use crate::check::check_od_pairwise;
use crate::deps::{AttrList, Ocd, Od};
use ocdd_relation::{ColumnId, Relation};

/// All duplicate-free attribute lists over `universe` with length in
/// `1..=max_len` (the `k`-permutations of §3.2).
pub fn all_lists(universe: &[ColumnId], max_len: usize) -> Vec<AttrList> {
    let mut out = Vec::new();
    let mut current: Vec<ColumnId> = Vec::new();
    fn rec(
        universe: &[ColumnId],
        max_len: usize,
        current: &mut Vec<ColumnId>,
        out: &mut Vec<AttrList>,
    ) {
        if !current.is_empty() {
            out.push(AttrList::from_slice(current));
        }
        if current.len() == max_len {
            return;
        }
        for &a in universe {
            if !current.contains(&a) {
                current.push(a);
                rec(universe, max_len, current, out);
                current.pop();
            }
        }
    }
    rec(universe, max_len, &mut current, &mut out);
    out
}

/// All valid ODs `X → Y` with duplicate-free sides up to `max_len`,
/// excluding trivial ones where `Y` is a prefix of `X` (those hold by
/// Reflexivity on every instance). Sides may overlap.
pub fn brute_force_ods(rel: &Relation, max_len: usize) -> Vec<Od> {
    let universe: Vec<ColumnId> = (0..rel.num_columns()).collect();
    let lists = all_lists(&universe, max_len);
    let mut out = Vec::new();
    for x in &lists {
        for y in &lists {
            if y.as_slice().len() <= x.as_slice().len() && x.as_slice()[..y.len()] == *y.as_slice()
            {
                continue; // trivial by reflexivity
            }
            if check_od_pairwise(rel, x, y) {
                out.push(Od::new(x.clone(), y.clone()));
            }
        }
    }
    out
}

/// All valid *minimal-form* OCDs `X ~ Y` (duplicate-free disjoint sides,
/// Definition 3.4) up to `max_len` per side, in canonical orientation.
pub fn brute_force_minimal_ocds(rel: &Relation, max_len: usize) -> Vec<Ocd> {
    let universe: Vec<ColumnId> = (0..rel.num_columns()).collect();
    let lists = all_lists(&universe, max_len);
    let mut out = Vec::new();
    for x in &lists {
        for y in &lists {
            if x >= y || !x.is_disjoint(y) {
                continue;
            }
            let ocd = Ocd::new(x.clone(), y.clone());
            let xy = x.concat(y);
            let yx = y.concat(x);
            // X ~ Y  iff  XY -> YX (Theorem 4.1); use the pairwise checker
            // as an independent reference.
            if check_od_pairwise(rel, &xy, &yx) && check_od_pairwise(rel, &yx, &xy) {
                out.push(ocd.canonical());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// All valid minimal FDs `X → A` over attribute *sets* with `|X| ≤ max_lhs`
/// (used to cross-check the FD baseline). Minimal means no proper subset of
/// `X` determines `A`.
pub fn brute_force_minimal_fds(rel: &Relation, max_lhs: usize) -> Vec<(Vec<ColumnId>, ColumnId)> {
    let n = rel.num_columns();
    let m = rel.num_rows();
    let holds = |lhs: &[ColumnId], rhs: ColumnId| -> bool {
        for p in 0..m {
            for q in (p + 1)..m {
                let eq_lhs = lhs.iter().all(|&c| rel.code(p, c) == rel.code(q, c));
                if eq_lhs && rel.code(p, rhs) != rel.code(q, rhs) {
                    return false;
                }
            }
        }
        true
    };

    // Enumerate attribute subsets by increasing size.
    let mut subsets: Vec<Vec<ColumnId>> = vec![vec![]];
    for size in 1..=max_lhs.min(n) {
        let mut stack: Vec<Vec<ColumnId>> = vec![vec![]];
        while let Some(cur) = stack.pop() {
            if cur.len() == size {
                subsets.push(cur);
                continue;
            }
            let start = cur.last().map_or(0, |&l| l + 1);
            for a in start..n {
                let mut next = cur.clone();
                next.push(a);
                stack.push(next);
            }
        }
    }
    subsets.sort_by_key(|s| (s.len(), s.clone()));

    let mut out: Vec<(Vec<ColumnId>, ColumnId)> = Vec::new();
    for rhs in 0..n {
        for lhs in &subsets {
            if lhs.contains(&rhs) {
                continue;
            }
            // Minimality: skip if a known smaller FD for rhs is a subset.
            let covered = out
                .iter()
                .any(|(known, a)| *a == rhs && known.iter().all(|k| lhs.contains(k)));
            if covered {
                continue;
            }
            if holds(lhs, rhs) {
                out.push((lhs.clone(), rhs));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::{Relation, Value};

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn all_lists_counts_k_permutations() {
        // S(3) with max_len 3: 3 + 6 + 6 = 15 lists.
        assert_eq!(all_lists(&[0, 1, 2], 3).len(), 15);
        assert_eq!(all_lists(&[0, 1, 2], 1).len(), 3);
        assert_eq!(all_lists(&[0, 1, 2, 3], 2).len(), 4 + 12);
        assert!(all_lists(&[], 2).is_empty());
    }

    #[test]
    fn lists_are_duplicate_free() {
        for list in all_lists(&[0, 1, 2], 3) {
            assert!(list.is_duplicate_free());
        }
    }

    #[test]
    fn brute_ods_on_monotone_pair() {
        let r = rel(&[("a", &[1, 2, 3]), ("b", &[4, 5, 6])]);
        let ods = brute_force_ods(&r, 2);
        // a <-> b: both [a] -> [b] and [b] -> [a] present.
        let texts: Vec<String> = ods.iter().map(|o| o.to_string()).collect();
        assert!(texts.contains(&"[0] -> [1]".to_string()));
        assert!(texts.contains(&"[1] -> [0]".to_string()));
        // Trivial prefix ODs like [0,1] -> [0] are excluded.
        assert!(!texts.contains(&"[0,1] -> [0]".to_string()));
    }

    #[test]
    fn brute_minimal_ocds_on_yes_style_table() {
        // Split both ways, no swap: A ~ B holds, no ODs.
        let r = rel(&[("a", &[1, 1, 2, 2, 3]), ("b", &[1, 2, 2, 3, 3])]);
        let ocds = brute_force_minimal_ocds(&r, 1);
        assert_eq!(ocds.len(), 1);
        assert_eq!(ocds[0].to_string(), "[0] ~ [1]");
        let ods = brute_force_ods(&r, 1);
        assert!(ods.is_empty());
    }

    #[test]
    fn brute_ocds_empty_on_swapped_pair() {
        let r = rel(&[("a", &[1, 2]), ("b", &[2, 1])]);
        assert!(brute_force_minimal_ocds(&r, 2).is_empty());
    }

    #[test]
    fn brute_fds_find_key() {
        // a is a key: a -> b and a -> c minimally.
        let r = rel(&[("a", &[1, 2, 3]), ("b", &[5, 5, 6]), ("c", &[7, 8, 7])]);
        let fds = brute_force_minimal_fds(&r, 2);
        assert!(fds.contains(&(vec![0], 1)));
        assert!(fds.contains(&(vec![0], 2)));
        // b,c together identify rows: (5,7),(5,8),(6,7) all distinct -> bc -> a.
        assert!(fds.contains(&(vec![1, 2], 0)));
        // But not b alone.
        assert!(!fds.contains(&(vec![1], 0)));
    }

    #[test]
    fn brute_fds_respect_minimality() {
        let r = rel(&[("a", &[1, 2, 3]), ("b", &[4, 5, 6]), ("c", &[1, 1, 2])]);
        let fds = brute_force_minimal_fds(&r, 2);
        // a -> c holds with |lhs|=1, so {a,b} -> c must not be reported.
        assert!(fds.contains(&(vec![0], 2)));
        assert!(!fds
            .iter()
            .any(|(lhs, rhs)| *rhs == 2 && lhs.len() > 1 && lhs.contains(&0)));
    }

    #[test]
    fn constant_column_fd_from_empty_set() {
        let r = rel(&[("a", &[1, 2]), ("k", &[9, 9])]);
        let fds = brute_force_minimal_fds(&r, 1);
        assert!(
            fds.contains(&(vec![], 1)),
            "constant is determined by the empty set"
        );
    }
}
