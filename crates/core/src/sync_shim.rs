//! Compile-time switch between `std::sync` and the vendored loom shim for
//! the concurrency-audited modules ([`crate::scheduler`],
//! [`crate::shared_cache`]).
//!
//! Ordinary builds alias straight to `std::sync`, so there is zero runtime
//! cost. Under `--features loom` the same names resolve to the
//! instrumented shim types (`crates/shims/loom`), whose every lock and
//! atomic operation is a scheduling point inside `loom::model` — the loom
//! lane of `ci.sh` model-checks `StealQueues` pop/steal and the
//! `EpochPrefixCache` snapshot-publish protocol through this alias.
//! Outside a model the shim types delegate to `std`, so the full test
//! suite still passes with the feature enabled.

#[cfg(feature = "loom")]
pub(crate) use loom::sync::atomic::{AtomicU64, AtomicUsize};
#[cfg(feature = "loom")]
pub(crate) use loom::sync::Mutex;

#[cfg(not(feature = "loom"))]
pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize};
#[cfg(not(feature = "loom"))]
pub(crate) use std::sync::Mutex;
