//! Configuration for a discovery run.

use crate::runtime::RunController;
use crate::snapshot::CheckpointPolicy;
use std::time::Duration;

/// How the candidate tree is traversed (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMode {
    /// Single-threaded breadth-first search (Algorithm 1 as written).
    #[default]
    Sequential,
    /// The paper's parallelization: the level-2 branches are partitioned
    /// round-robin into `k` queues and each queue's subtree is explored by
    /// its own thread. A candidate belongs to exactly one level-2 branch
    /// (its seed pair is the pair of first attributes of its two sides), so
    /// subtrees never exchange work.
    StaticQueues(usize),
    /// Work-stealing alternative: each BFS level is processed by a rayon
    /// pool of `k` threads. Better load balance when branches are skewed;
    /// measured against `StaticQueues` by the ablation bench.
    Rayon(usize),
    /// Level-synchronous batch scheduler: each level's candidates are
    /// grouped into batches by their shared sort-key prefix (the `X` of
    /// the single OCD check `XY → YX`), so the prefix index is
    /// materialized once per batch and refined per candidate. Batches are
    /// executed by `k` workers over work-stealing deques
    /// ([`crate::scheduler`]); with `shared_cache` the workers read an
    /// epoch-published immutable cache snapshot and buffer inserts
    /// locally, publishing between levels — no lock on the check hot
    /// path. Results are byte-identical to every other mode.
    WorkStealing(usize),
}

/// How candidate checks are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckerBackend {
    /// Re-sort the row index for every candidate — Algorithm 2 as written
    /// (the paper's faithful behaviour). The default.
    #[default]
    Resort,
    /// Cache sorted indexes per LHS prefix and refine them for longer
    /// lists ([`crate::check::SortCache`]). Same results, fewer full
    /// sorts.
    PrefixCache,
    /// Sorted partitions with incremental refinement
    /// ([`crate::sorted_partitions::PartitionChecker`]) — the
    /// linear-row-scaling method §5.3.1 mentions as possible future work.
    SortedPartitions,
}

/// Tunables of the OCDDISCOVER run.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Traversal / parallelism mode.
    pub mode: ParallelMode,
    /// Deduplicate candidates within a level (a candidate can be generated
    /// by up to two parents). On by default; off reproduces the raw
    /// generation counts of Algorithm 3 and is exercised by the ablation
    /// bench.
    pub dedup_candidates: bool,
    /// Which checker backend validates candidates; see [`CheckerBackend`].
    pub checker: CheckerBackend,
    /// Share one prefix cache (sorted indexes for
    /// [`CheckerBackend::PrefixCache`], partitions for
    /// [`CheckerBackend::SortedPartitions`]) across every worker of the
    /// run instead of keeping a private cache per worker. Off by default;
    /// it never changes results, only how often prefixes are recomputed.
    /// No effect under [`CheckerBackend::Resort`], which caches nothing by
    /// definition.
    pub shared_cache: bool,
    /// Byte budget of the shared cache: above it, least-recently-used
    /// entries are evicted (and recomputed on demand if needed again).
    /// Ignored unless `shared_cache` is set.
    pub cache_budget_bytes: usize,
    /// Run the column-reduction preprocessing (§4.1). On by default;
    /// disabling it is only useful for ablation.
    pub column_reduction: bool,
    /// Stop after exploring this level (combined list length). `None`
    /// explores the full tree.
    pub max_level: Option<usize>,
    /// Abort (with partial results) after this many candidate checks.
    pub max_checks: Option<u64>,
    /// Abort (with partial results) after this wall-clock budget — the
    /// paper uses a 5-hour threshold and reports partial results (§5.1).
    pub time_budget: Option<Duration>,
    /// Cooperative cancellation handle. Keep a clone and call
    /// [`RunController::cancel`] from another thread to stop the run with
    /// partial results ([`crate::TerminationReason::Cancelled`]). `None`
    /// (the default) means the run cannot be cancelled externally.
    pub controller: Option<RunController>,
    /// Durable checkpointing: when set, the search dumps its frontier
    /// state to `policy.dir` at level boundaries (atomic tmp+fsync+rename
    /// writes), so an interrupted run can be resumed byte-identically with
    /// [`crate::search::discover_resume`] / `ocdd --resume`. `None` (the
    /// default) writes nothing. See [`crate::snapshot`] and DESIGN.md §13.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Fault-injection plan for the run — test/`fault-injection`-feature
    /// builds only. See [`crate::runtime::FaultPlan`].
    #[cfg(any(test, feature = "fault-injection"))]
    pub fault: Option<std::sync::Arc<crate::runtime::FaultPlan>>,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            mode: ParallelMode::Sequential,
            dedup_candidates: true,
            checker: CheckerBackend::Resort,
            shared_cache: false,
            cache_budget_bytes: 256 << 20,
            column_reduction: true,
            max_level: None,
            max_checks: None,
            time_budget: None,
            controller: None,
            checkpoint: None,
            #[cfg(any(test, feature = "fault-injection"))]
            fault: None,
        }
    }
}

impl DiscoveryConfig {
    /// Convenience constructor for an `n`-thread static-queue run.
    pub fn with_threads(n: usize) -> DiscoveryConfig {
        DiscoveryConfig {
            mode: if n <= 1 {
                ParallelMode::Sequential
            } else {
                ParallelMode::StaticQueues(n)
            },
            ..DiscoveryConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_faithful_to_the_paper() {
        let c = DiscoveryConfig::default();
        assert_eq!(c.mode, ParallelMode::Sequential);
        assert!(c.dedup_candidates);
        assert_eq!(
            c.checker,
            CheckerBackend::Resort,
            "faithful checker re-sorts per candidate"
        );
        assert!(c.column_reduction);
        assert!(!c.shared_cache, "shared cache is an opt-in optimization");
        assert!(c.cache_budget_bytes > 0);
        assert!(c.max_level.is_none() && c.max_checks.is_none() && c.time_budget.is_none());
        assert!(
            c.controller.is_none(),
            "no external cancellation by default"
        );
        assert!(c.checkpoint.is_none(), "checkpointing is opt-in");
    }

    #[test]
    fn with_threads_one_is_sequential() {
        assert_eq!(
            DiscoveryConfig::with_threads(1).mode,
            ParallelMode::Sequential
        );
        assert_eq!(
            DiscoveryConfig::with_threads(4).mode,
            ParallelMode::StaticQueues(4)
        );
    }
}
