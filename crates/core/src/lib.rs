//! # ocdd-core — OCDDISCOVER in Rust
//!
//! A from-scratch implementation of the order dependency discovery
//! algorithm of *Consonni, Montresor, Sottovia, Velegrakis: "Discovering
//! Order Dependencies through Order Compatibility", EDBT 2019*.
//!
//! An **order dependency (OD)** `X → Y` states that sorting a table by the
//! attribute list `X` also sorts it by `Y` (Definition 2.2). An **order
//! compatibility dependency (OCD)** `X ~ Y` states that `XY ↔ YX`
//! (Definition 2.4) — the two lists are monotone together. Every OD
//! factors into a functional dependency plus an OCD, and OCDDISCOVER
//! exploits this: it searches the (much smaller) space of *minimal* OCDs
//! breadth-first, validating each candidate with a single sorted scan, and
//! derives the ODs along the way.
//!
//! ## Quick start
//!
//! ```
//! use ocdd_relation::{Relation, Value};
//! use ocdd_core::{discover, DiscoveryConfig};
//!
//! // income orders bracket; income and tax are order equivalent.
//! let rel = Relation::from_columns(vec![
//!     ("income".into(), vec![35, 40, 40, 55, 60, 80].into_iter().map(Value::Int).collect()),
//!     ("bracket".into(), vec![1, 1, 1, 2, 2, 3].into_iter().map(Value::Int).collect()),
//!     ("tax".into(), vec![5, 6, 6, 8, 9, 14].into_iter().map(Value::Int).collect()),
//! ]).unwrap();
//!
//! let result = discover(&rel, &DiscoveryConfig::default());
//! assert_eq!(result.equivalence_classes, vec![vec![0, 2]]); // income <-> tax
//! assert!(result.ods.iter().any(|od| od.display(&rel) == "[income] -> [bracket]"));
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`deps`] | §2 | attribute lists, `Od`, `Ocd`, order equivalence |
//! | [`check`] | §4.3 | sorted-scan candidate checker, split/swap witnesses |
//! | [`reduction`] | §4.1 | constant removal, Tarjan order-equivalence classes |
//! | [`search`] | §4.2/4.4 | the BFS over OCD candidates with pruning |
//! | [`config`], [`results`] | §4–5 | run configuration and outputs |
//! | [`expand`] | §5.2 | translate minimal OCDs back into the full OD set |
//! | [`axioms`] | §2.1/§3 | the `J_OD` inference rules and a bounded closure engine |
//! | [`brute`] | §2 | brute-force ground truth by the pairwise definitions |
//! | [`entropy`] | §5.4 | interestingness ranking of columns |

#![deny(missing_docs)]
pub mod approximate;
pub mod axioms;
pub mod bidirectional;
pub mod brute;
pub mod check;
pub mod config;
pub mod deps;
pub mod entropy;
pub mod expand;
pub mod incremental;
pub mod json;
pub mod reduction;
pub mod results;
pub mod rewrite;
pub mod runtime;
pub mod scheduler;
pub mod search;
pub mod shared_cache;
pub mod snapshot;
pub mod sorted_partitions;
pub(crate) mod sync_shim;
pub mod visualize;

pub use approximate::{
    discover_approximate, discover_approximate_resume, discover_approximate_with,
    hoeffding_half_width, ocd_error, od_error, removal_witnesses, triage, ApproxConfig,
    ApproxStats, ApproximateOcd, ApproximateResult, OdError, Triage, ERR_PASSES,
};
pub use check::{check_ocd, check_od, check_od_after_ocd, CheckOutcome, SortCache};
pub use config::{CheckerBackend, DiscoveryConfig, ParallelMode};
pub use deps::{AttrList, Ocd, Od, OrderEquivalence};
pub use reduction::{columns_reduction, Reduction};
pub use results::{DiscoveryResult, LevelStats};
pub use runtime::{FaultPlan, RunController, TerminationReason, DEADLINE_CHECK_INTERVAL};
pub use scheduler::{SchedulerStats, WorkerSchedStats};
pub use search::{discover, discover_resume, profile_branches, BranchCost};
pub use shared_cache::{CacheStats, EpochPrefixCache, EpochSnapshot, SharedPrefixCache};
pub use snapshot::{
    latest_snapshot, list_snapshots, parse_snapshot, read_snapshot, snapshot_to_json, ApproxMeta,
    CheckpointPolicy, CheckpointStats, SearchSnapshot, SnapshotError, SNAPSHOT_VERSION,
};
pub use visualize::snapshot_to_dot;
