//! Attribute lists and dependency types, in the paper's notation (Table 2).
//!
//! * [`AttrList`] — a list of attributes `X = [A, B, ...]` (order matters,
//!   unlike the attribute *sets* of functional dependencies).
//! * [`Od`] — an order dependency `X → Y` (Definition 2.2).
//! * [`Ocd`] — an order compatibility dependency `X ~ Y` (Definition 2.4).
//! * [`OrderEquivalence`] — `X ↔ Y` (both `X → Y` and `Y → X`).

use ocdd_relation::{ColumnId, Relation};
use std::fmt;

/// An ordered list of attributes (column ids).
///
/// Lists used by the discovery algorithm never contain a repeated attribute
/// (minimality, Definition 3.3); this is an invariant maintained by the
/// candidate generator, not enforced by the type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrList(Vec<ColumnId>);

impl AttrList {
    /// The empty list `[]`.
    pub fn empty() -> AttrList {
        AttrList(Vec::new())
    }

    /// A single-attribute list `[a]`.
    pub fn single(a: ColumnId) -> AttrList {
        AttrList(vec![a])
    }

    /// Build from a slice of column ids.
    pub fn from_slice(cols: &[ColumnId]) -> AttrList {
        AttrList(cols.to_vec())
    }

    /// The attributes in list order.
    #[inline]
    pub fn as_slice(&self) -> &[ColumnId] {
        &self.0
    }

    /// List length.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty list.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether attribute `a` occurs in the list.
    #[inline]
    pub fn contains(&self, a: ColumnId) -> bool {
        self.0.contains(&a)
    }

    /// New list with `a` appended on the right: `XA`.
    pub fn with_appended(&self, a: ColumnId) -> AttrList {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(a);
        AttrList(v)
    }

    /// Concatenation `XY` (shorthand for `X ◦ Y` in the paper).
    pub fn concat(&self, other: &AttrList) -> AttrList {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        AttrList(v)
    }

    /// Normalization (AX3): remove every occurrence of an attribute after
    /// its first, e.g. `ABA -> AB`. Returns a list order equivalent to
    /// `self` on every instance.
    pub fn normalized(&self) -> AttrList {
        let mut seen = Vec::new();
        let mut out = Vec::with_capacity(self.0.len());
        for &a in &self.0 {
            if !seen.contains(&a) {
                seen.push(a);
                out.push(a);
            }
        }
        AttrList(out)
    }

    /// True if no attribute repeats within the list.
    pub fn is_duplicate_free(&self) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, a)| !self.0[..i].contains(a))
    }

    /// True if `self` and `other` share no attribute.
    pub fn is_disjoint(&self, other: &AttrList) -> bool {
        self.0.iter().all(|a| !other.contains(*a))
    }

    /// Render with column names from `rel`, e.g. `[income,tax]`.
    pub fn display<'a>(&'a self, rel: &'a Relation) -> impl fmt::Display + 'a {
        NamedList { list: self, rel }
    }
}

impl fmt::Display for AttrList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "]")
    }
}

struct NamedList<'a> {
    list: &'a AttrList,
    rel: &'a Relation,
}

impl fmt::Display for NamedList<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, &a) in self.list.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.rel.meta(a).name)?;
        }
        write!(f, "]")
    }
}

impl From<Vec<ColumnId>> for AttrList {
    fn from(v: Vec<ColumnId>) -> Self {
        AttrList(v)
    }
}

impl<'a> IntoIterator for &'a AttrList {
    type Item = &'a ColumnId;
    type IntoIter = std::slice::Iter<'a, ColumnId>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// An order dependency `X → Y`: ordering by `X` also orders by `Y`
/// (Definition 2.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Od {
    /// Left-hand side list.
    pub lhs: AttrList,
    /// Right-hand side list.
    pub rhs: AttrList,
}

impl Od {
    /// Construct `lhs → rhs`.
    pub fn new(lhs: AttrList, rhs: AttrList) -> Od {
        Od { lhs, rhs }
    }

    /// Render with column names.
    pub fn display<'a>(&'a self, rel: &'a Relation) -> String {
        format!("{} -> {}", self.lhs.display(rel), self.rhs.display(rel))
    }
}

impl fmt::Display for Od {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.lhs, self.rhs)
    }
}

/// An order compatibility dependency `X ~ Y` (Definition 2.4), equivalent to
/// the order equivalence `XY ↔ YX`.
///
/// OCDs are commutative; [`Ocd::canonical`] picks the orientation with the
/// lexicographically smaller side first so that sets of OCDs deduplicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ocd {
    /// One side of the dependency.
    pub lhs: AttrList,
    /// The other side.
    pub rhs: AttrList,
}

impl Ocd {
    /// Construct `lhs ~ rhs`.
    pub fn new(lhs: AttrList, rhs: AttrList) -> Ocd {
        Ocd { lhs, rhs }
    }

    /// Commutative canonical form (smaller side first).
    pub fn canonical(&self) -> Ocd {
        if self.lhs <= self.rhs {
            self.clone()
        } else {
            Ocd {
                lhs: self.rhs.clone(),
                rhs: self.lhs.clone(),
            }
        }
    }

    /// This OCD is *minimal* (Definition 3.4) when both sides are
    /// duplicate-free lists and the sides are disjoint. (Minimality of each
    /// side as an attribute list additionally requires the absence of
    /// embedded order equivalences, which is instance-dependent and
    /// guaranteed by column reduction for single attributes.)
    pub fn is_syntactically_minimal(&self) -> bool {
        self.lhs.is_duplicate_free()
            && self.rhs.is_duplicate_free()
            && self.lhs.is_disjoint(&self.rhs)
    }

    /// Render with column names.
    pub fn display<'a>(&'a self, rel: &'a Relation) -> String {
        format!("{} ~ {}", self.lhs.display(rel), self.rhs.display(rel))
    }
}

impl fmt::Display for Ocd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ~ {}", self.lhs, self.rhs)
    }
}

/// An order equivalence `X ↔ Y`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrderEquivalence {
    /// One side.
    pub lhs: AttrList,
    /// The other side.
    pub rhs: AttrList,
}

impl fmt::Display for OrderEquivalence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <-> {}", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(ids: &[usize]) -> AttrList {
        AttrList::from_slice(ids)
    }

    #[test]
    fn concat_and_append() {
        let x = l(&[0, 1]);
        let y = l(&[2]);
        assert_eq!(x.concat(&y), l(&[0, 1, 2]));
        assert_eq!(x.with_appended(5), l(&[0, 1, 5]));
        assert_eq!(AttrList::empty().concat(&y), y);
    }

    #[test]
    fn normalization_drops_later_duplicates() {
        // ABA -> AB (the paper's example after Definition 3.3)
        assert_eq!(l(&[0, 1, 0]).normalized(), l(&[0, 1]));
        assert_eq!(l(&[0, 1, 2]).normalized(), l(&[0, 1, 2]));
        assert_eq!(l(&[3, 3, 3]).normalized(), l(&[3]));
        assert_eq!(AttrList::empty().normalized(), AttrList::empty());
    }

    #[test]
    fn duplicate_free_and_disjoint() {
        assert!(l(&[0, 1, 2]).is_duplicate_free());
        assert!(!l(&[0, 1, 0]).is_duplicate_free());
        assert!(l(&[0, 1]).is_disjoint(&l(&[2, 3])));
        assert!(!l(&[0, 1]).is_disjoint(&l(&[1, 2])));
        assert!(AttrList::empty().is_disjoint(&l(&[0])));
    }

    #[test]
    fn ocd_canonical_is_orientation_independent() {
        let a = Ocd::new(l(&[1]), l(&[0]));
        let b = Ocd::new(l(&[0]), l(&[1]));
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(b.canonical(), b);
    }

    #[test]
    fn syntactic_minimality() {
        assert!(Ocd::new(l(&[0]), l(&[1, 2])).is_syntactically_minimal());
        assert!(!Ocd::new(l(&[0]), l(&[0, 2])).is_syntactically_minimal());
        assert!(!Ocd::new(l(&[0, 0]), l(&[1])).is_syntactically_minimal());
    }

    #[test]
    fn display_forms() {
        assert_eq!(l(&[0, 2]).to_string(), "[0,2]");
        assert_eq!(Od::new(l(&[0]), l(&[1])).to_string(), "[0] -> [1]");
        assert_eq!(Ocd::new(l(&[0]), l(&[1])).to_string(), "[0] ~ [1]");
        let eq = OrderEquivalence {
            lhs: l(&[0]),
            rhs: l(&[1]),
        };
        assert_eq!(eq.to_string(), "[0] <-> [1]");
    }

    #[test]
    fn named_display_uses_schema() {
        use ocdd_relation::{Relation, Value};
        let rel = Relation::from_columns(vec![
            ("income".to_string(), vec![Value::Int(1)]),
            ("tax".to_string(), vec![Value::Int(2)]),
        ])
        .unwrap();
        let od = Od::new(l(&[0]), l(&[1]));
        assert_eq!(od.display(&rel), "[income] -> [tax]");
    }

    #[test]
    fn attr_list_iteration() {
        let x = l(&[4, 2, 7]);
        let collected: Vec<usize> = (&x).into_iter().copied().collect();
        assert_eq!(collected, vec![4, 2, 7]);
    }
}
