//! Expansion of a reduced discovery result into the full set of order
//! dependencies (§5.2 of the paper).
//!
//! OCDDISCOVER reports its results over the *reduced* attribute universe:
//! constant columns are removed, order-equivalent columns are collapsed to
//! one representative, and valid ODs prune derivable OCDs. To compare
//! against ORDER and FASTOD, the paper expands the result back:
//!
//! * each OCD `X ~ Y` stands for the order equivalence `XY ↔ YX` and, by
//!   Theorem 3.8, for the repeated-attribute ODs `XY → Y` and `YX → X`;
//! * each member of an order-equivalence class can replace its
//!   representative in any dependency (Replace theorem);
//! * a constant column `C` is ordered by the empty list: `[] → [C]`, hence
//!   by every attribute list.
//!
//! The number of expanded ODs can be enormous (tens of millions on
//! FLIGHT-like data), so the count is computed arithmetically by
//! [`expanded_od_count`] and materialization ([`expanded_ods`]) takes a
//! limit.

use crate::deps::{AttrList, Od};
use crate::results::DiscoveryResult;
use ocdd_relation::ColumnId;
use std::collections::HashMap;

/// The four ODs a single OCD `X ~ Y` stands for: the order equivalence
/// `XY ↔ YX` plus the Theorem 3.8 forms `XY → Y` and `YX → X`.
pub fn ods_of_ocd(x: &AttrList, y: &AttrList) -> [Od; 4] {
    let xy = x.concat(y);
    let yx = y.concat(x);
    [
        Od::new(xy.clone(), yx.clone()),
        Od::new(yx.clone(), xy.clone()),
        Od::new(xy, y.clone()),
        Od::new(yx, x.clone()),
    ]
}

/// Map each column to the members of its order-equivalence class
/// (representatives map to the full class, untouched columns to themselves).
fn class_members(result: &DiscoveryResult) -> HashMap<ColumnId, Vec<ColumnId>> {
    let mut map: HashMap<ColumnId, Vec<ColumnId>> = HashMap::new();
    for class in &result.equivalence_classes {
        map.insert(class[0], class.clone());
    }
    for &attr in &result.reduced_attributes {
        map.entry(attr).or_insert_with(|| vec![attr]);
    }
    map
}

/// Number of substitution variants of a dependency over `attrs`: the
/// product of the class sizes of its distinct attributes.
fn variant_count(
    attrs: impl Iterator<Item = ColumnId>,
    classes: &HashMap<ColumnId, Vec<ColumnId>>,
) -> u64 {
    let mut seen = Vec::new();
    let mut product = 1u64;
    for a in attrs {
        if !seen.contains(&a) {
            seen.push(a);
            let size = classes.get(&a).map_or(1, Vec::len) as u64;
            product = product.saturating_mul(size);
        }
    }
    product
}

/// Count the ODs the reduced result stands for, without materializing them.
///
/// The tally, mirroring how the paper's `|Od|` column counts:
/// * 4 ODs per discovered OCD (see [`ods_of_ocd`]) × substitution variants;
/// * 1 OD per discovered disjoint-side OD × substitution variants;
/// * all ordered pairs within every order-equivalence class;
/// * 1 OD `[] → [C]` per constant column.
pub fn expanded_od_count(result: &DiscoveryResult) -> u64 {
    let classes = class_members(result);
    let mut count = 0u64;

    for ocd in &result.ocds {
        let attrs = ocd.lhs.as_slice().iter().chain(ocd.rhs.as_slice()).copied();
        count = count.saturating_add(4 * variant_count(attrs, &classes));
    }
    for od in &result.ods {
        let attrs = od.lhs.as_slice().iter().chain(od.rhs.as_slice()).copied();
        count = count.saturating_add(variant_count(attrs, &classes));
    }
    for class in &result.equivalence_classes {
        let k = class.len() as u64;
        count = count.saturating_add(k * (k - 1));
    }
    count = count.saturating_add(result.constants.len() as u64);
    count
}

/// Enumerate substitution variants of `list` under the class map. Each
/// occurrence of a representative can be replaced independently
/// (per-occurrence replacement — use [`expanded_ods`] for the consistent
/// whole-dependency substitution of the Replace theorem).
pub fn list_variants(list: &AttrList, classes: &HashMap<ColumnId, Vec<ColumnId>>) -> Vec<AttrList> {
    let slots: Vec<&Vec<ColumnId>> = list
        .as_slice()
        .iter()
        .map(|a| classes.get(a).expect("attribute has a class entry"))
        .collect();
    let mut out: Vec<Vec<ColumnId>> = vec![Vec::new()];
    for slot in slots {
        let mut next = Vec::with_capacity(out.len() * slot.len());
        for prefix in &out {
            for &member in slot {
                let mut v = prefix.clone();
                v.push(member);
                next.push(v);
            }
        }
        out = next;
    }
    out.into_iter().map(AttrList::from).collect()
}

/// Materialize up to `limit` expanded ODs.
///
/// Substitution variants of the same base dependency are consistent across
/// sides: the occurrence of a class representative on the left and right is
/// replaced by the same member (the Replace theorem substitutes an
/// attribute everywhere at once).
pub fn expanded_ods(result: &DiscoveryResult, limit: usize) -> Vec<Od> {
    let classes = class_members(result);
    let mut out: Vec<Od> = Vec::new();

    // Consistent substitution: enumerate assignments per distinct attribute.
    let emit_variants = |lhs: &AttrList, rhs: &AttrList, out: &mut Vec<Od>| {
        let mut distinct: Vec<ColumnId> = Vec::new();
        for &a in lhs.as_slice().iter().chain(rhs.as_slice()) {
            if !distinct.contains(&a) {
                distinct.push(a);
            }
        }
        // Cartesian product of class members per distinct attribute.
        let mut assignments: Vec<HashMap<ColumnId, ColumnId>> = vec![HashMap::new()];
        for &a in &distinct {
            let members = classes.get(&a).cloned().unwrap_or_else(|| vec![a]);
            let mut next = Vec::with_capacity(assignments.len() * members.len());
            for asg in &assignments {
                for &m in &members {
                    let mut asg = asg.clone();
                    asg.insert(a, m);
                    next.push(asg);
                }
            }
            assignments = next;
        }
        for asg in assignments {
            if out.len() >= limit {
                return;
            }
            let map = |l: &AttrList| {
                AttrList::from(
                    l.as_slice()
                        .iter()
                        .map(|a| *asg.get(a).unwrap_or(a))
                        .collect::<Vec<_>>(),
                )
            };
            out.push(Od::new(map(lhs), map(rhs)));
        }
    };

    for ocd in &result.ocds {
        for od in ods_of_ocd(&ocd.lhs, &ocd.rhs) {
            if out.len() >= limit {
                return out;
            }
            emit_variants(&od.lhs, &od.rhs, &mut out);
        }
    }
    for od in &result.ods {
        if out.len() >= limit {
            return out;
        }
        emit_variants(&od.lhs, &od.rhs, &mut out);
    }
    for class in &result.equivalence_classes {
        for &a in class {
            for &b in class {
                if a != b {
                    if out.len() >= limit {
                        return out;
                    }
                    out.push(Od::new(AttrList::single(a), AttrList::single(b)));
                }
            }
        }
    }
    for &c in &result.constants {
        if out.len() >= limit {
            return out;
        }
        out.push(Od::new(AttrList::empty(), AttrList::single(c)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::Ocd;

    fn l(ids: &[usize]) -> AttrList {
        AttrList::from_slice(ids)
    }

    #[test]
    fn ocd_expands_to_four_ods() {
        let [a, b, c, d] = ods_of_ocd(&l(&[0]), &l(&[1]));
        assert_eq!(a.to_string(), "[0,1] -> [1,0]");
        assert_eq!(b.to_string(), "[1,0] -> [0,1]");
        assert_eq!(c.to_string(), "[0,1] -> [1]");
        assert_eq!(d.to_string(), "[1,0] -> [0]");
    }

    #[test]
    fn count_without_classes() {
        let result = DiscoveryResult {
            ocds: vec![Ocd::new(l(&[0]), l(&[1]))],
            ods: vec![Od::new(l(&[0]), l(&[2]))],
            constants: vec![3],
            reduced_attributes: vec![0, 1, 2],
            ..DiscoveryResult::default()
        };
        // 4 (OCD) + 1 (OD) + 0 (no classes) + 1 (constant) = 6.
        assert_eq!(expanded_od_count(&result), 6);
        let ods = expanded_ods(&result, usize::MAX);
        assert_eq!(ods.len(), 6);
    }

    #[test]
    fn class_substitution_multiplies_counts() {
        // Class {1, 4}: every dependency mentioning 1 doubles.
        let result = DiscoveryResult {
            ocds: vec![Ocd::new(l(&[0]), l(&[1]))],
            ods: vec![],
            equivalence_classes: vec![vec![1, 4]],
            reduced_attributes: vec![0, 1, 2],
            ..DiscoveryResult::default()
        };
        // OCD: 4 ODs × 2 variants = 8; class pairs: 2. Total 10.
        assert_eq!(expanded_od_count(&result), 10);
        let ods = expanded_ods(&result, usize::MAX);
        assert_eq!(ods.len(), 10);
        // A variant with 4 substituted for 1 must appear.
        assert!(ods.iter().any(|od| od.to_string() == "[0,4] -> [4,0]"));
        // Substitution is consistent across sides: never 1 on one side and
        // 4 on the other within the same variant of the equivalence pair.
        assert!(!ods.iter().any(|od| od.to_string() == "[0,1] -> [4,0]"));
    }

    #[test]
    fn limit_caps_materialization() {
        let result = DiscoveryResult {
            ocds: vec![Ocd::new(l(&[0]), l(&[1])), Ocd::new(l(&[0]), l(&[2]))],
            reduced_attributes: vec![0, 1, 2],
            ..DiscoveryResult::default()
        };
        assert_eq!(expanded_ods(&result, 3).len(), 3);
        assert_eq!(expanded_od_count(&result), 8);
    }

    #[test]
    fn list_variants_enumerates_products() {
        let mut classes = HashMap::new();
        classes.insert(0, vec![0, 5]);
        classes.insert(1, vec![1]);
        let vars = list_variants(&l(&[0, 1]), &classes);
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&l(&[0, 1])));
        assert!(vars.contains(&l(&[5, 1])));
    }

    #[test]
    fn empty_result_expands_to_nothing() {
        let result = DiscoveryResult::default();
        assert_eq!(expanded_od_count(&result), 0);
        assert!(expanded_ods(&result, 100).is_empty());
    }
}
