//! The OCDDISCOVER search (Algorithms 1–3).
//!
//! Starting from all single-attribute pairs, the breadth-first search checks
//! each OCD candidate `X ~ Y` with the single OD check `XY → YX`
//! (Theorem 4.1). Valid candidates are emitted and extended; invalid ones
//! are pruned together with their whole subtree (downward closure,
//! Theorem 3.7). For a valid candidate, the two OD directions `X → Y` and
//! `Y → X` are checked: a valid direction is emitted as an OD and prunes
//! the extensions of its left side (Theorem 3.9); an invalid direction
//! spawns children `XA ~ Y` (resp. `X ~ YA`) for every unused attribute `A`.
//!
//! Four execution modes implement the same traversal; see
//! [`crate::config::ParallelMode`]. Results are canonically sorted so all
//! modes return identical output. The `WorkStealing` mode additionally
//! groups each level's candidates into **prefix batches** (one batch per
//! distinct `X` side, the shared sort-key prefix of the level's `XY → YX`
//! checks) and schedules the batches over work-stealing deques
//! ([`crate::scheduler`]); its shared cache is epoch-published
//! ([`crate::shared_cache::EpochPrefixCache`]) so no lock is taken on the
//! check hot path.
//!
//! ## Failure and budget semantics
//!
//! The unit of both distribution *and* degradation is the level-2 branch
//! (the pair of first attributes; a candidate never leaves its branch).
//! Each branch runs inside `catch_unwind`: a panicking check quarantines
//! only that branch — its partial results are discarded, the surviving
//! branches merge normally, and the run reports
//! [`TerminationReason::WorkerFailure`] instead of crashing.
//!
//! `max_checks` is enforced through deterministic **per-branch
//! allowances**: the budget left after reduction is split evenly over the
//! branches in canonical seed order, and each branch stops on its own
//! account. Because a branch's traversal order is identical in every
//! execution mode, a budget-truncated run returns byte-identical partial
//! results under `Sequential`, `StaticQueues`, and `Rayon`. (The old
//! global counter stopped whichever worker raced past it first.) The
//! wall-clock budget and cancellation remain global and amortized — those
//! are inherently timing-dependent.

use crate::check::{check_ocd, check_od_after_ocd, SortCache};
use crate::config::{CheckerBackend, DiscoveryConfig, ParallelMode};
use crate::deps::{AttrList, Ocd, Od};
use crate::reduction::{columns_reduction, Reduction};
use crate::results::{DiscoveryResult, LevelStats};
use crate::runtime::{panic_message, Budget, StopCause, TerminationReason};
use crate::scheduler::{SchedulerStats, StealQueues, WorkerSchedStats};
use crate::shared_cache::{CacheStats, EpochPrefixCache, SharedPrefixCache};
use crate::snapshot::{
    CandidatePair, CheckpointRecorder, SearchSnapshot, SnapshotBranch, SnapshotError,
    SnapshotFailure, SNAPSHOT_VERSION,
};
use crate::sorted_partitions::{PartitionChecker, SortedPartition};
use ocdd_relation::sort::kernel_stats;
use ocdd_relation::{ColumnId, Relation};
use rayon::prelude::*;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// An OCD candidate `X ~ Y` in the search tree. The derived order (by `x`,
/// then `y`) is the canonical generation order within a level; `dedup_level`
/// exploits it for its adjacent-dedup fast path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Candidate {
    x: AttrList,
    y: AttrList,
}

impl Candidate {
    /// The level-2 branch this candidate belongs to: the pair of first
    /// attributes of its sides. Extensions only append, so the branch is
    /// invariant over a candidate's whole subtree (§4.2.2).
    fn branch(&self) -> (ColumnId, ColumnId) {
        let a = self.x.as_slice().first().copied().unwrap_or(ColumnId::MAX);
        let b = self.y.as_slice().first().copied().unwrap_or(ColumnId::MAX);
        (a, b)
    }
}

/// Branch root of an emitted OCD, used to strip a quarantined branch's
/// dependencies. `lhs` keeps the candidate's `x` side, so the pair is
/// already in seed order (`x[0] < y[0]`).
fn ocd_branch(ocd: &Ocd) -> (ColumnId, ColumnId) {
    let a = ocd.lhs.as_slice().first().copied().unwrap_or(ColumnId::MAX);
    let b = ocd.rhs.as_slice().first().copied().unwrap_or(ColumnId::MAX);
    (a, b)
}

/// Branch root of an emitted OD (emitted in both directions, so order the
/// pair).
fn od_branch(od: &Od) -> (ColumnId, ColumnId) {
    let a = od.lhs.as_slice().first().copied().unwrap_or(ColumnId::MAX);
    let b = od.rhs.as_slice().first().copied().unwrap_or(ColumnId::MAX);
    (a.min(b), a.max(b))
}

/// What processing one candidate produced.
#[derive(Debug, Default)]
struct Emission {
    ocds: Vec<Ocd>,
    ods: Vec<Od>,
    children: Vec<Candidate>,
    checks: u64,
    generated: u64,
}

impl Emission {
    /// Reset for reuse across candidates, keeping the vector capacities.
    fn clear(&mut self) {
        self.ocds.clear();
        self.ods.clear();
        self.children.clear();
        self.checks = 0;
        self.generated = 0;
    }
}

/// The run-wide shared prefix caches, when enabled: one per backend kind
/// (only the configured backend's slot is populated). Cloned `Arc`s are
/// handed to every worker's [`Checker`].
struct SharedCaches {
    sort: Option<Arc<SharedPrefixCache<Vec<u32>>>>,
    parts: Option<Arc<SharedPrefixCache<SortedPartition>>>,
    /// Epoch-published (read-mostly) variants, used by `WorkStealing` mode:
    /// workers read an immutable snapshot lock-free and buffer inserts
    /// locally; the driver publishes between levels.
    sort_epoch: Option<Arc<EpochPrefixCache<Vec<u32>>>>,
    parts_epoch: Option<Arc<EpochPrefixCache<SortedPartition>>>,
}

impl SharedCaches {
    fn from_config(config: &DiscoveryConfig) -> SharedCaches {
        let mut caches = SharedCaches {
            sort: None,
            parts: None,
            sort_epoch: None,
            parts_epoch: None,
        };
        if !config.shared_cache {
            return caches;
        }
        let epoch = matches!(config.mode, ParallelMode::WorkStealing(_));
        match config.checker {
            // Resort caches nothing by definition.
            CheckerBackend::Resort => {}
            CheckerBackend::PrefixCache if epoch => {
                #[allow(unused_mut)]
                let mut cache = EpochPrefixCache::new(config.cache_budget_bytes);
                #[cfg(any(test, feature = "fault-injection"))]
                cache.set_fault_plan(config.fault.clone());
                caches.sort_epoch = Some(Arc::new(cache));
            }
            CheckerBackend::PrefixCache => {
                #[allow(unused_mut)]
                let mut cache = SharedPrefixCache::new(config.cache_budget_bytes);
                #[cfg(any(test, feature = "fault-injection"))]
                cache.set_fault_plan(config.fault.clone());
                caches.sort = Some(Arc::new(cache));
            }
            CheckerBackend::SortedPartitions if epoch => {
                #[allow(unused_mut)]
                let mut cache = EpochPrefixCache::new(config.cache_budget_bytes);
                #[cfg(any(test, feature = "fault-injection"))]
                cache.set_fault_plan(config.fault.clone());
                caches.parts_epoch = Some(Arc::new(cache));
            }
            CheckerBackend::SortedPartitions => {
                #[allow(unused_mut)]
                let mut cache = SharedPrefixCache::new(config.cache_budget_bytes);
                #[cfg(any(test, feature = "fault-injection"))]
                cache.set_fault_plan(config.fault.clone());
                caches.parts = Some(Arc::new(cache));
            }
        }
        caches
    }

    fn stats(&self) -> Option<CacheStats> {
        self.sort
            .as_ref()
            .map(|c| c.stats())
            .or_else(|| self.parts.as_ref().map(|c| c.stats()))
            .or_else(|| self.sort_epoch.as_ref().map(|c| c.stats()))
            .or_else(|| self.parts_epoch.as_ref().map(|c| c.stats()))
    }
}

/// Backend state of a [`Checker`].
enum CheckerBackendState<'r> {
    /// Re-sort per candidate (paper-faithful).
    Plain(&'r Relation),
    /// Sorted-index prefix cache.
    Cached(SortCache<'r>),
    /// Sorted partitions with incremental refinement.
    Partitions(Box<PartitionChecker<'r>>),
}

/// Per-worker checker state for the configured [`CheckerBackend`].
struct Checker<'r> {
    backend: CheckerBackendState<'r>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault: Option<Arc<crate::runtime::FaultPlan>>,
}

impl<'r> Checker<'r> {
    fn new(rel: &'r Relation, config: &DiscoveryConfig, shared: &SharedCaches) -> Checker<'r> {
        let backend = match config.checker {
            CheckerBackend::Resort => CheckerBackendState::Plain(rel),
            CheckerBackend::PrefixCache => {
                CheckerBackendState::Cached(match (&shared.sort_epoch, &shared.sort) {
                    (Some(cache), _) => SortCache::with_epoch(rel, Arc::clone(cache)),
                    (None, Some(cache)) => SortCache::with_shared(rel, Arc::clone(cache)),
                    (None, None) => SortCache::new(rel),
                })
            }
            CheckerBackend::SortedPartitions => CheckerBackendState::Partitions(Box::new(
                match (&shared.parts_epoch, &shared.parts) {
                    (Some(cache), _) => PartitionChecker::with_epoch(rel, Arc::clone(cache)),
                    (None, Some(cache)) => PartitionChecker::with_shared(rel, Arc::clone(cache)),
                    (None, None) => PartitionChecker::new(rel),
                },
            )),
        };
        Checker {
            backend,
            #[cfg(any(test, feature = "fault-injection"))]
            fault: config.fault.clone(),
        }
    }

    fn check_ocd(&mut self, x: &AttrList, y: &AttrList) -> bool {
        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(plan) = &self.fault {
            plan.check_latency();
        }
        match &mut self.backend {
            CheckerBackendState::Plain(rel) => check_ocd(rel, x, y).is_valid(),
            CheckerBackendState::Cached(c) => c.check_ocd(x, y).is_valid(),
            CheckerBackendState::Partitions(p) => p.check_ocd(x, y).is_valid(),
        }
    }

    /// Fused OD direction check, valid only right after `check_ocd(x, y)`
    /// returned true for the enclosing candidate: the valid OCD rules out
    /// swap witnesses, so only the cheaper split-only scan remains (see
    /// [`crate::check::check_od_after_ocd`]). Same verdict as `check_od`.
    fn check_od_after_ocd(&mut self, x: &AttrList, y: &AttrList) -> bool {
        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(plan) = &self.fault {
            plan.check_latency();
        }
        match &mut self.backend {
            CheckerBackendState::Plain(rel) => check_od_after_ocd(rel, x, y),
            CheckerBackendState::Cached(c) => c.check_od_after_ocd(x, y),
            CheckerBackendState::Partitions(p) => p.check_od_after_ocd(x, y),
        }
    }

    /// Refresh the epoch-cache snapshot at a level boundary (no-op for the
    /// other cache tiers).
    fn begin_level(&mut self) {
        match &mut self.backend {
            CheckerBackendState::Plain(_) => {}
            CheckerBackendState::Cached(c) => c.begin_level(),
            CheckerBackendState::Partitions(p) => p.begin_level(),
        }
    }

    /// Hand this worker's buffered epoch-cache inserts to the shared cache
    /// (no-op for the other cache tiers). Called by the driver between
    /// levels, in worker order, so publish epochs are deterministic.
    fn publish_pending(&mut self) {
        match &mut self.backend {
            CheckerBackendState::Plain(_) => {}
            CheckerBackendState::Cached(c) => c.publish_pending(),
            CheckerBackendState::Partitions(p) => p.publish_pending(),
        }
    }
}

/// Check one candidate and, if it is a valid OCD, emit it and generate the
/// next level (Algorithm 3).
fn process_candidate(
    universe: &[ColumnId],
    cand: &Candidate,
    checker: &mut Checker<'_>,
    out: &mut Emission,
) {
    out.checks += 1;
    if !checker.check_ocd(&cand.x, &cand.y) {
        // Pruning rule (Theorem 3.7): the whole subtree is invalid.
        return;
    }
    out.ocds.push(Ocd::new(cand.x.clone(), cand.y.clone()));

    let unused: Vec<ColumnId> = universe
        .iter()
        .copied()
        .filter(|&a| !cand.x.contains(a) && !cand.y.contains(a))
        .collect();

    // Direction X -> Y (Algorithm 3 lines 3-9). The OCD `X ~ Y` just
    // validated, so the direction checks use the fused split-only scan.
    out.checks += 1;
    if checker.check_od_after_ocd(&cand.x, &cand.y) {
        out.ods.push(Od::new(cand.x.clone(), cand.y.clone()));
    } else {
        // lint: allow(unprobed-loop, child generation bounded by the unused attributes of one candidate (schema width))
        for &a in &unused {
            out.generated += 1;
            out.children.push(Candidate {
                x: cand.x.with_appended(a),
                y: cand.y.clone(),
            });
        }
    }

    // Direction Y -> X (Algorithm 3 lines 10-16).
    out.checks += 1;
    if checker.check_od_after_ocd(&cand.y, &cand.x) {
        out.ods.push(Od::new(cand.y.clone(), cand.x.clone()));
    } else {
        // lint: allow(unprobed-loop, child generation bounded by the unused attributes of one candidate (schema width))
        for &a in &unused {
            out.generated += 1;
            out.children.push(Candidate {
                x: cand.x.clone(),
                y: cand.y.with_appended(a),
            });
        }
    }
}

/// Deduplicate a level worth of children in place (each candidate can be
/// produced by two parents), keeping first occurrences in order.
///
/// Fast path: when the level is already in canonical (sorted) order —
/// common for single-branch subtrees, whose children are generated in
/// order — duplicates are adjacent and an `O(n)` `dedup` suffices. The
/// general path builds a keep-mask from borrowed candidates instead of
/// cloning every `Candidate` into a `HashSet` (the old allocation churn:
/// two `AttrList` clones per child, immediately dropped for duplicates).
// lint: allow(panic-reachability, w[0]/w[1] index length-2 slices produced by windows(2))
fn dedup_level(level: &mut Vec<Candidate>) {
    if level.len() < 2 {
        return;
    }
    if level.windows(2).all(|w| w[0] <= w[1]) {
        level.dedup();
        return;
    }
    let mut seen: HashSet<&Candidate> = HashSet::with_capacity(level.len());
    let keep: Vec<bool> = level.iter().map(|c| seen.insert(c)).collect();
    drop(seen);
    let mut idx = 0;
    level.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

/// Split the check budget left after reduction into one allowance per
/// level-2 branch, in canonical seed order (the remainder goes to the
/// first branches). Deterministic by construction: a branch's traversal
/// never depends on another branch, so every execution mode truncates at
/// the same candidate. Each branch may overshoot its allowance by at most
/// one candidate (≤ 3 checks) — the same spirit as
/// [`crate::runtime::DEADLINE_CHECK_INTERVAL`].
fn branch_allowances(max_checks: Option<u64>, already_spent: u64, branches: usize) -> Vec<u64> {
    match max_checks {
        None => vec![u64::MAX; branches],
        Some(cap) => {
            if branches == 0 {
                return Vec::new();
            }
            let remaining = cap.saturating_sub(already_spent);
            let base = remaining / branches as u64;
            let extra = remaining % branches as u64;
            (0..branches as u64)
                .map(|i| base + u64::from(i < extra))
                .collect()
        }
    }
}

/// A subtree traversal used by the branch-sequential modes: BFS over
/// `seeds` until the tree is exhausted, the branch allowance is spent, or
/// the global budget (time / cancellation) stops the run. Accumulates into
/// `acc`.
#[allow(clippy::too_many_arguments)]
fn run_subtree(
    universe: &[ColumnId],
    seeds: Vec<Candidate>,
    config: &DiscoveryConfig,
    budget: &Budget,
    checker: &mut Checker<'_>,
    allowance: u64,
    acc: &mut SearchAccumulator,
) {
    let mut spent = 0u64;
    let mut level = seeds;
    // Reused across candidates and levels: `em` keeps its vector
    // capacities, `next` swaps with `level` so the old level's allocation
    // backs the next one.
    let mut next: Vec<Candidate> = Vec::new();
    let mut em = Emission::default();
    let mut level_no = 2usize;
    while !level.is_empty() {
        if config.max_level.is_some_and(|max| level_no > max) {
            acc.level_capped = true;
            break;
        }
        let mut stats = LevelStats {
            level: level_no,
            ..LevelStats::default()
        };
        for cand in &level {
            if spent >= allowance {
                // Pre-check: the branch's share of `max_checks` is gone.
                acc.levels.push(stats);
                acc.check_budget_hit = true;
                return;
            }
            #[cfg(any(test, feature = "fault-injection"))]
            if let Some(plan) = &config.fault {
                plan.before_candidate(cand.branch());
            }
            em.clear();
            process_candidate(universe, cand, checker, &mut em);
            stats.candidates += 1;
            stats.valid_ocds += em.ocds.len() as u64;
            stats.valid_ods += em.ods.len() as u64;
            acc.ocds.append(&mut em.ocds);
            acc.ods.append(&mut em.ods);
            acc.generated += em.generated;
            next.append(&mut em.children);
            spent += em.checks;
            budget.record(em.checks);
            if !budget.probe() {
                // Time budget or cancellation: stop where we are.
                acc.levels.push(stats);
                return;
            }
        }
        acc.levels.push(stats);
        if config.dedup_candidates {
            dedup_level(&mut next);
        }
        std::mem::swap(&mut level, &mut next);
        next.clear();
        level_no += 1;
    }
}

/// Mutable state shared by a traversal.
#[derive(Debug, Default)]
struct SearchAccumulator {
    ocds: Vec<Ocd>,
    ods: Vec<Od>,
    generated: u64,
    levels: Vec<LevelStats>,
    /// `max_level` truncated at least one branch.
    level_capped: bool,
    /// A branch ran out of its `max_checks` allowance.
    check_budget_hit: bool,
}

impl SearchAccumulator {
    fn merge(&mut self, other: SearchAccumulator) {
        self.ocds.extend(other.ocds);
        self.ods.extend(other.ods);
        self.generated += other.generated;
        self.level_capped |= other.level_capped;
        self.check_budget_hit |= other.check_budget_hit;
        // lint: allow(unprobed-loop, stats fold bounded by the number of search levels)
        for stat in other.levels {
            match self.levels.iter_mut().find(|s| s.level == stat.level) {
                Some(mine) => {
                    mine.candidates += stat.candidates;
                    mine.valid_ocds += stat.valid_ocds;
                    mine.valid_ods += stat.valid_ods;
                }
                None => self.levels.push(stat),
            }
        }
    }
}

/// One quarantined level-2 branch.
#[derive(Debug, Clone)]
struct BranchFailure {
    branch: (ColumnId, ColumnId),
    message: String,
}

/// Run a queue of `(seed, allowance)` branches sequentially, isolating
/// each branch behind `catch_unwind`. A panicking branch loses its partial
/// accumulator (the quarantine: its results may be inconsistent) and is
/// recorded as a [`BranchFailure`]; the checker is rebuilt afterwards so a
/// possibly half-updated private cache cannot leak into later branches.
/// Used directly by `Sequential` mode and by every `StaticQueues` worker.
fn run_queue(
    rel: &Relation,
    universe: &[ColumnId],
    queue: Vec<(Candidate, u64)>,
    config: &DiscoveryConfig,
    budget: &Budget,
    shared: &SharedCaches,
) -> (SearchAccumulator, Vec<BranchFailure>) {
    let mut acc = SearchAccumulator::default();
    let mut failures = Vec::new();
    let mut checker = Checker::new(rel, config, shared);
    for (seed, allowance) in queue {
        if budget.is_stopped() {
            break;
        }
        let branch = seed.branch();
        // UnwindSafe: `budget` and the shared caches are atomics/poison-
        // recovering mutexes; `checker` is the one piece of state a panic
        // can leave inconsistent, and it is rebuilt below on failure.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut local = SearchAccumulator::default();
            run_subtree(
                universe,
                vec![seed],
                config,
                budget,
                &mut checker,
                allowance,
                &mut local,
            );
            local
        }));
        match outcome {
            Ok(local) => acc.merge(local),
            Err(payload) => {
                failures.push(BranchFailure {
                    branch,
                    message: panic_message(payload.as_ref()),
                });
                checker = Checker::new(rel, config, shared);
            }
        }
    }
    (acc, failures)
}

/// Per-branch bookkeeping for the speculative level drivers (`Rayon`,
/// `WorkStealing`).
struct BranchState {
    allowance: u64,
    spent: u64,
    stopped: bool,
    failed: bool,
}

/// What speculatively processing one candidate produced under a
/// level-synchronous driver (`Rayon`, `WorkStealing`).
enum SpecOutcome {
    /// The global budget had already stopped the run.
    Skipped,
    /// Processed normally.
    Done(Emission),
    /// The check panicked; payload text attached.
    Panicked(String),
}

/// Seed the per-branch bookkeeping of a speculative level driver.
fn branch_states(queue: &[(Candidate, u64)]) -> HashMap<(ColumnId, ColumnId), BranchState> {
    queue
        .iter()
        .map(|(seed, allowance)| {
            (
                seed.branch(),
                BranchState {
                    allowance: *allowance,
                    spent: 0,
                    stopped: false,
                    failed: false,
                },
            )
        })
        .collect()
}

/// The input-ordered post-filter shared by the speculative level drivers:
/// walk the level's outcomes in candidate order, replay the per-branch
/// allowance accounting, quarantine panicked branches, and assemble the
/// next level into the reused `next` buffer. Because a branch's candidates
/// appear within each level in branch-local BFS order, every branch is
/// truncated at exactly the candidate the branch-sequential modes would —
/// speculative work past that point is dropped, keeping results and
/// `checks` byte-identical across modes.
#[allow(clippy::too_many_arguments)]
fn absorb_level_outcomes(
    level: &[Candidate],
    outcomes: Vec<SpecOutcome>,
    states: &mut HashMap<(ColumnId, ColumnId), BranchState>,
    level_no: usize,
    config: &DiscoveryConfig,
    budget: &Budget,
    acc: &mut SearchAccumulator,
    failures: &mut Vec<BranchFailure>,
    next: &mut Vec<Candidate>,
    next_parts: &mut Vec<((ColumnId, ColumnId), Vec<Candidate>)>,
    mut recorder: Option<&mut CheckpointRecorder>,
) {
    let mut stats = LevelStats {
        level: level_no,
        ..LevelStats::default()
    };
    // (branch, children) in candidate order; flattened after the pass so a
    // branch stopping mid-level drops *all* its level children, exactly as
    // `run_subtree`'s early return does.
    next_parts.clear();
    // lint: allow(unprobed-loop, one bookkeeping pass over the level's outcomes; the checks themselves ran under per-batch budget polls)
    for (cand, outcome) in level.iter().zip(outcomes) {
        let branch = cand.branch();
        let Some(state) = states.get_mut(&branch) else {
            continue;
        };
        if state.failed || state.stopped {
            continue;
        }
        match outcome {
            SpecOutcome::Skipped => {}
            SpecOutcome::Panicked(message) => {
                state.failed = true;
                failures.push(BranchFailure { branch, message });
            }
            SpecOutcome::Done(em) => {
                if state.spent >= state.allowance {
                    state.stopped = true;
                    acc.check_budget_hit = true;
                    continue;
                }
                state.spent += em.checks;
                budget.record(em.checks);
                stats.candidates += 1;
                stats.valid_ocds += em.ocds.len() as u64;
                stats.valid_ods += em.ods.len() as u64;
                if em.ocds.is_empty() {
                    // Invalid candidate: the subtree is pruned (Theorem
                    // 3.7). Recorded for the dump's lattice verdicts.
                    if let Some(rec) = recorder.as_deref_mut() {
                        rec.push_pruned(cand.x.as_slice(), cand.y.as_slice());
                    }
                }
                acc.ocds.extend(em.ocds);
                acc.ods.extend(em.ods);
                acc.generated += em.generated;
                next_parts.push((branch, em.children));
            }
        }
    }
    acc.levels.push(stats);
    next.clear();
    // lint: allow(unprobed-loop, one pass over the level's surviving branches)
    for (branch, children) in next_parts.drain(..) {
        if states.get(&branch).is_some_and(|s| !s.stopped && !s.failed) {
            next.extend(children);
        }
    }
    if config.dedup_candidates {
        dedup_level(next);
    }
}

/// Position of a level-synchronous driver in the search: the per-branch
/// allowance bookkeeping plus the current frontier. Built either from the
/// level-2 seed queue (fresh run) or from a [`SearchSnapshot`] (resume) —
/// the two are indistinguishable to the drivers, which is exactly what
/// makes `resume == uninterrupted` hold.
struct LevelCursor {
    states: HashMap<(ColumnId, ColumnId), BranchState>,
    level: Vec<Candidate>,
    level_no: usize,
}

impl LevelCursor {
    fn from_queue(queue: Vec<(Candidate, u64)>) -> LevelCursor {
        let states = branch_states(&queue);
        let level = queue.into_iter().map(|(seed, _)| seed).collect();
        LevelCursor {
            states,
            level,
            level_no: 2,
        }
    }

    fn from_snapshot(snap: &SearchSnapshot) -> LevelCursor {
        let states = snap
            .branches
            .iter()
            .map(|b| {
                (
                    b.branch,
                    BranchState {
                        allowance: b.allowance,
                        spent: b.spent,
                        stopped: b.stopped,
                        failed: b.failed,
                    },
                )
            })
            .collect();
        let level = snap
            .frontier
            .iter()
            .map(|p| Candidate {
                x: AttrList::from_slice(&p.x),
                y: AttrList::from_slice(&p.y),
            })
            .collect();
        LevelCursor {
            states,
            level,
            level_no: snap.level,
        }
    }
}

fn pair_of(x: &AttrList, y: &AttrList) -> CandidatePair {
    CandidatePair {
        x: x.as_slice().to_vec(),
        y: y.as_slice().to_vec(),
    }
}

/// Dump the boundary entering `level_no` if the recorder's interval wants
/// it: the frontier, the per-branch accounting (sorted — `states` is a
/// `HashMap`), the accumulated results, and the budget/kernel counters
/// that make a resumed run's observability continue seamlessly. Panic-free
/// and IO-error-swallowing by the recorder's contract — a checkpoint
/// failure must never kill the search.
#[allow(clippy::too_many_arguments)]
fn record_checkpoint(
    rec: &mut CheckpointRecorder,
    level_no: usize,
    level: &[Candidate],
    states: &HashMap<(ColumnId, ColumnId), BranchState>,
    acc: &SearchAccumulator,
    failures: &[BranchFailure],
    budget: &Budget,
    shared: &SharedCaches,
) {
    if !rec.wants(level_no) {
        return;
    }
    let mut branches: Vec<SnapshotBranch> = states
        .iter()
        .map(|(&branch, s)| SnapshotBranch {
            branch,
            allowance: s.allowance,
            spent: s.spent,
            stopped: s.stopped,
            failed: s.failed,
        })
        .collect();
    branches.sort_by_key(|b| b.branch);
    let snap = SearchSnapshot {
        version: SNAPSHOT_VERSION,
        manifest: rec.manifest(),
        config: rec.fingerprint(),
        level: level_no,
        frontier: level.iter().map(|c| pair_of(&c.x, &c.y)).collect(),
        branches,
        failures: failures
            .iter()
            .map(|f| SnapshotFailure {
                branch: f.branch,
                message: f.message.clone(),
            })
            .collect(),
        ocds: acc.ocds.iter().map(|o| pair_of(&o.lhs, &o.rhs)).collect(),
        ods: acc.ods.iter().map(|o| pair_of(&o.lhs, &o.rhs)).collect(),
        generated: acc.generated,
        levels: acc.levels.clone(),
        level_capped: acc.level_capped,
        check_budget_hit: acc.check_budget_hit,
        checks: budget.checks(),
        elapsed_ms: rec.elapsed_ms(),
        kernels: rec.kernels_now(),
        cache: rec.cache_meta(shared.stats()),
        approx: None,
        pruned: rec.pruned_pairs(),
        termination: None,
    };
    rec.write_boundary(snap);
}

/// Level-synchronous sequential driver, used by `Sequential` (and
/// `StaticQueues`, which has no global frontier to dump) whenever a
/// checkpoint recorder is installed or a run is resumed. One checker
/// processes the whole level in candidate order and the outcomes go
/// through the same input-ordered post-filter as the parallel drivers
/// ([`absorb_level_outcomes`]) — which is the existing proof that its
/// results are byte-identical to `run_queue`'s depth-first-by-branch
/// traversal. Candidate panics are isolated exactly as in the `Rayon`
/// driver: caught per candidate, the possibly-inconsistent checker
/// rebuilt, the branch quarantined by the post-filter.
#[allow(clippy::too_many_arguments)]
fn run_sequential_levels(
    rel: &Relation,
    universe: &[ColumnId],
    cursor: LevelCursor,
    config: &DiscoveryConfig,
    budget: &Budget,
    shared: &SharedCaches,
    acc: &mut SearchAccumulator,
    failures: &mut Vec<BranchFailure>,
    mut recorder: Option<&mut CheckpointRecorder>,
) {
    let LevelCursor {
        mut states,
        mut level,
        mut level_no,
    } = cursor;
    let mut next: Vec<Candidate> = Vec::new();
    let mut next_parts: Vec<((ColumnId, ColumnId), Vec<Candidate>)> = Vec::new();
    let mut checker = Checker::new(rel, config, shared);
    // Initial boundary: a kill at any point during the first level already
    // has a resume point.
    if let Some(rec) = recorder.as_deref_mut() {
        record_checkpoint(
            rec, level_no, &level, &states, acc, failures, budget, shared,
        );
    }
    while !level.is_empty() && !budget.is_stopped() {
        if config.max_level.is_some_and(|max| level_no > max) {
            acc.level_capped = true;
            break;
        }
        checker.begin_level();
        let mut results: Vec<SpecOutcome> = Vec::with_capacity(level.len());
        for cand in &level {
            let skip = budget.is_stopped()
                || states
                    .get(&cand.branch())
                    .is_none_or(|s| s.stopped || s.failed);
            if skip {
                // The post-filter ignores the outcome of a stopped or
                // failed branch, so the check can be elided entirely.
                results.push(SpecOutcome::Skipped);
                continue;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(any(test, feature = "fault-injection"))]
                if let Some(plan) = &config.fault {
                    plan.before_candidate(cand.branch());
                }
                let mut em = Emission::default();
                process_candidate(universe, cand, &mut checker, &mut em);
                em
            }));
            match outcome {
                Ok(em) => {
                    budget.probe();
                    results.push(SpecOutcome::Done(em));
                }
                Err(payload) => {
                    // Quarantine the possibly-inconsistent checker state
                    // before the next candidate.
                    checker = Checker::new(rel, config, shared);
                    checker.begin_level();
                    results.push(SpecOutcome::Panicked(panic_message(payload.as_ref())));
                }
            }
        }
        absorb_level_outcomes(
            &level,
            results,
            &mut states,
            level_no,
            config,
            budget,
            acc,
            failures,
            &mut next,
            &mut next_parts,
            recorder.as_deref_mut(),
        );
        checker.publish_pending();
        std::mem::swap(&mut level, &mut next);
        level_no += 1;
        // Dump the completed boundary — but not a level cut short by the
        // global time budget or cancellation, whose skipped candidates
        // would be silently lost on resume. The previous boundary stays
        // the resume point in that case.
        if !budget.is_stopped() {
            if let Some(rec) = recorder.as_deref_mut() {
                record_checkpoint(
                    rec, level_no, &level, &states, acc, failures, budget, shared,
                );
            }
        }
    }
}

/// The `Rayon` mode driver: per-level `par_iter` over *all* branches'
/// candidates, then a single-threaded, input-ordered post-filter that
/// replays the per-branch allowance accounting. Because the rayon shim's
/// `collect` preserves input order and a branch's candidates appear within
/// each level in branch-local BFS order, the post-filter truncates every
/// branch at exactly the candidate the branch-sequential modes would —
/// speculative work past that point is dropped, keeping results and
/// `checks` byte-identical across modes. Panics are caught per candidate
/// (the shim's join would abort otherwise); a panicked branch is marked
/// failed and its candidates are ignored from then on, while its
/// earlier-level emissions are stripped by the caller's quarantine filter.
#[allow(clippy::too_many_arguments)]
fn run_rayon_levels(
    rel: &Relation,
    universe: &[ColumnId],
    cursor: LevelCursor,
    config: &DiscoveryConfig,
    budget: &Budget,
    shared: &SharedCaches,
    acc: &mut SearchAccumulator,
    failures: &mut Vec<BranchFailure>,
    mut recorder: Option<&mut CheckpointRecorder>,
) {
    let LevelCursor {
        mut states,
        mut level,
        mut level_no,
    } = cursor;
    // Reused level-to-level, see `absorb_level_outcomes`.
    let mut next: Vec<Candidate> = Vec::new();
    let mut next_parts: Vec<((ColumnId, ColumnId), Vec<Candidate>)> = Vec::new();
    if let Some(rec) = recorder.as_deref_mut() {
        record_checkpoint(
            rec, level_no, &level, &states, acc, failures, budget, shared,
        );
    }
    while !level.is_empty() && !budget.is_stopped() {
        if config.max_level.is_some_and(|max| level_no > max) {
            acc.level_capped = true;
            break;
        }
        let results: Vec<SpecOutcome> = level
            .par_iter()
            .map_init(
                || Checker::new(rel, config, shared),
                |checker, cand| {
                    if budget.is_stopped() {
                        return SpecOutcome::Skipped;
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        #[cfg(any(test, feature = "fault-injection"))]
                        if let Some(plan) = &config.fault {
                            plan.before_candidate(cand.branch());
                        }
                        let mut em = Emission::default();
                        process_candidate(universe, cand, checker, &mut em);
                        em
                    }));
                    match outcome {
                        Ok(em) => {
                            budget.probe();
                            SpecOutcome::Done(em)
                        }
                        Err(payload) => {
                            // Quarantine the possibly-inconsistent private
                            // checker state before the next candidate.
                            *checker = Checker::new(rel, config, shared);
                            SpecOutcome::Panicked(panic_message(payload.as_ref()))
                        }
                    }
                },
            )
            .collect();

        absorb_level_outcomes(
            &level,
            results,
            &mut states,
            level_no,
            config,
            budget,
            acc,
            failures,
            &mut next,
            &mut next_parts,
            recorder.as_deref_mut(),
        );
        std::mem::swap(&mut level, &mut next);
        level_no += 1;
        if !budget.is_stopped() {
            if let Some(rec) = recorder.as_deref_mut() {
                record_checkpoint(
                    rec, level_no, &level, &states, acc, failures, budget, shared,
                );
            }
        }
    }
}

/// Group a level's candidates into prefix batches: one batch per distinct
/// `x` side — the shared sort-key prefix of the level's `XY → YX` checks —
/// in order of first appearance, each holding its candidate indexes in
/// level order. The first candidate of a batch materializes the `X` prefix
/// index (or partition) in the worker's cache; the remaining members refine
/// it, so keeping a batch on one worker turns the prefix from a per-check
/// cache lookup into a guaranteed warm hit without touching shared state.
fn level_batches(level: &[Candidate]) -> Vec<(AttrList, Vec<usize>)> {
    let mut by_key: HashMap<&AttrList, usize> = HashMap::with_capacity(level.len());
    let mut batches: Vec<(AttrList, Vec<usize>)> = Vec::new();
    // lint: allow(unprobed-loop, batching pass, one iteration per level candidate)
    for (i, cand) in level.iter().enumerate() {
        match by_key.get(&cand.x) {
            Some(&b) => {
                if let Some(batch) = batches.get_mut(b) {
                    batch.1.push(i);
                }
            }
            None => {
                by_key.insert(&cand.x, batches.len());
                batches.push((cand.x.clone(), vec![i]));
            }
        }
    }
    batches
}

/// Run one prefix batch on a `WorkStealing` worker, pushing a
/// `(candidate index, outcome)` pair for every member.
///
/// The cancellation/time budget is polled *immediately* (not amortized)
/// once per batch — [`Budget::probe_now`] — so a cancelled run stops
/// within one batch; within the batch the cheaper amortized probe is kept,
/// matching the other modes' cadence. A panicking candidate is caught
/// here: the possibly-inconsistent checker is rebuilt and the batch
/// *resumes after the panicked member*, so sibling branches sharing the
/// prefix are not lost (their outcomes stand; the failed candidate's own
/// branch is quarantined by the post-filter).
#[allow(clippy::too_many_arguments)]
fn run_batch<'r>(
    rel: &'r Relation,
    universe: &[ColumnId],
    members: &[usize],
    level: &[Candidate],
    checker: &mut Checker<'r>,
    config: &DiscoveryConfig,
    shared: &SharedCaches,
    budget: &Budget,
    out: &mut Vec<(usize, SpecOutcome)>,
) {
    if !budget.probe_now() {
        out.extend(members.iter().map(|&i| (i, SpecOutcome::Skipped)));
        return;
    }
    let mut pos = 0;
    while pos < members.len() {
        let progress = Cell::new(pos);
        let outcome = {
            let progress = &progress;
            let out = &mut *out;
            let checker = &mut *checker;
            catch_unwind(AssertUnwindSafe(move || {
                // lint: allow(panic-reachability, pos < members.len() by the while condition, so the range start is in bounds)
                for (j, &i) in members[pos..].iter().enumerate() {
                    progress.set(pos + j);
                    if budget.is_stopped() {
                        out.push((i, SpecOutcome::Skipped));
                        continue;
                    }
                    // lint: allow(panic-reachability, members hold level indexes built by level_batches, so i < level.len())
                    let cand = &level[i];
                    #[cfg(any(test, feature = "fault-injection"))]
                    if let Some(plan) = &config.fault {
                        plan.before_candidate(cand.branch());
                    }
                    let mut em = Emission::default();
                    process_candidate(universe, cand, checker, &mut em);
                    budget.probe();
                    out.push((i, SpecOutcome::Done(em)));
                }
            }))
        };
        match outcome {
            Ok(()) => return,
            Err(payload) => {
                let failed_at = progress.get();
                out.push((
                    // lint: allow(panic-reachability, progress only ever holds indexes pos+j < members.len(), set inside the batch loop)
                    members[failed_at],
                    SpecOutcome::Panicked(panic_message(payload.as_ref())),
                ));
                *checker = Checker::new(rel, config, shared);
                checker.begin_level();
                pos = failed_at + 1;
            }
        }
    }
}

/// The `WorkStealing` mode driver: level-synchronous prefix-batch execution
/// over hand-rolled work-stealing deques ([`StealQueues`]).
///
/// Per level: candidates are grouped into prefix batches
/// ([`level_batches`]), the batches are dealt round-robin over `k` worker
/// deques, and `k` scoped threads drain them — own deque from the front
/// (preserving prefix locality), victims from the back. Workers keep their
/// [`Checker`] across levels; under an epoch shared cache they read the
/// level's immutable snapshot lock-free and buffer inserts locally, and the
/// driver publishes the buffers between levels in worker order (so epoch
/// stamps, and hence evictions, are deterministic for a given schedule-
/// independent insert set). Outcomes land in a per-worker list tagged with
/// candidate indexes and are replayed through the same input-ordered
/// post-filter as the `Rayon` driver ([`absorb_level_outcomes`]), which is
/// what makes results byte-identical with the branch-sequential modes.
///
/// A worker thread dying (isolation itself failing) loses its level
/// outcomes: the missing entries are treated as panics, quarantining the
/// affected branches, and the remaining deques are still drained by the
/// surviving workers.
#[allow(clippy::too_many_arguments)]
fn run_workstealing_levels(
    rel: &Relation,
    universe: &[ColumnId],
    cursor: LevelCursor,
    workers: usize,
    config: &DiscoveryConfig,
    budget: &Budget,
    shared: &SharedCaches,
    acc: &mut SearchAccumulator,
    failures: &mut Vec<BranchFailure>,
    mut recorder: Option<&mut CheckpointRecorder>,
) -> SchedulerStats {
    let k = workers.max(1);
    let LevelCursor {
        mut states,
        mut level,
        mut level_no,
    } = cursor;
    let mut next: Vec<Candidate> = Vec::new();
    let mut next_parts: Vec<((ColumnId, ColumnId), Vec<Candidate>)> = Vec::new();
    let mut checkers: Vec<Checker<'_>> =
        (0..k).map(|_| Checker::new(rel, config, shared)).collect();
    let mut sched = SchedulerStats {
        batches: 0,
        levels: 0,
        workers: vec![WorkerSchedStats::default(); k],
    };
    if let Some(rec) = recorder.as_deref_mut() {
        record_checkpoint(
            rec, level_no, &level, &states, acc, failures, budget, shared,
        );
    }
    while !level.is_empty() && !budget.is_stopped() {
        if config.max_level.is_some_and(|max| level_no > max) {
            acc.level_capped = true;
            break;
        }
        sched.levels += 1;
        let batches = level_batches(&level);
        sched.batches += batches.len() as u64;
        let queues = StealQueues::new(k, batches.len());

        let mut slots: Vec<Option<SpecOutcome>> = Vec::with_capacity(level.len());
        slots.resize_with(level.len(), || None);
        let mut worker_death: Option<String> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = checkers
                .iter_mut()
                .zip(sched.workers.iter_mut())
                .enumerate()
                .map(|(w, (checker, wstats))| {
                    let queues = &queues;
                    let batches = &batches;
                    let level = &level;
                    scope.spawn(move || {
                        checker.begin_level();
                        let mut local: Vec<(usize, SpecOutcome)> = Vec::new();
                        while let Some((b, stolen)) = queues.pop(w) {
                            wstats.batches += 1;
                            wstats.steals += u64::from(stolen);
                            let Some(batch) = batches.get(b) else {
                                continue;
                            };
                            run_batch(
                                rel, universe, &batch.1, level, checker, config, shared, budget,
                                &mut local,
                            );
                        }
                        local
                    })
                })
                .collect();
            // lint: allow(unprobed-loop, join loop bounded by the worker count)
            for handle in handles {
                match handle.join() {
                    Ok(local) => {
                        for (i, outcome) in local {
                            if let Some(slot) = slots.get_mut(i) {
                                *slot = Some(outcome);
                            }
                        }
                    }
                    // `run_batch` isolates candidate panics, so a dead
                    // worker means the isolation itself failed; its level
                    // outcomes died with it and surface as panics below.
                    Err(payload) => worker_death = Some(panic_message(payload.as_ref())),
                }
            }
        });
        let results: Vec<SpecOutcome> = slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    SpecOutcome::Panicked(
                        worker_death
                            .clone()
                            .unwrap_or_else(|| "worker lost its level outcomes".to_string()),
                    )
                })
            })
            .collect();

        absorb_level_outcomes(
            &level,
            results,
            &mut states,
            level_no,
            config,
            budget,
            acc,
            failures,
            &mut next,
            &mut next_parts,
            recorder.as_deref_mut(),
        );
        // Publish buffered cache inserts in worker order: deterministic
        // epoch stamps for the next level's snapshot.
        // lint: allow(unprobed-loop, publish loop bounded by the worker count)
        for checker in &mut checkers {
            checker.publish_pending();
        }
        std::mem::swap(&mut level, &mut next);
        level_no += 1;
        if !budget.is_stopped() {
            if let Some(rec) = recorder.as_deref_mut() {
                record_checkpoint(
                    rec, level_no, &level, &states, acc, failures, budget, shared,
                );
            }
        }
    }
    sched
}

/// One full-data check requested by the approximate pipeline for a
/// borderline candidate (see `crate::approximate`).
#[derive(Debug, Clone)]
pub(crate) struct EscalationJob {
    /// What to verify.
    pub(crate) kind: EscalationKind,
    /// Compute the exact error decomposition when the fast validity check
    /// fails (ε > 0 runs need the removal counts; ε = 0 runs only need
    /// the boolean).
    pub(crate) need_error: bool,
}

/// The dependency shape of an [`EscalationJob`].
#[derive(Debug, Clone)]
pub(crate) enum EscalationKind {
    /// Verify the OCD `x ~ y`.
    Ocd {
        /// Left side.
        x: AttrList,
        /// Right side.
        y: AttrList,
    },
    /// Verify one OD direction of candidate `(x, y)`.
    Od {
        /// Candidate left side.
        x: AttrList,
        /// Candidate right side.
        y: AttrList,
        /// `true` checks `x → y`, `false` checks `y → x`.
        forward: bool,
        /// The enclosing OCD is exactly valid on the full data, enabling
        /// the fused split-only `check_od_after_ocd` fast path.
        ocd_exact: bool,
    },
}

impl EscalationKind {
    /// The sort-key prefix this job's first scan materializes — the batch
    /// grouping key (mirrors [`level_batches`]).
    fn prefix(&self) -> &AttrList {
        match self {
            EscalationKind::Ocd { x, .. } | EscalationKind::Od { x, .. } => x,
        }
    }
}

/// Outcome of one escalation job.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EscalationVerdict {
    /// The job never ran (stopped budget or a panicking check); the
    /// pipeline drops the candidate, mirroring how the exact search drops
    /// unprocessed candidates on a stop.
    pub(crate) skipped: bool,
    /// The dependency is exactly valid on the full data.
    pub(crate) exact: bool,
    /// Exact error decomposition, when the fast check failed and the job
    /// asked for it.
    pub(crate) error: Option<crate::approximate::OdError>,
    /// Row passes over the full relation this job cost (the
    /// [`crate::approximate::ERR_PASSES`] cost model).
    pub(crate) rows_scanned: u64,
}

/// Run one escalation job against the full relation on a warm [`Checker`].
fn run_escalation_job(
    rel: &Relation,
    checker: &mut Checker<'_>,
    job: &EscalationJob,
) -> EscalationVerdict {
    let m = rel.num_rows() as u64;
    let mut v = EscalationVerdict::default();
    match &job.kind {
        EscalationKind::Ocd { x, y } => {
            v.rows_scanned = m;
            if checker.check_ocd(x, y) {
                v.exact = true;
            } else if job.need_error {
                v.error = Some(crate::approximate::ocd_error(rel, x, y));
                v.rows_scanned += crate::approximate::ERR_PASSES * m;
            }
        }
        EscalationKind::Od {
            x,
            y,
            forward,
            ocd_exact,
        } => {
            let (lhs, rhs) = if *forward { (x, y) } else { (y, x) };
            // The fused split-only scan is sound only right after the
            // enclosing OCD validated on this checker, so re-establish it
            // (warm: the x-prefix index/partition is cached).
            if *ocd_exact && checker.check_ocd(x, y) {
                v.rows_scanned = 2 * m;
                if checker.check_od_after_ocd(lhs, rhs) {
                    v.exact = true;
                    return v;
                }
                if !job.need_error {
                    return v;
                }
            }
            v.error = Some(crate::approximate::od_error(rel, lhs, rhs));
            v.rows_scanned += crate::approximate::ERR_PASSES * m;
            if let Some(e) = v.error {
                v.exact = e.is_exact();
            }
        }
    }
    v
}

/// Drain one batch of escalation jobs on a worker, catching per-job panics
/// (a panicked job yields a `skipped` verdict and a rebuilt checker, the
/// same quarantine-not-abort contract as [`run_batch`]).
#[allow(clippy::too_many_arguments)]
fn run_escalation_batch<'r>(
    rel: &'r Relation,
    members: &[usize],
    jobs: &[EscalationJob],
    checker: &mut Checker<'r>,
    config: &DiscoveryConfig,
    shared: &SharedCaches,
    budget: &Budget,
    out: &mut Vec<(usize, EscalationVerdict)>,
) {
    if !budget.probe_now() {
        out.extend(members.iter().map(|&i| {
            (
                i,
                EscalationVerdict {
                    skipped: true,
                    ..EscalationVerdict::default()
                },
            )
        }));
        return;
    }
    // lint: allow(unprobed-loop, polls budget.is_stopped() every job; each verdict scan is one bounded full-table pass)
    for &i in members {
        let Some(job) = jobs.get(i) else { continue };
        if budget.is_stopped() {
            out.push((
                i,
                EscalationVerdict {
                    skipped: true,
                    ..EscalationVerdict::default()
                },
            ));
            continue;
        }
        let verdict = {
            let checker = &mut *checker;
            catch_unwind(AssertUnwindSafe(move || {
                run_escalation_job(rel, checker, job)
            }))
        };
        match verdict {
            Ok(v) => out.push((i, v)),
            Err(_) => {
                *checker = Checker::new(rel, config, shared);
                checker.begin_level();
                out.push((
                    i,
                    EscalationVerdict {
                        skipped: true,
                        ..EscalationVerdict::default()
                    },
                ));
            }
        }
    }
}

/// Execute the approximate pipeline's full-data escalation wave.
///
/// Jobs are grouped into prefix batches (one per distinct `x` side, like
/// [`level_batches`]) so a batch's first check materializes the shared
/// sort prefix and the rest hit it warm. Under
/// [`ParallelMode::WorkStealing`] the batches are dealt over
/// [`StealQueues`] and drained by scoped workers with per-worker
/// [`Checker`]s (epoch caches are published after the wave); every other
/// mode drains them inline on one checker. Verdicts come back indexed by
/// job — the result is deterministic regardless of mode or schedule.
pub(crate) fn run_escalations(
    rel: &Relation,
    config: &DiscoveryConfig,
    jobs: &[EscalationJob],
    budget: &Budget,
) -> Vec<EscalationVerdict> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let shared = SharedCaches::from_config(config);
    // Prefix batches in order of first appearance (lookup map only — its
    // iteration order is never observed).
    let mut by_key: HashMap<&AttrList, usize> = HashMap::with_capacity(jobs.len());
    let mut batches: Vec<Vec<usize>> = Vec::new();
    // lint: allow(unprobed-loop, batching pass bounded by the escalation job count)
    for (i, job) in jobs.iter().enumerate() {
        match by_key.get(job.kind.prefix()) {
            Some(&b) => {
                if let Some(batch) = batches.get_mut(b) {
                    batch.push(i);
                }
            }
            None => {
                by_key.insert(job.kind.prefix(), batches.len());
                batches.push(vec![i]);
            }
        }
    }

    let workers = match config.mode {
        ParallelMode::WorkStealing(k) => k.max(1),
        _ => 1,
    };
    let mut slots: Vec<Option<EscalationVerdict>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);

    if workers == 1 {
        let mut checker = Checker::new(rel, config, &shared);
        checker.begin_level();
        let mut local: Vec<(usize, EscalationVerdict)> = Vec::new();
        for members in &batches {
            run_escalation_batch(
                rel,
                members,
                jobs,
                &mut checker,
                config,
                &shared,
                budget,
                &mut local,
            );
        }
        checker.publish_pending();
        // lint: allow(unprobed-loop, slot scatter, one move per computed verdict)
        for (i, v) in local {
            if let Some(slot) = slots.get_mut(i) {
                *slot = Some(v);
            }
        }
    } else {
        let mut checkers: Vec<Checker<'_>> = (0..workers)
            .map(|_| Checker::new(rel, config, &shared))
            .collect();
        let queues = StealQueues::new(workers, batches.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = checkers
                .iter_mut()
                .enumerate()
                .map(|(w, checker)| {
                    let queues = &queues;
                    let batches = &batches;
                    let shared = &shared;
                    scope.spawn(move || {
                        checker.begin_level();
                        let mut local: Vec<(usize, EscalationVerdict)> = Vec::new();
                        while let Some((b, _stolen)) = queues.pop(w) {
                            let Some(members) = batches.get(b) else {
                                continue;
                            };
                            run_escalation_batch(
                                rel, members, jobs, checker, config, shared, budget, &mut local,
                            );
                        }
                        local
                    })
                })
                .collect();
            // lint: allow(unprobed-loop, join loop bounded by the worker count)
            for handle in handles {
                if let Ok(local) = handle.join() {
                    for (i, v) in local {
                        if let Some(slot) = slots.get_mut(i) {
                            *slot = Some(v);
                        }
                    }
                }
                // A dead worker loses its verdicts; the sequential retry
                // below recomputes them deterministically.
            }
        });
        // lint: allow(unprobed-loop, publish loop bounded by the worker count)
        for checker in &mut checkers {
            checker.publish_pending();
        }
        // Retry lost slots inline (worker death / lost outcomes).
        if slots.iter().any(Option::is_none) {
            let mut checker = Checker::new(rel, config, &shared);
            checker.begin_level();
            let mut local: Vec<(usize, EscalationVerdict)> = Vec::new();
            for (i, slot) in slots.iter().enumerate() {
                if slot.is_none() {
                    run_escalation_batch(
                        rel,
                        &[i],
                        jobs,
                        &mut checker,
                        config,
                        &shared,
                        budget,
                        &mut local,
                    );
                }
            }
            checker.publish_pending();
            // lint: allow(unprobed-loop, slot scatter, one move per computed verdict)
            for (i, v) in local {
                if let Some(slot) = slots.get_mut(i) {
                    *slot = Some(v);
                }
            }
        }
    }

    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or(EscalationVerdict {
                skipped: true,
                exact: false,
                error: None,
                rows_scanned: 0,
            })
        })
        .collect()
}

/// Resume the search below a candidate whose OD direction `od.lhs → od.rhs`
/// has just been invalidated (used by [`crate::incremental`]).
///
/// When `X → Y` held, Algorithm 3 pruned the children `XA ~ Y`
/// (Theorem 3.9 made them derivable). Once the OD breaks on a grown
/// instance those children become genuine candidates again; this helper
/// re-runs the BFS over exactly that subtree and returns the emissions and
/// the number of checks spent.
pub(crate) fn resume_after_od_invalidation(
    rel: &Relation,
    universe: &[ColumnId],
    od_lhs: &AttrList,
    od_rhs: &AttrList,
    config: &DiscoveryConfig,
) -> (Vec<Ocd>, Vec<Od>, u64) {
    let seeds: Vec<Candidate> = universe
        .iter()
        .copied()
        .filter(|&a| !od_lhs.contains(a) && !od_rhs.contains(a))
        .map(|a| Candidate {
            x: od_lhs.with_appended(a),
            y: od_rhs.clone(),
        })
        .collect();
    let budget = Budget::new(config, crate::runtime::now(), 0);
    let shared = SharedCaches::from_config(config);
    let mut checker = Checker::new(rel, config, &shared);
    let mut acc = SearchAccumulator::default();
    // The seeds all belong to one branch, so the whole `max_checks` budget
    // is its allowance.
    let allowance = config.max_checks.unwrap_or(u64::MAX);
    run_subtree(
        universe,
        seeds,
        config,
        &budget,
        &mut checker,
        allowance,
        &mut acc,
    );
    (acc.ocds, acc.ods, budget.checks())
}

/// Cost profile of one level-2 branch — the unit of distribution of the
/// paper's static-queue parallelization (§4.2.2). A candidate belongs to
/// exactly one branch (the pair of first attributes of its sides), so
/// branch costs fully determine how any K-queue assignment balances.
#[derive(Debug, Clone)]
pub struct BranchCost {
    /// The branch's seed pair (first attribute of each side).
    pub seed: (ColumnId, ColumnId),
    /// Wall-clock time to explore the whole subtree sequentially.
    pub elapsed: std::time::Duration,
    /// Candidate checks spent in the subtree.
    pub checks: u64,
    /// Valid OCDs found in the subtree.
    pub valid_ocds: u64,
}

/// Profile every level-2 branch of the search individually: run column
/// reduction (timed), then each seed's subtree sequentially.
///
/// Used by the Figure 6 harness to *simulate* the static-queue speedup on
/// machines without enough cores to measure it: for K queues, the
/// simulated parallel time is `reduction + max over queues of the queue's
/// summed branch costs` (round-robin assignment, as in the search itself).
pub fn profile_branches(
    rel: &Relation,
    config: &DiscoveryConfig,
) -> (std::time::Duration, Vec<BranchCost>) {
    let t0 = crate::runtime::now();
    let reduction = if config.column_reduction {
        columns_reduction(rel)
    } else {
        Reduction {
            attributes: (0..rel.num_columns()).collect(),
            ..Reduction::default()
        }
    };
    let reduction_time = t0.elapsed();

    let mut costs = Vec::new();
    for seed in seed_candidates(&reduction.attributes) {
        let seed_pair = seed.branch();
        let budget = Budget::new(config, crate::runtime::now(), 0);
        let shared = SharedCaches::from_config(config);
        let mut checker = Checker::new(rel, config, &shared);
        let mut acc = SearchAccumulator::default();
        let allowance = config.max_checks.unwrap_or(u64::MAX);
        let t = crate::runtime::now();
        run_subtree(
            &reduction.attributes,
            vec![seed],
            config,
            &budget,
            &mut checker,
            allowance,
            &mut acc,
        );
        costs.push(BranchCost {
            seed: seed_pair,
            elapsed: t.elapsed(),
            checks: budget.checks(),
            valid_ocds: acc.ocds.len() as u64,
        });
    }
    (reduction_time, costs)
}

/// Level-2 seed candidates over the reduced universe: all pairs `(Ai, Aj)`
/// with `i < j` (OCDs are commutative, Algorithm 1 line 4).
fn seed_candidates(universe: &[ColumnId]) -> Vec<Candidate> {
    let mut seeds = Vec::new();
    // lint: allow(unprobed-loop, level-2 seeding, bounded by the reduced universe width squared)
    for (i, &a) in universe.iter().enumerate() {
        for &b in universe.iter().skip(i + 1) {
            seeds.push(Candidate {
                x: AttrList::single(a),
                y: AttrList::single(b),
            });
        }
    }
    seeds
}

/// Run OCDDISCOVER over `rel` with the given configuration.
///
/// Returns the minimal OCDs and the disjoint-side ODs over the reduced
/// attribute universe, plus the reduction facts (constants, equivalence
/// classes, single-column ODs). Use [`crate::expand`] to translate the
/// result into the full set of ODs for comparison with other algorithms.
pub fn discover(rel: &Relation, config: &DiscoveryConfig) -> DiscoveryResult {
    let start = crate::runtime::now();
    let kernels_before = kernel_stats::snapshot();

    let reduction = run_reduction(rel, config);
    let mut recorder = config
        .checkpoint
        .clone()
        .map(|policy| CheckpointRecorder::new(policy, rel, config, start, kernels_before));

    let budget = Budget::new(config, start, reduction.checks);
    let shared = SharedCaches::from_config(config);
    let seeds = seed_candidates(&reduction.attributes);
    let allowances = branch_allowances(config.max_checks, reduction.checks, seeds.len());
    let queue: Vec<(Candidate, u64)> = seeds.into_iter().zip(allowances).collect();
    let universe = &reduction.attributes;

    let mut acc = SearchAccumulator::default();
    let mut failures: Vec<BranchFailure> = Vec::new();
    let mut scheduler: Option<SchedulerStats> = None;
    match config.mode {
        // With a checkpoint recorder installed, the branch-sequential
        // modes switch to the level-synchronous sequential driver — it is
        // the only traversal with a global frontier to dump, and its
        // results are byte-identical by the post-filter argument
        // (`StaticQueues`' round-robin partition changes nothing about
        // what is checked, only on which thread).
        ParallelMode::Sequential | ParallelMode::StaticQueues(_) if recorder.is_some() => {
            run_sequential_levels(
                rel,
                universe,
                LevelCursor::from_queue(queue),
                config,
                &budget,
                &shared,
                &mut acc,
                &mut failures,
                recorder.as_mut(),
            );
        }
        ParallelMode::Sequential => {
            let (a, f) = run_queue(rel, universe, queue, config, &budget, &shared);
            acc.merge(a);
            failures.extend(f);
        }
        ParallelMode::StaticQueues(k) => {
            let k = k.max(1);
            // Round-robin partition of the level-2 branches (§4.2.2). Each
            // candidate's whole subtree stays within its seed's queue.
            let mut queues: Vec<Vec<(Candidate, u64)>> = (0..k).map(|_| Vec::new()).collect();
            // lint: allow(unprobed-loop, round-robin partition of the level-2 seeds, one push per branch)
            for (i, entry) in queue.into_iter().enumerate() {
                if let Some(q) = queues.get_mut(i % k) {
                    q.push(entry);
                }
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = queues
                    .into_iter()
                    .map(|worker_queue| {
                        let branches: Vec<(ColumnId, ColumnId)> =
                            worker_queue.iter().map(|(seed, _)| seed.branch()).collect();
                        let budget = &budget;
                        let shared = &shared;
                        let handle = scope.spawn(move || {
                            run_queue(rel, universe, worker_queue, config, budget, shared)
                        });
                        (branches, handle)
                    })
                    .collect();
                // lint: allow(unprobed-loop, join loop bounded by the worker count)
                for (branches, handle) in handles {
                    match handle.join() {
                        Ok((a, f)) => {
                            acc.merge(a);
                            failures.extend(f);
                        }
                        // `run_queue` already isolates branch panics, so a
                        // dead worker means the isolation itself failed —
                        // quarantine its whole queue rather than crash.
                        Err(payload) => {
                            let message = panic_message(payload.as_ref());
                            failures.extend(branches.into_iter().map(|branch| BranchFailure {
                                branch,
                                message: message.clone(),
                            }));
                        }
                    }
                }
            });
        }
        ParallelMode::Rayon(k) => {
            match rayon::ThreadPoolBuilder::new()
                .num_threads(k.max(1))
                .build()
            {
                Ok(pool) => pool.install(|| {
                    run_rayon_levels(
                        rel,
                        universe,
                        LevelCursor::from_queue(queue),
                        config,
                        &budget,
                        &shared,
                        &mut acc,
                        &mut failures,
                        recorder.as_mut(),
                    );
                }),
                // No pool — degrade to a sequential path instead of
                // aborting; results are identical by construction.
                Err(_) if recorder.is_some() => {
                    run_sequential_levels(
                        rel,
                        universe,
                        LevelCursor::from_queue(queue),
                        config,
                        &budget,
                        &shared,
                        &mut acc,
                        &mut failures,
                        recorder.as_mut(),
                    );
                }
                Err(_) => {
                    let (a, f) = run_queue(rel, universe, queue, config, &budget, &shared);
                    acc.merge(a);
                    failures.extend(f);
                }
            }
        }
        ParallelMode::WorkStealing(k) => {
            scheduler = Some(run_workstealing_levels(
                rel,
                universe,
                LevelCursor::from_queue(queue),
                k,
                config,
                &budget,
                &shared,
                &mut acc,
                &mut failures,
                recorder.as_mut(),
            ));
        }
    }

    finalize_result(
        reduction,
        acc,
        failures,
        &budget,
        &shared,
        scheduler,
        start.elapsed(),
        kernel_stats::snapshot().since(&kernels_before),
        recorder.as_mut(),
    )
}

/// Resume a checkpointed run from a [`SearchSnapshot`] (see
/// [`crate::snapshot`]): validate the dump against `rel` and `config`
/// (version, manifest hash, semantic config fingerprint), rebuild the
/// frontier and per-branch accounting, and replay the remaining levels.
///
/// The result is **byte-identical** to what the uninterrupted run would
/// have produced — the same OCDs/ODs/constants/equivalence classes, the
/// same `checks`, `candidates_generated`, per-level stats, and termination
/// reason — across every [`ParallelMode`] and cache configuration, because
/// the level drivers cannot distinguish a snapshot-built `LevelCursor`
/// from a fresh one. (`StaticQueues` resumes on the level-synchronous
/// sequential driver, which checks the same candidates on one thread.)
/// Wall-clock `elapsed` and kernel counters continue cumulatively from the
/// dump; the time budget, if any, restarts at the resume (timing is not
/// part of the deterministic result).
///
/// When `config.checkpoint` is also set, the resumed run keeps dumping at
/// level boundaries, so a resume can itself be killed and resumed.
pub fn discover_resume(
    rel: &Relation,
    config: &DiscoveryConfig,
    snap: &SearchSnapshot,
) -> Result<DiscoveryResult, SnapshotError> {
    snap.validate(rel, config)?;
    // A dump of the approximate pipeline describes a sample-triaged
    // frontier; replaying it through the exact search would silently
    // change what the levels mean. `discover_approximate_resume` is the
    // entry point for those dumps.
    if snap.approx.is_some() {
        return Err(SnapshotError::SampleMismatch("approx"));
    }
    let start = crate::runtime::now();

    let reduction = run_reduction(rel, config);
    // Kernel counters are snapshotted *after* the reduction recompute: the
    // dump's counters already include the original run's reduction, so
    // counting the recompute again would double it.
    let kernels_before = kernel_stats::snapshot();
    let mut recorder = config
        .checkpoint
        .clone()
        .map(|policy| CheckpointRecorder::resuming(policy, snap, config, start, kernels_before));

    // Seed the budget with the dump's cumulative counter — it already
    // includes the reduction checks, so the resumed run's `checks` column
    // continues exactly where the interrupted run left off.
    let budget = Budget::new(config, start, snap.checks);
    let shared = SharedCaches::from_config(config);
    let universe = &reduction.attributes;

    let mut acc = SearchAccumulator {
        ocds: snap
            .ocds
            .iter()
            .map(|p| Ocd::new(AttrList::from_slice(&p.x), AttrList::from_slice(&p.y)))
            .collect(),
        ods: snap
            .ods
            .iter()
            .map(|p| Od::new(AttrList::from_slice(&p.x), AttrList::from_slice(&p.y)))
            .collect(),
        generated: snap.generated,
        levels: snap.levels.clone(),
        level_capped: snap.level_capped,
        check_budget_hit: snap.check_budget_hit,
    };
    let mut failures: Vec<BranchFailure> = snap
        .failures
        .iter()
        .map(|f| BranchFailure {
            branch: f.branch,
            message: f.message.clone(),
        })
        .collect();
    let cursor = LevelCursor::from_snapshot(snap);

    let mut scheduler: Option<SchedulerStats> = None;
    match config.mode {
        ParallelMode::Sequential | ParallelMode::StaticQueues(_) => {
            run_sequential_levels(
                rel,
                universe,
                cursor,
                config,
                &budget,
                &shared,
                &mut acc,
                &mut failures,
                recorder.as_mut(),
            );
        }
        ParallelMode::Rayon(k) => {
            match rayon::ThreadPoolBuilder::new()
                .num_threads(k.max(1))
                .build()
            {
                Ok(pool) => pool.install(|| {
                    run_rayon_levels(
                        rel,
                        universe,
                        cursor,
                        config,
                        &budget,
                        &shared,
                        &mut acc,
                        &mut failures,
                        recorder.as_mut(),
                    );
                }),
                Err(_) => {
                    run_sequential_levels(
                        rel,
                        universe,
                        cursor,
                        config,
                        &budget,
                        &shared,
                        &mut acc,
                        &mut failures,
                        recorder.as_mut(),
                    );
                }
            }
        }
        ParallelMode::WorkStealing(k) => {
            scheduler = Some(run_workstealing_levels(
                rel,
                universe,
                cursor,
                k,
                config,
                &budget,
                &shared,
                &mut acc,
                &mut failures,
                recorder.as_mut(),
            ));
        }
    }

    let elapsed = std::time::Duration::from_millis(snap.elapsed_ms).saturating_add(start.elapsed());
    let kernels = kernel_stats::snapshot()
        .since(&kernels_before)
        .plus(&snap.kernels);
    Ok(finalize_result(
        reduction,
        acc,
        failures,
        &budget,
        &shared,
        scheduler,
        elapsed,
        kernels,
        recorder.as_mut(),
    ))
}

/// The column-reduction preprocessing of a run, threaded by mode (shared
/// by [`discover`] and [`discover_resume`] — reduction is deterministic,
/// so a resume recomputes the same facts the dump's run saw).
fn run_reduction(rel: &Relation, config: &DiscoveryConfig) -> Reduction {
    let reduction_threads = match config.mode {
        ParallelMode::Sequential => 1,
        ParallelMode::StaticQueues(k) | ParallelMode::Rayon(k) | ParallelMode::WorkStealing(k) => {
            k.max(1)
        }
    };
    if config.column_reduction {
        crate::reduction::columns_reduction_with_threads(rel, reduction_threads)
    } else {
        Reduction {
            attributes: (0..rel.num_columns()).collect(),
            ..Reduction::default()
        }
    }
}

/// The shared tail of [`discover`] and [`discover_resume`]: quarantine
/// filtering, termination classification, canonical ordering, the
/// checkpoint recorder's end-of-run GC, and the result assembly.
#[allow(clippy::too_many_arguments)]
fn finalize_result(
    reduction: Reduction,
    acc: SearchAccumulator,
    failures: Vec<BranchFailure>,
    budget: &Budget,
    shared: &SharedCaches,
    scheduler: Option<SchedulerStats>,
    elapsed: std::time::Duration,
    kernels: kernel_stats::KernelCounts,
    recorder: Option<&mut CheckpointRecorder>,
) -> DiscoveryResult {
    let mut acc = acc;
    // Quarantine filter: drop the dependencies rooted in failed branches.
    // The branch-sequential paths already lost them with the branch's
    // accumulator; under `Rayon` (and a dead StaticQueues worker) emissions
    // from earlier levels may linger and are stripped here, so a faulty
    // run's OCD/OD sets equal the fault-free run minus exactly the
    // quarantined branches. (Per-level stats and generation counters stay
    // best-effort under failure.)
    if !failures.is_empty() {
        let failed: HashSet<(ColumnId, ColumnId)> = failures.iter().map(|f| f.branch).collect();
        acc.ocds.retain(|o| !failed.contains(&ocd_branch(o)));
        acc.ods.retain(|o| !failed.contains(&od_branch(o)));
    }

    let termination = if failures.is_empty() {
        match budget.cause() {
            Some(StopCause::Cancelled) => TerminationReason::Cancelled,
            Some(StopCause::TimeBudget) => TerminationReason::TimeBudget,
            Some(StopCause::CheckBudget) => TerminationReason::CheckBudget,
            None if acc.check_budget_hit => TerminationReason::CheckBudget,
            None if acc.level_capped => TerminationReason::LevelCap,
            None => TerminationReason::Complete,
        }
    } else {
        let mut branches: Vec<(ColumnId, ColumnId)> = failures.iter().map(|f| f.branch).collect();
        branches.sort_unstable();
        branches.dedup();
        TerminationReason::WorkerFailure {
            branches,
            message: failures
                .first()
                .map(|f| f.message.clone())
                .unwrap_or_default(),
        }
    };

    // End-of-run checkpoint bookkeeping: GC the dumps of a complete run,
    // or persist a `-final` dump carrying the termination of an early stop.
    let checkpoint = recorder.map(|rec| {
        rec.finish(&termination);
        rec.stats()
    });

    // Canonical ordering: shorter dependencies first (the BFS guarantee),
    // then lexicographic — identical across all execution modes.
    let mut ocds = acc.ocds;
    ocds.sort_by(|a, b| {
        (a.lhs.len() + a.rhs.len(), &a.lhs, &a.rhs).cmp(&(
            b.lhs.len() + b.rhs.len(),
            &b.lhs,
            &b.rhs,
        ))
    });
    ocds.dedup();
    let mut ods: Vec<Od> = acc.ods;
    ods.extend(reduction.single_ods.iter().cloned());
    ods.sort_by(|a, b| {
        (a.lhs.len() + a.rhs.len(), &a.lhs, &a.rhs).cmp(&(
            b.lhs.len() + b.rhs.len(),
            &b.lhs,
            &b.rhs,
        ))
    });
    ods.dedup();
    let mut levels = acc.levels;
    levels.sort_by_key(|s| s.level);

    DiscoveryResult {
        ocds,
        ods,
        constants: reduction.constants,
        equivalence_classes: reduction.equivalence_classes,
        reduced_attributes: reduction.attributes,
        checks: budget.checks(),
        candidates_generated: acc.generated,
        levels,
        elapsed,
        termination,
        cache: shared.stats(),
        scheduler,
        kernels,
        checkpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::{Relation, Value};

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    fn l(ids: &[usize]) -> AttrList {
        AttrList::from_slice(ids)
    }

    #[test]
    fn seeds_enumerate_unordered_pairs() {
        let seeds = seed_candidates(&[0, 2, 5]);
        assert_eq!(seeds.len(), 3);
        assert_eq!(seeds[0].x, l(&[0]));
        assert_eq!(seeds[0].y, l(&[2]));
        assert_eq!(seeds[2].x, l(&[2]));
        assert_eq!(seeds[2].y, l(&[5]));
    }

    #[test]
    fn table1_tax_example() {
        // Table 1 of the paper: income orders bracket and tax; tax <-> income.
        let r = rel(&[
            ("income", &[35_000, 40_000, 40_000, 55_000, 60_000, 80_000]),
            ("savings", &[3_000, 4_000, 3_800, 6_500, 6_500, 10_000]),
            ("bracket", &[1, 1, 1, 2, 2, 3]),
            ("tax", &[5_250, 6_000, 6_000, 8_500, 9_500, 14_000]),
        ]);
        let result = discover(&r, &DiscoveryConfig::default());
        assert!(result.complete());
        // income <-> tax collapses into one class {0, 3}.
        assert_eq!(result.equivalence_classes, vec![vec![0, 3]]);
        // income -> bracket survives as a single-column OD on representatives.
        assert!(result
            .ods
            .iter()
            .any(|od| od.lhs == l(&[0]) && od.rhs == l(&[2])));
        // income ~ savings is a discovered OCD.
        assert!(result
            .ocds
            .iter()
            .any(|o| o.canonical() == Ocd::new(l(&[0]), l(&[1])).canonical()));
    }

    #[test]
    fn no_dependencies_in_adversarial_relation() {
        // Latin-square-like data with swaps everywhere.
        let r = rel(&[
            ("a", &[1, 2, 3, 4]),
            ("b", &[2, 1, 4, 3]),
            ("c", &[3, 4, 1, 2]),
        ]);
        let result = discover(&r, &DiscoveryConfig::default());
        assert!(result.complete());
        assert!(result.ocds.is_empty());
        assert!(result.ods.is_empty());
        assert!(result.equivalence_classes.is_empty());
    }

    #[test]
    fn swap_prevents_ocd_no_style_table() {
        // Table 5(b)-style relation: splits in both directions plus a swap
        // between the last two rows, so not even A ~ B holds.
        let r = rel(&[("a", &[1, 2, 3, 3, 4]), ("b", &[4, 5, 6, 7, 1])]);
        let result = discover(&r, &DiscoveryConfig::default());
        assert!(result.ocds.is_empty());
        assert!(result.ods.is_empty());
    }

    #[test]
    fn split_only_pair_yields_ocd_but_no_od_yes_style_table() {
        // Table 5(a)-style relation: neither A -> B nor B -> A (splits both
        // ways) yet A ~ B holds, i.e. AB <-> BA — invisible to ORDER.
        let r = rel(&[("a", &[1, 1, 2, 2, 3]), ("b", &[1, 2, 2, 3, 3])]);
        let result = discover(&r, &DiscoveryConfig::default());
        assert_eq!(result.ocds, vec![Ocd::new(l(&[0]), l(&[1]))]);
        assert!(result.ods.is_empty());
    }

    #[test]
    fn valid_od_prunes_extensions() {
        // a strictly increasing key: a -> everything, so no child extends a.
        let r = rel(&[
            ("a", &[1, 2, 3, 4, 5, 6]),
            ("b", &[1, 1, 2, 2, 3, 3]),
            ("c", &[5, 4, 6, 2, 9, 1]),
        ]);
        let result = discover(&r, &DiscoveryConfig::default());
        assert!(result
            .ods
            .iter()
            .any(|od| od.lhs == l(&[0]) && od.rhs == l(&[1])));
        // No OCD should have lhs [a, x] for the a~b branch since a -> b
        // prunes X-extensions; but a ~ c fails outright (c is random), and
        // b -> a fails (split), so children [a]~[b,c] may exist if b~... :
        // just assert every emitted OCD/OD is between disjoint dup-free lists.
        for ocd in &result.ocds {
            assert!(ocd.is_syntactically_minimal(), "{ocd}");
        }
        for od in &result.ods {
            assert!(od.lhs.is_disjoint(&od.rhs), "{od}");
        }
    }

    #[test]
    fn modes_agree_on_random_relations() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..8 {
            let rows = 30;
            let cols = 4;
            let data: Vec<(String, Vec<Value>)> = (0..cols)
                .map(|c| {
                    (
                        format!("c{c}"),
                        (0..rows)
                            .map(|_| Value::Int(rng.random_range(0..4)))
                            .collect(),
                    )
                })
                .collect();
            let r = Relation::from_columns(data).unwrap();
            let seq = discover(&r, &DiscoveryConfig::default());
            let par = discover(
                &r,
                &DiscoveryConfig {
                    mode: ParallelMode::StaticQueues(3),
                    ..Default::default()
                },
            );
            let ray = discover(
                &r,
                &DiscoveryConfig {
                    mode: ParallelMode::Rayon(3),
                    ..Default::default()
                },
            );
            assert_eq!(seq.ocds, par.ocds, "case {case}: static queues differ");
            assert_eq!(seq.ods, par.ods, "case {case}");
            assert_eq!(seq.ocds, ray.ocds, "case {case}: rayon differs");
            assert_eq!(seq.ods, ray.ods, "case {case}");
            assert_eq!(seq.checks, par.checks, "case {case}: same candidate tree");
            for workers in [1, 4] {
                let ws = discover(
                    &r,
                    &DiscoveryConfig {
                        mode: ParallelMode::WorkStealing(workers),
                        ..Default::default()
                    },
                );
                assert_eq!(seq.ocds, ws.ocds, "case {case}: ws({workers}) differs");
                assert_eq!(seq.ods, ws.ods, "case {case}: ws({workers})");
                assert_eq!(seq.checks, ws.checks, "case {case}: ws({workers}) tree");
                assert_eq!(seq.levels, ws.levels, "case {case}: ws({workers}) levels");
                let sched = ws.scheduler.expect("work-stealing reports scheduler stats");
                assert_eq!(sched.workers.len(), workers);
                assert_eq!(
                    sched.workers.iter().map(|w| w.batches).sum::<u64>(),
                    sched.batches,
                    "every batch executed exactly once"
                );
            }
        }
    }

    #[test]
    fn level_batches_group_by_shared_prefix() {
        // Hand-computed pin: one batch per distinct `x` side in order of
        // first appearance, members holding level indexes in level order.
        let c = |x: &[usize], y: &[usize]| Candidate { x: l(x), y: l(y) };
        let level = vec![
            c(&[0], &[1]),
            c(&[0], &[2]),
            c(&[1], &[2]),
            c(&[0], &[3]),
            c(&[1, 3], &[2]),
            c(&[1], &[3]),
        ];
        let batches = level_batches(&level);
        let keys: Vec<&AttrList> = batches.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&l(&[0]), &l(&[1]), &l(&[1, 3])]);
        assert_eq!(batches[0].1, vec![0, 1, 3]);
        assert_eq!(batches[1].1, vec![2, 5]);
        assert_eq!(batches[2].1, vec![4]);
    }

    #[test]
    fn workstealing_truncates_max_checks_identically() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let r = random_rel(&mut rng);
        let full = discover(&r, &DiscoveryConfig::default());
        // A cap below the full cost forces a mid-search truncation; the
        // partial results must be byte-identical across modes.
        let cap = full.checks / 2;
        let seq = discover(
            &r,
            &DiscoveryConfig {
                max_checks: Some(cap),
                ..DiscoveryConfig::default()
            },
        );
        assert_eq!(seq.termination, TerminationReason::CheckBudget);
        for workers in [1, 2, 5] {
            let ws = discover(
                &r,
                &DiscoveryConfig {
                    mode: ParallelMode::WorkStealing(workers),
                    max_checks: Some(cap),
                    ..DiscoveryConfig::default()
                },
            );
            assert_eq!(seq.ocds, ws.ocds, "ws({workers})");
            assert_eq!(seq.ods, ws.ods, "ws({workers})");
            assert_eq!(seq.checks, ws.checks, "ws({workers})");
            assert_eq!(seq.levels, ws.levels, "ws({workers})");
            assert_eq!(seq.termination, ws.termination, "ws({workers})");
        }
    }

    #[test]
    fn checker_backends_do_not_change_results() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<(String, Vec<Value>)> = (0..5)
            .map(|c| {
                (
                    format!("c{c}"),
                    (0..40)
                        .map(|_| Value::Int(rng.random_range(0..3)))
                        .collect(),
                )
            })
            .collect();
        let r = Relation::from_columns(data).unwrap();
        let plain = discover(&r, &DiscoveryConfig::default());
        for backend in [
            CheckerBackend::PrefixCache,
            CheckerBackend::SortedPartitions,
        ] {
            let alt = discover(
                &r,
                &DiscoveryConfig {
                    checker: backend,
                    ..Default::default()
                },
            );
            assert_eq!(plain.ocds, alt.ocds, "{backend:?}");
            assert_eq!(plain.ods, alt.ods, "{backend:?}");
            assert_eq!(plain.checks, alt.checks, "{backend:?}: same tree");
        }
    }

    #[test]
    fn shared_cache_never_changes_results() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<(String, Vec<Value>)> = (0..5)
            .map(|c| {
                (
                    format!("c{c}"),
                    (0..40)
                        .map(|_| Value::Int(rng.random_range(0..3)))
                        .collect(),
                )
            })
            .collect();
        let r = Relation::from_columns(data).unwrap();
        let baseline = discover(&r, &DiscoveryConfig::default());
        assert!(baseline.cache.is_none(), "no shared cache by default");
        for backend in [
            CheckerBackend::Resort,
            CheckerBackend::PrefixCache,
            CheckerBackend::SortedPartitions,
        ] {
            for mode in [
                ParallelMode::Sequential,
                ParallelMode::StaticQueues(3),
                ParallelMode::WorkStealing(3),
            ] {
                let shared = discover(
                    &r,
                    &DiscoveryConfig {
                        mode,
                        checker: backend,
                        shared_cache: true,
                        ..Default::default()
                    },
                );
                assert_eq!(baseline.ocds, shared.ocds, "{backend:?}/{mode:?}");
                assert_eq!(baseline.ods, shared.ods, "{backend:?}/{mode:?}");
                assert_eq!(baseline.checks, shared.checks, "{backend:?}/{mode:?}");
                assert_eq!(baseline.levels, shared.levels, "{backend:?}/{mode:?}");
                if backend == CheckerBackend::Resort {
                    assert!(shared.cache.is_none(), "Resort caches nothing");
                } else {
                    let stats = shared.cache.expect("cache stats present");
                    assert!(stats.hits + stats.misses > 0);
                }
            }
        }
    }

    #[test]
    fn tiny_cache_budget_still_correct() {
        // A budget that fits almost nothing forces constant eviction and
        // recomputation — results must be unaffected.
        let r = rel(&[
            ("a", &[1, 1, 2, 2, 3, 3]),
            ("b", &[1, 2, 2, 3, 3, 4]),
            ("c", &[6, 3, 1, 5, 2, 4]),
            ("d", &[1, 2, 3, 4, 5, 6]),
        ]);
        let baseline = discover(&r, &DiscoveryConfig::default());
        for backend in [
            CheckerBackend::PrefixCache,
            CheckerBackend::SortedPartitions,
        ] {
            let squeezed = discover(
                &r,
                &DiscoveryConfig {
                    checker: backend,
                    shared_cache: true,
                    cache_budget_bytes: 256,
                    ..Default::default()
                },
            );
            assert_eq!(baseline.ocds, squeezed.ocds, "{backend:?}");
            assert_eq!(baseline.ods, squeezed.ods, "{backend:?}");
        }
    }

    #[test]
    fn max_level_truncates_and_flags_incomplete() {
        let r = rel(&[
            ("a", &[1, 2, 3, 4]),
            ("b", &[1, 3, 2, 4]),
            ("c", &[4, 3, 2, 1]),
        ]);
        let full = discover(&r, &DiscoveryConfig::default());
        let limited = discover(
            &r,
            &DiscoveryConfig {
                max_level: Some(2),
                ..Default::default()
            },
        );
        assert!(limited.levels.iter().all(|s| s.level <= 2));
        if full.levels.iter().any(|s| s.level > 2) {
            assert!(!limited.complete());
        }
    }

    #[test]
    fn max_checks_budget_stops_early() {
        let r = rel(&[
            ("a", &[1, 2, 3, 4, 5]),
            ("b", &[2, 1, 3, 5, 4]),
            ("c", &[1, 3, 2, 4, 5]),
            ("d", &[5, 4, 3, 2, 1]),
        ]);
        let result = discover(
            &r,
            &DiscoveryConfig {
                max_checks: Some(13),
                ..Default::default()
            },
        );
        assert!(!result.complete());
        // Partial results are still well-formed.
        for ocd in &result.ocds {
            assert!(ocd.is_syntactically_minimal());
        }
    }

    #[test]
    fn dedup_reduces_candidate_count_but_not_results() {
        // Need a relation deep enough that a candidate has two valid parents.
        let r = rel(&[
            ("a", &[1, 1, 2, 2, 3, 3, 4, 4]),
            ("b", &[1, 2, 1, 2, 3, 4, 3, 4]),
            ("c", &[1, 1, 1, 2, 2, 2, 3, 3]),
            ("d", &[0, 1, 1, 2, 2, 3, 3, 4]),
        ]);
        let with = discover(&r, &DiscoveryConfig::default());
        let without = discover(
            &r,
            &DiscoveryConfig {
                dedup_candidates: false,
                ..Default::default()
            },
        );
        assert_eq!(with.ocds, without.ocds);
        assert_eq!(with.ods, without.ods);
        assert!(without.checks >= with.checks);
    }

    #[test]
    fn bfs_emits_shorter_dependencies_first() {
        let r = rel(&[
            ("a", &[1, 1, 2, 2]),
            ("b", &[1, 2, 1, 2]),
            ("c", &[1, 2, 2, 3]),
        ]);
        let result = discover(&r, &DiscoveryConfig::default());
        let lens: Vec<usize> = result
            .ocds
            .iter()
            .map(|o| o.lhs.len() + o.rhs.len())
            .collect();
        let mut sorted = lens.clone();
        sorted.sort_unstable();
        assert_eq!(lens, sorted);
    }

    #[test]
    fn branch_profile_covers_whole_search() {
        let r = rel(&[
            ("a", &[1, 1, 2, 2, 3, 3]),
            ("b", &[1, 2, 2, 3, 3, 4]),
            ("c", &[6, 3, 1, 5, 2, 4]),
        ]);
        let config = DiscoveryConfig::default();
        let (reduction_time, branches) = profile_branches(&r, &config);
        let full = discover(&r, &config);
        // One branch per reduced-attribute pair.
        let n = full.reduced_attributes.len();
        assert_eq!(branches.len(), n * (n - 1) / 2);
        // Branch checks plus reduction checks account for every check of
        // the full run (duplicates only arise within a branch, so per-branch
        // dedup equals the full run's global dedup).
        let branch_checks: u64 = branches.iter().map(|b| b.checks).sum();
        let red = columns_reduction(&r);
        assert_eq!(branch_checks + red.checks, full.checks);
        // OCD totals agree.
        let branch_ocds: u64 = branches.iter().map(|b| b.valid_ocds).sum();
        assert_eq!(branch_ocds as usize, full.ocds.len());
        let _ = reduction_time;
    }

    #[test]
    fn empty_and_single_column_relations() {
        let r = Relation::from_columns(vec![]).unwrap();
        let result = discover(&r, &DiscoveryConfig::default());
        assert!(result.complete());
        assert_eq!(result.checks, 0);

        let r = rel(&[("a", &[1, 2, 3])]);
        let result = discover(&r, &DiscoveryConfig::default());
        assert!(result.ocds.is_empty());
        assert!(result.complete());
    }

    // ---- fault tolerance & cancellation ---------------------------------

    use crate::runtime::{FaultPlan, RunController};
    use std::time::Duration;

    /// Random 4-column relation of noisy co-monotone columns: enough
    /// OCDs/ODs that every level-2 branch has something to lose.
    /// A dependency-rich random relation: each column is a staircase with a
    /// randomly drawn, pairwise distinct tie width (so every ascending pair
    /// is an OCD but almost never an OD), and occasionally descending (so
    /// some branches are pruned at level 2).
    fn random_rel(rng: &mut rand::rngs::StdRng) -> Relation {
        use rand::RngExt;
        let rows = rng.random_range(18..36) as i64;
        let mut widths = [2i64, 3, 4, 5, 7, 9];
        for i in 0..4 {
            let j = rng.random_range(i..widths.len());
            widths.swap(i, j);
        }
        let data: Vec<(String, Vec<Value>)> = (0..4)
            .map(|c| {
                let w = widths[c];
                let descending = rng.random_range(0..4) == 0;
                let col = (0..rows)
                    .map(|r| {
                        let r = if descending { rows - 1 - r } else { r };
                        Value::Int(r / w)
                    })
                    .collect();
                (format!("c{c}"), col)
            })
            .collect();
        Relation::from_columns(data).unwrap()
    }

    /// Every column is monotone non-decreasing in row order with a distinct
    /// tie width, so every OCD is valid and no OD (or equivalence) ever is:
    /// the candidate tree is the full exponential lattice — enough work
    /// that a concurrent cancel lands mid-run.
    fn staircase(cols: usize, rows: usize) -> Relation {
        let data: Vec<(String, Vec<Value>)> = (0..cols)
            .map(|c| {
                (
                    format!("c{c}"),
                    (0..rows)
                        .map(|r| Value::Int((r / (c + 2)) as i64))
                        .collect(),
                )
            })
            .collect();
        Relation::from_columns(data).unwrap()
    }

    fn with_fault(mode: ParallelMode, plan: FaultPlan) -> DiscoveryConfig {
        DiscoveryConfig {
            mode,
            fault: Some(Arc::new(plan)),
            ..DiscoveryConfig::default()
        }
    }

    /// Inject a panic into the level-2 branch of `clean`'s first OCD and
    /// assert the quarantine contract: `WorkerFailure` naming exactly that
    /// branch, OCDs equal to the fault-free set minus the branch's, and no
    /// OD lost outside the branch.
    fn assert_branch_quarantined(r: &Relation, mode: ParallelMode, label: &str) {
        let clean = discover(
            r,
            &DiscoveryConfig {
                mode,
                ..DiscoveryConfig::default()
            },
        );
        let branch = ocd_branch(clean.ocds.first().expect("test relation must have OCDs"));
        let mut plan = FaultPlan::default();
        plan.panic_on_branch = Some(branch);
        let faulty = discover(r, &with_fault(mode, plan));
        match &faulty.termination {
            TerminationReason::WorkerFailure { branches, message } => {
                assert_eq!(branches, &vec![branch], "{label}");
                assert!(message.contains("injected panic"), "{label}: {message}");
            }
            other => panic!("{label}: expected WorkerFailure, got {other:?}"),
        }
        assert!(!faulty.complete());
        let expected: Vec<Ocd> = clean
            .ocds
            .iter()
            .filter(|o| ocd_branch(o) != branch)
            .cloned()
            .collect();
        assert_eq!(
            faulty.ocds, expected,
            "{label}: OCDs beyond the branch lost"
        );
        for od in &faulty.ods {
            assert!(
                clean.ods.contains(od),
                "{label}: OD {od:?} not in clean run"
            );
        }
        for od in clean.ods.iter().filter(|od| !faulty.ods.contains(od)) {
            assert_eq!(
                od_branch(od),
                branch,
                "{label}: lost an OD outside the quarantined branch"
            );
        }
        // Reduction facts are computed before the search and never lost.
        assert_eq!(faulty.constants, clean.constants, "{label}");
        assert_eq!(
            faulty.equivalence_classes, clean.equivalence_classes,
            "{label}"
        );
    }

    #[test]
    fn static_queues_branch_panic_quarantines_only_that_branch() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(42);
        let mut exercised = 0;
        for case in 0..8 {
            let r = random_rel(&mut rng);
            if discover(&r, &DiscoveryConfig::default()).ocds.is_empty() {
                continue;
            }
            exercised += 1;
            assert_branch_quarantined(&r, ParallelMode::StaticQueues(4), &format!("case {case}"));
        }
        assert!(exercised >= 3, "test data must contain OCDs");
    }

    #[test]
    fn every_mode_survives_branch_panic() {
        // Rich-in-dependencies fixed relation (Table 1 family).
        let r = rel(&[
            ("income", &[35_000, 40_000, 40_000, 55_000, 60_000, 80_000]),
            ("savings", &[3_000, 4_000, 3_800, 6_500, 6_500, 10_000]),
            ("bracket", &[1, 1, 1, 2, 2, 3]),
        ]);
        for (mode, label) in [
            (ParallelMode::Sequential, "sequential"),
            (ParallelMode::StaticQueues(4), "static_queues"),
            (ParallelMode::Rayon(3), "rayon"),
            (ParallelMode::WorkStealing(3), "work_stealing"),
        ] {
            assert_branch_quarantined(&r, mode, label);
        }
    }

    #[test]
    fn nth_candidate_panic_degrades_not_crashes() {
        let r = staircase(4, 24);
        for (mode, label) in [
            (ParallelMode::Sequential, "sequential"),
            (ParallelMode::StaticQueues(2), "static_queues"),
            (ParallelMode::Rayon(2), "rayon"),
            (ParallelMode::WorkStealing(2), "work_stealing"),
        ] {
            let clean = discover(
                &r,
                &DiscoveryConfig {
                    mode,
                    ..DiscoveryConfig::default()
                },
            );
            let mut plan = FaultPlan::default();
            plan.panic_after_checks = Some(2);
            let faulty = discover(&r, &with_fault(mode, plan));
            let TerminationReason::WorkerFailure { branches, .. } = &faulty.termination else {
                panic!(
                    "{label}: expected WorkerFailure, got {:?}",
                    faulty.termination
                );
            };
            assert!(!branches.is_empty(), "{label}");
            // Partial results are a sound subset of the fault-free run.
            for ocd in &faulty.ocds {
                assert!(clean.ocds.contains(ocd), "{label}: spurious OCD {ocd:?}");
            }
            for od in &faulty.ods {
                assert!(clean.ods.contains(od), "{label}: spurious OD {od:?}");
            }
        }
    }

    #[test]
    fn cache_eviction_storm_changes_no_results() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let r = random_rel(&mut rng);
        // Covers both shared-cache designs: lock-striped (StaticQueues)
        // and epoch-published (WorkStealing).
        for mode in [ParallelMode::StaticQueues(3), ParallelMode::WorkStealing(3)] {
            let base = DiscoveryConfig {
                mode,
                checker: CheckerBackend::PrefixCache,
                shared_cache: true,
                ..DiscoveryConfig::default()
            };
            let clean = discover(&r, &base);
            let mut plan = FaultPlan::default();
            plan.drop_cache_inserts = true;
            let stormy = discover(
                &r,
                &DiscoveryConfig {
                    fault: Some(Arc::new(plan)),
                    ..base
                },
            );
            assert_eq!(clean.ocds, stormy.ocds, "{mode:?}");
            assert_eq!(clean.ods, stormy.ods, "{mode:?}");
            assert_eq!(clean.checks, stormy.checks, "{mode:?}");
            assert!(stormy.complete(), "{mode:?}");
            let cache = stormy.cache.expect("shared cache stats");
            assert_eq!(cache.entries, 0, "{mode:?}: every insert dropped");
            assert!(cache.evictions > 0, "{mode:?}: drops count as evictions");
        }
    }

    #[test]
    fn injected_latency_trips_the_time_budget() {
        let r = staircase(3, 24);
        let mut plan = FaultPlan::default();
        plan.check_delay = Some(Duration::from_millis(3));
        let result = discover(
            &r,
            &DiscoveryConfig {
                time_budget: Some(Duration::from_millis(5)),
                fault: Some(Arc::new(plan)),
                ..DiscoveryConfig::default()
            },
        );
        assert_eq!(result.termination, TerminationReason::TimeBudget);
        for ocd in &result.ocds {
            assert!(ocd.is_syntactically_minimal());
        }
    }

    #[test]
    fn pre_cancelled_run_stops_in_first_batch() {
        let r = staircase(4, 24);
        let full = discover(&r, &DiscoveryConfig::default());
        for (mode, label) in [
            (ParallelMode::Sequential, "sequential"),
            (ParallelMode::StaticQueues(3), "static_queues"),
            (ParallelMode::Rayon(3), "rayon"),
            (ParallelMode::WorkStealing(3), "work_stealing"),
        ] {
            let controller = RunController::new();
            controller.cancel();
            let result = discover(
                &r,
                &DiscoveryConfig {
                    mode,
                    controller: Some(controller),
                    ..DiscoveryConfig::default()
                },
            );
            assert_eq!(result.termination, TerminationReason::Cancelled, "{label}");
            assert!(
                result.ocds.len() < full.ocds.len(),
                "{label}: cancellation must cut the run short"
            );
            for ocd in &result.ocds {
                assert!(full.ocds.contains(ocd), "{label}: spurious OCD");
            }
        }
    }

    #[test]
    fn concurrent_cancel_stops_a_running_search() {
        // Exponential workload; the 30 s time budget is only a failsafe so
        // a broken cancellation path fails the assert instead of hanging.
        let r = staircase(7, 120);
        let controller = RunController::new();
        let canceller = controller.clone();
        let config = DiscoveryConfig {
            mode: ParallelMode::StaticQueues(4),
            controller: Some(controller),
            time_budget: Some(Duration::from_secs(30)),
            ..DiscoveryConfig::default()
        };
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            canceller.cancel();
        });
        let result = discover(&r, &config);
        handle.join().unwrap();
        assert_eq!(result.termination, TerminationReason::Cancelled);
        for ocd in &result.ocds {
            assert!(ocd.is_syntactically_minimal());
        }
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ocdd-search-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The deterministic result fields two runs must agree on byte-for-byte
    /// (elapsed/kernels/cache/scheduler/checkpoint are observability).
    fn assert_same_result(a: &DiscoveryResult, b: &DiscoveryResult, label: &str) {
        assert_eq!(a.ocds, b.ocds, "{label}: ocds");
        assert_eq!(a.ods, b.ods, "{label}: ods");
        assert_eq!(a.constants, b.constants, "{label}: constants");
        assert_eq!(
            a.equivalence_classes, b.equivalence_classes,
            "{label}: classes"
        );
        assert_eq!(a.checks, b.checks, "{label}: checks");
        assert_eq!(
            a.candidates_generated, b.candidates_generated,
            "{label}: generated"
        );
        assert_eq!(a.levels, b.levels, "{label}: levels");
        assert_eq!(a.termination, b.termination, "{label}: termination");
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_dumps_boundaries() {
        use crate::snapshot::{list_snapshots, CheckpointPolicy};
        let r = staircase(4, 40);
        let plain = discover(&r, &DiscoveryConfig::default());
        let dir = ckpt_dir("plain");
        let policy = CheckpointPolicy {
            keep_last: 0,
            delete_on_complete: false,
            ..CheckpointPolicy::new(&dir)
        };
        for mode in [
            ParallelMode::Sequential,
            ParallelMode::StaticQueues(3),
            ParallelMode::Rayon(3),
            ParallelMode::WorkStealing(3),
        ] {
            let ck = discover(
                &r,
                &DiscoveryConfig {
                    mode,
                    checkpoint: Some(policy.clone()),
                    ..DiscoveryConfig::default()
                },
            );
            assert_same_result(&plain, &ck, &format!("{mode:?}"));
            let stats = ck.checkpoint.expect("checkpoint stats present");
            assert!(stats.snapshots_written > 0, "{mode:?}");
            assert_eq!(stats.write_errors, 0, "{mode:?}");
        }
        assert!(!list_snapshots(&dir, None).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_every_boundary_matches_uninterrupted() {
        use crate::snapshot::{list_snapshots, read_snapshot, CheckpointPolicy};
        let r = staircase(5, 60);
        let full = discover(&r, &DiscoveryConfig::default());
        assert!(full.complete());

        // One checkpointed reference run keeping every boundary dump.
        let dir = ckpt_dir("resume");
        let config = DiscoveryConfig {
            checkpoint: Some(CheckpointPolicy {
                keep_last: 0,
                delete_on_complete: false,
                ..CheckpointPolicy::new(&dir)
            }),
            ..DiscoveryConfig::default()
        };
        let ck = discover(&r, &config);
        assert_same_result(&full, &ck, "checkpointed reference");

        // Resuming from every retained boundary — i.e. as if the process
        // had been killed at any level — reproduces the uninterrupted
        // result under every backend.
        let dumps = list_snapshots(&dir, None).unwrap();
        assert!(dumps.len() >= 2, "expected several boundaries: {dumps:?}");
        for dump in &dumps {
            let snap = read_snapshot(dump).unwrap();
            for mode in [
                ParallelMode::Sequential,
                ParallelMode::StaticQueues(3),
                ParallelMode::Rayon(2),
                ParallelMode::WorkStealing(3),
            ] {
                let resumed = discover_resume(
                    &r,
                    &DiscoveryConfig {
                        mode,
                        ..DiscoveryConfig::default()
                    },
                    &snap,
                )
                .unwrap();
                assert_same_result(
                    &full,
                    &resumed,
                    &format!("{mode:?} from {}", dump.display()),
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_continues_a_check_budget_stop() {
        use crate::snapshot::{latest_snapshot, read_snapshot, CheckpointPolicy};
        let r = staircase(5, 40);
        let full = discover(&r, &DiscoveryConfig::default());
        let capped = DiscoveryConfig {
            max_checks: Some(30),
            ..DiscoveryConfig::default()
        };
        let dir = ckpt_dir("budget");
        let stopped = discover(
            &r,
            &DiscoveryConfig {
                checkpoint: Some(CheckpointPolicy::new(&dir)),
                ..capped.clone()
            },
        );
        assert_eq!(stopped.termination, TerminationReason::CheckBudget);
        // The early stop leaves a -final dump carrying the termination.
        let last = latest_snapshot(&dir).unwrap();
        assert!(last.to_string_lossy().contains("-final"), "{last:?}");
        let snap = read_snapshot(&last).unwrap();
        assert_eq!(snap.termination, Some(TerminationReason::CheckBudget));
        // Resuming under the same (semantic) config replays the stop.
        let resumed = discover_resume(&r, &capped, &snap).unwrap();
        assert_same_result(&stopped, &resumed, "budget stop replay");
        // And a config with a different budget is refused.
        assert!(matches!(
            discover_resume(&r, &DiscoveryConfig::default(), &snap),
            Err(crate::snapshot::SnapshotError::ConfigMismatch("max_checks"))
        ));
        assert!(stopped.ocds.len() <= full.ocds.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
