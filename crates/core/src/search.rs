//! The OCDDISCOVER search (Algorithms 1–3).
//!
//! Starting from all single-attribute pairs, the breadth-first search checks
//! each OCD candidate `X ~ Y` with the single OD check `XY → YX`
//! (Theorem 4.1). Valid candidates are emitted and extended; invalid ones
//! are pruned together with their whole subtree (downward closure,
//! Theorem 3.7). For a valid candidate, the two OD directions `X → Y` and
//! `Y → X` are checked: a valid direction is emitted as an OD and prunes
//! the extensions of its left side (Theorem 3.9); an invalid direction
//! spawns children `XA ~ Y` (resp. `X ~ YA`) for every unused attribute `A`.
//!
//! Three execution modes implement the same traversal; see
//! [`crate::config::ParallelMode`]. Results are canonically sorted so all
//! modes return identical output.

use crate::check::{check_ocd, check_od, SortCache};
use crate::config::{CheckerBackend, DiscoveryConfig, ParallelMode};
use crate::deps::{AttrList, Ocd, Od};
use crate::reduction::{columns_reduction, Reduction};
use crate::results::{DiscoveryResult, LevelStats};
use crate::shared_cache::{CacheStats, SharedPrefixCache};
use crate::sorted_partitions::{PartitionChecker, SortedPartition};
use ocdd_relation::sort::kernel_stats;
use ocdd_relation::{ColumnId, Relation};
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Instant;

/// An OCD candidate `X ~ Y` in the search tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Candidate {
    x: AttrList,
    y: AttrList,
}

/// What processing one candidate produced.
#[derive(Debug, Default)]
struct Emission {
    ocds: Vec<Ocd>,
    ods: Vec<Od>,
    children: Vec<Candidate>,
    checks: u64,
    generated: u64,
}

/// Shared, cooperatively-checked run budget.
struct Budget {
    checks: AtomicU64,
    max_checks: u64,
    deadline: Option<Instant>,
    exhausted: AtomicBool,
    spend_calls: AtomicU64,
}

/// The wall clock is only consulted every this many [`Budget::spend`]
/// calls: `Instant::now()` costs a vDSO call, which the radix kernels made
/// comparable to a cheap candidate check. The deadline overshoot this
/// allows is a handful of candidates — the paper's budget semantics
/// (partial results past the threshold, §5.1) are unaffected.
const DEADLINE_CHECK_INTERVAL: u64 = 64;

impl Budget {
    fn new(config: &DiscoveryConfig, start: Instant, initial_checks: u64) -> Budget {
        Budget {
            checks: AtomicU64::new(initial_checks),
            max_checks: config.max_checks.unwrap_or(u64::MAX),
            deadline: config.time_budget.map(|d| start + d),
            exhausted: AtomicBool::new(false),
            spend_calls: AtomicU64::new(0),
        }
    }

    /// Record `n` checks; returns false when the run must stop.
    fn spend(&self, n: u64) -> bool {
        let total = self.checks.fetch_add(n, AtomicOrdering::Relaxed) + n;
        if total > self.max_checks {
            self.exhausted.store(true, AtomicOrdering::Relaxed);
        }
        if let Some(deadline) = self.deadline {
            let calls = self.spend_calls.fetch_add(1, AtomicOrdering::Relaxed);
            if calls.is_multiple_of(DEADLINE_CHECK_INTERVAL) && Instant::now() >= deadline {
                self.exhausted.store(true, AtomicOrdering::Relaxed);
            }
        }
        !self.exhausted.load(AtomicOrdering::Relaxed)
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted.load(AtomicOrdering::Relaxed)
    }
}

/// The run-wide shared prefix caches, when enabled: one per backend kind
/// (only the configured backend's slot is populated). Cloned `Arc`s are
/// handed to every worker's [`Checker`].
struct SharedCaches {
    sort: Option<Arc<SharedPrefixCache<Vec<u32>>>>,
    parts: Option<Arc<SharedPrefixCache<SortedPartition>>>,
}

impl SharedCaches {
    fn from_config(config: &DiscoveryConfig) -> SharedCaches {
        let (mut sort, mut parts) = (None, None);
        if config.shared_cache {
            match config.checker {
                // Resort caches nothing by definition.
                CheckerBackend::Resort => {}
                CheckerBackend::PrefixCache => {
                    sort = Some(Arc::new(SharedPrefixCache::new(config.cache_budget_bytes)));
                }
                CheckerBackend::SortedPartitions => {
                    parts = Some(Arc::new(SharedPrefixCache::new(config.cache_budget_bytes)));
                }
            }
        }
        SharedCaches { sort, parts }
    }

    fn stats(&self) -> Option<CacheStats> {
        self.sort
            .as_ref()
            .map(|c| c.stats())
            .or_else(|| self.parts.as_ref().map(|c| c.stats()))
    }
}

/// Per-worker checker state for the configured [`CheckerBackend`].
enum Checker<'r> {
    /// Re-sort per candidate (paper-faithful).
    Plain(&'r Relation),
    /// Sorted-index prefix cache.
    Cached(SortCache<'r>),
    /// Sorted partitions with incremental refinement.
    Partitions(Box<PartitionChecker<'r>>),
}

impl<'r> Checker<'r> {
    fn new(rel: &'r Relation, backend: CheckerBackend, shared: &SharedCaches) -> Checker<'r> {
        match backend {
            CheckerBackend::Resort => Checker::Plain(rel),
            CheckerBackend::PrefixCache => Checker::Cached(match &shared.sort {
                Some(cache) => SortCache::with_shared(rel, Arc::clone(cache)),
                None => SortCache::new(rel),
            }),
            CheckerBackend::SortedPartitions => {
                Checker::Partitions(Box::new(match &shared.parts {
                    Some(cache) => PartitionChecker::with_shared(rel, Arc::clone(cache)),
                    None => PartitionChecker::new(rel),
                }))
            }
        }
    }

    fn check_ocd(&mut self, x: &AttrList, y: &AttrList) -> bool {
        match self {
            Checker::Plain(rel) => check_ocd(rel, x, y).is_valid(),
            Checker::Cached(c) => c.check_ocd(x, y).is_valid(),
            Checker::Partitions(p) => p.check_ocd(x, y).is_valid(),
        }
    }

    fn check_od(&mut self, x: &AttrList, y: &AttrList) -> bool {
        match self {
            Checker::Plain(rel) => check_od(rel, x, y).is_valid(),
            Checker::Cached(c) => c.check_od(x, y).is_valid(),
            Checker::Partitions(p) => p.check_od(x, y).is_valid(),
        }
    }
}

/// Check one candidate and, if it is a valid OCD, emit it and generate the
/// next level (Algorithm 3).
fn process_candidate(
    universe: &[ColumnId],
    cand: &Candidate,
    checker: &mut Checker<'_>,
    out: &mut Emission,
) {
    out.checks += 1;
    if !checker.check_ocd(&cand.x, &cand.y) {
        // Pruning rule (Theorem 3.7): the whole subtree is invalid.
        return;
    }
    out.ocds.push(Ocd::new(cand.x.clone(), cand.y.clone()));

    let unused: Vec<ColumnId> = universe
        .iter()
        .copied()
        .filter(|&a| !cand.x.contains(a) && !cand.y.contains(a))
        .collect();

    // Direction X -> Y (Algorithm 3 lines 3-9).
    out.checks += 1;
    if checker.check_od(&cand.x, &cand.y) {
        out.ods.push(Od::new(cand.x.clone(), cand.y.clone()));
    } else {
        for &a in &unused {
            out.generated += 1;
            out.children.push(Candidate {
                x: cand.x.with_appended(a),
                y: cand.y.clone(),
            });
        }
    }

    // Direction Y -> X (Algorithm 3 lines 10-16).
    out.checks += 1;
    if checker.check_od(&cand.y, &cand.x) {
        out.ods.push(Od::new(cand.y.clone(), cand.x.clone()));
    } else {
        for &a in &unused {
            out.generated += 1;
            out.children.push(Candidate {
                x: cand.x.clone(),
                y: cand.y.with_appended(a),
            });
        }
    }
}

/// Deduplicate a level worth of children in place (each candidate can be
/// produced by two parents).
fn dedup_level(level: &mut Vec<Candidate>) {
    let mut seen: HashSet<Candidate> = HashSet::with_capacity(level.len());
    level.retain(|c| seen.insert(c.clone()));
}

/// A subtree traversal used by every mode: BFS over `seeds` until the tree
/// is exhausted or the budget runs out. Accumulates into `acc`.
fn run_subtree(
    rel: &Relation,
    universe: &[ColumnId],
    seeds: Vec<Candidate>,
    config: &DiscoveryConfig,
    budget: &Budget,
    shared: &SharedCaches,
    acc: &mut SearchAccumulator,
) {
    let mut checker = Checker::new(rel, config.checker, shared);
    let mut level = seeds;
    let mut level_no = 2usize;
    while !level.is_empty() {
        if config.max_level.is_some_and(|max| level_no > max) {
            acc.truncated = true;
            break;
        }
        let mut next = Vec::new();
        let mut stats = LevelStats {
            level: level_no,
            ..LevelStats::default()
        };
        for cand in &level {
            let mut em = Emission::default();
            process_candidate(universe, cand, &mut checker, &mut em);
            stats.candidates += 1;
            stats.valid_ocds += em.ocds.len() as u64;
            stats.valid_ods += em.ods.len() as u64;
            acc.ocds.extend(em.ocds);
            acc.ods.extend(em.ods);
            acc.generated += em.generated;
            next.extend(em.children);
            if !budget.spend(em.checks) {
                acc.levels.push(stats);
                acc.truncated = true;
                return;
            }
        }
        acc.levels.push(stats);
        if config.dedup_candidates {
            dedup_level(&mut next);
        }
        level = next;
        level_no += 1;
    }
}

/// Mutable state shared by a traversal.
#[derive(Debug, Default)]
struct SearchAccumulator {
    ocds: Vec<Ocd>,
    ods: Vec<Od>,
    generated: u64,
    levels: Vec<LevelStats>,
    truncated: bool,
}

impl SearchAccumulator {
    fn merge(&mut self, other: SearchAccumulator) {
        self.ocds.extend(other.ocds);
        self.ods.extend(other.ods);
        self.generated += other.generated;
        self.truncated |= other.truncated;
        for stat in other.levels {
            match self.levels.iter_mut().find(|s| s.level == stat.level) {
                Some(mine) => {
                    mine.candidates += stat.candidates;
                    mine.valid_ocds += stat.valid_ocds;
                    mine.valid_ods += stat.valid_ods;
                }
                None => self.levels.push(stat),
            }
        }
    }
}

/// Resume the search below a candidate whose OD direction `od.lhs → od.rhs`
/// has just been invalidated (used by [`crate::incremental`]).
///
/// When `X → Y` held, Algorithm 3 pruned the children `XA ~ Y`
/// (Theorem 3.9 made them derivable). Once the OD breaks on a grown
/// instance those children become genuine candidates again; this helper
/// re-runs the BFS over exactly that subtree and returns the emissions and
/// the number of checks spent.
pub(crate) fn resume_after_od_invalidation(
    rel: &Relation,
    universe: &[ColumnId],
    od_lhs: &AttrList,
    od_rhs: &AttrList,
    config: &DiscoveryConfig,
) -> (Vec<Ocd>, Vec<Od>, u64) {
    let seeds: Vec<Candidate> = universe
        .iter()
        .copied()
        .filter(|&a| !od_lhs.contains(a) && !od_rhs.contains(a))
        .map(|a| Candidate {
            x: od_lhs.with_appended(a),
            y: od_rhs.clone(),
        })
        .collect();
    let budget = Budget::new(config, Instant::now(), 0);
    let shared = SharedCaches::from_config(config);
    let mut acc = SearchAccumulator::default();
    run_subtree(rel, universe, seeds, config, &budget, &shared, &mut acc);
    let checks = budget.checks.load(AtomicOrdering::Relaxed);
    (acc.ocds, acc.ods, checks)
}

/// Cost profile of one level-2 branch — the unit of distribution of the
/// paper's static-queue parallelization (§4.2.2). A candidate belongs to
/// exactly one branch (the pair of first attributes of its sides), so
/// branch costs fully determine how any K-queue assignment balances.
#[derive(Debug, Clone)]
pub struct BranchCost {
    /// The branch's seed pair (first attribute of each side).
    pub seed: (ColumnId, ColumnId),
    /// Wall-clock time to explore the whole subtree sequentially.
    pub elapsed: std::time::Duration,
    /// Candidate checks spent in the subtree.
    pub checks: u64,
    /// Valid OCDs found in the subtree.
    pub valid_ocds: u64,
}

/// Profile every level-2 branch of the search individually: run column
/// reduction (timed), then each seed's subtree sequentially.
///
/// Used by the Figure 6 harness to *simulate* the static-queue speedup on
/// machines without enough cores to measure it: for K queues, the
/// simulated parallel time is `reduction + max over queues of the queue's
/// summed branch costs` (round-robin assignment, as in the search itself).
pub fn profile_branches(
    rel: &Relation,
    config: &DiscoveryConfig,
) -> (std::time::Duration, Vec<BranchCost>) {
    let t0 = Instant::now();
    let reduction = if config.column_reduction {
        columns_reduction(rel)
    } else {
        Reduction {
            attributes: (0..rel.num_columns()).collect(),
            ..Reduction::default()
        }
    };
    let reduction_time = t0.elapsed();

    let mut costs = Vec::new();
    for seed in seed_candidates(&reduction.attributes) {
        let seed_pair = (seed.x.as_slice()[0], seed.y.as_slice()[0]);
        let budget = Budget::new(config, Instant::now(), 0);
        let shared = SharedCaches::from_config(config);
        let mut acc = SearchAccumulator::default();
        let t = Instant::now();
        run_subtree(
            rel,
            &reduction.attributes,
            vec![seed],
            config,
            &budget,
            &shared,
            &mut acc,
        );
        costs.push(BranchCost {
            seed: seed_pair,
            elapsed: t.elapsed(),
            checks: budget.checks.load(AtomicOrdering::Relaxed),
            valid_ocds: acc.ocds.len() as u64,
        });
    }
    (reduction_time, costs)
}

/// Level-2 seed candidates over the reduced universe: all pairs `(Ai, Aj)`
/// with `i < j` (OCDs are commutative, Algorithm 1 line 4).
fn seed_candidates(universe: &[ColumnId]) -> Vec<Candidate> {
    let mut seeds = Vec::new();
    for (i, &a) in universe.iter().enumerate() {
        for &b in &universe[i + 1..] {
            seeds.push(Candidate {
                x: AttrList::single(a),
                y: AttrList::single(b),
            });
        }
    }
    seeds
}

/// Run OCDDISCOVER over `rel` with the given configuration.
///
/// Returns the minimal OCDs and the disjoint-side ODs over the reduced
/// attribute universe, plus the reduction facts (constants, equivalence
/// classes, single-column ODs). Use [`crate::expand`] to translate the
/// result into the full set of ODs for comparison with other algorithms.
pub fn discover(rel: &Relation, config: &DiscoveryConfig) -> DiscoveryResult {
    let start = Instant::now();
    let kernels_before = kernel_stats::snapshot();

    let reduction_threads = match config.mode {
        ParallelMode::Sequential => 1,
        ParallelMode::StaticQueues(k) | ParallelMode::Rayon(k) => k.max(1),
    };
    let reduction = if config.column_reduction {
        crate::reduction::columns_reduction_with_threads(rel, reduction_threads)
    } else {
        Reduction {
            attributes: (0..rel.num_columns()).collect(),
            ..Reduction::default()
        }
    };

    let budget = Budget::new(config, start, reduction.checks);
    let shared = SharedCaches::from_config(config);
    let seeds = seed_candidates(&reduction.attributes);
    let universe = &reduction.attributes;

    let mut acc = SearchAccumulator::default();
    match config.mode {
        ParallelMode::Sequential => {
            run_subtree(rel, universe, seeds, config, &budget, &shared, &mut acc);
        }
        ParallelMode::StaticQueues(k) => {
            let k = k.max(1);
            // Round-robin partition of the level-2 branches (§4.2.2). Each
            // candidate's whole subtree stays within its seed's queue.
            let mut queues: Vec<Vec<Candidate>> = (0..k).map(|_| Vec::new()).collect();
            for (i, seed) in seeds.into_iter().enumerate() {
                queues[i % k].push(seed);
            }
            let accs: Vec<SearchAccumulator> = std::thread::scope(|scope| {
                let handles: Vec<_> = queues
                    .into_iter()
                    .map(|queue| {
                        let budget = &budget;
                        let shared = &shared;
                        scope.spawn(move || {
                            let mut acc = SearchAccumulator::default();
                            run_subtree(rel, universe, queue, config, budget, shared, &mut acc);
                            acc
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
            for a in accs {
                acc.merge(a);
            }
        }
        ParallelMode::Rayon(k) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(k.max(1))
                .build()
                .expect("failed to build rayon pool");
            pool.install(|| {
                let mut level = seeds;
                let mut level_no = 2usize;
                while !level.is_empty() && !budget.is_exhausted() {
                    if config.max_level.is_some_and(|max| level_no > max) {
                        acc.truncated = true;
                        break;
                    }
                    let results: Vec<(Emission, bool)> = level
                        .par_iter()
                        .map_init(
                            || Checker::new(rel, config.checker, &shared),
                            |checker, cand| {
                                let mut em = Emission::default();
                                if budget.is_exhausted() {
                                    return (em, false);
                                }
                                process_candidate(universe, cand, checker, &mut em);
                                let ok = budget.spend(em.checks);
                                (em, ok)
                            },
                        )
                        .collect();
                    let mut stats = LevelStats {
                        level: level_no,
                        ..LevelStats::default()
                    };
                    let mut next = Vec::new();
                    for (em, ok) in results {
                        if !ok {
                            acc.truncated = true;
                        }
                        stats.candidates += 1;
                        stats.valid_ocds += em.ocds.len() as u64;
                        stats.valid_ods += em.ods.len() as u64;
                        acc.ocds.extend(em.ocds);
                        acc.ods.extend(em.ods);
                        acc.generated += em.generated;
                        next.extend(em.children);
                    }
                    acc.levels.push(stats);
                    if acc.truncated {
                        break;
                    }
                    if config.dedup_candidates {
                        dedup_level(&mut next);
                    }
                    level = next;
                    level_no += 1;
                }
            });
        }
    }

    // Canonical ordering: shorter dependencies first (the BFS guarantee),
    // then lexicographic — identical across all execution modes.
    let mut ocds = acc.ocds;
    ocds.sort_by(|a, b| {
        (a.lhs.len() + a.rhs.len(), &a.lhs, &a.rhs).cmp(&(
            b.lhs.len() + b.rhs.len(),
            &b.lhs,
            &b.rhs,
        ))
    });
    ocds.dedup();
    let mut ods: Vec<Od> = acc.ods;
    ods.extend(reduction.single_ods.iter().cloned());
    ods.sort_by(|a, b| {
        (a.lhs.len() + a.rhs.len(), &a.lhs, &a.rhs).cmp(&(
            b.lhs.len() + b.rhs.len(),
            &b.lhs,
            &b.rhs,
        ))
    });
    ods.dedup();
    let mut levels = acc.levels;
    levels.sort_by_key(|s| s.level);

    DiscoveryResult {
        ocds,
        ods,
        constants: reduction.constants,
        equivalence_classes: reduction.equivalence_classes,
        reduced_attributes: reduction.attributes,
        checks: budget.checks.load(AtomicOrdering::Relaxed),
        candidates_generated: acc.generated,
        levels,
        elapsed: start.elapsed(),
        complete: !acc.truncated && !budget.is_exhausted(),
        cache: shared.stats(),
        kernels: kernel_stats::snapshot().since(&kernels_before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::{Relation, Value};

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    fn l(ids: &[usize]) -> AttrList {
        AttrList::from_slice(ids)
    }

    #[test]
    fn seeds_enumerate_unordered_pairs() {
        let seeds = seed_candidates(&[0, 2, 5]);
        assert_eq!(seeds.len(), 3);
        assert_eq!(seeds[0].x, l(&[0]));
        assert_eq!(seeds[0].y, l(&[2]));
        assert_eq!(seeds[2].x, l(&[2]));
        assert_eq!(seeds[2].y, l(&[5]));
    }

    #[test]
    fn table1_tax_example() {
        // Table 1 of the paper: income orders bracket and tax; tax <-> income.
        let r = rel(&[
            ("income", &[35_000, 40_000, 40_000, 55_000, 60_000, 80_000]),
            ("savings", &[3_000, 4_000, 3_800, 6_500, 6_500, 10_000]),
            ("bracket", &[1, 1, 1, 2, 2, 3]),
            ("tax", &[5_250, 6_000, 6_000, 8_500, 9_500, 14_000]),
        ]);
        let result = discover(&r, &DiscoveryConfig::default());
        assert!(result.complete);
        // income <-> tax collapses into one class {0, 3}.
        assert_eq!(result.equivalence_classes, vec![vec![0, 3]]);
        // income -> bracket survives as a single-column OD on representatives.
        assert!(result
            .ods
            .iter()
            .any(|od| od.lhs == l(&[0]) && od.rhs == l(&[2])));
        // income ~ savings is a discovered OCD.
        assert!(result
            .ocds
            .iter()
            .any(|o| o.canonical() == Ocd::new(l(&[0]), l(&[1])).canonical()));
    }

    #[test]
    fn no_dependencies_in_adversarial_relation() {
        // Latin-square-like data with swaps everywhere.
        let r = rel(&[
            ("a", &[1, 2, 3, 4]),
            ("b", &[2, 1, 4, 3]),
            ("c", &[3, 4, 1, 2]),
        ]);
        let result = discover(&r, &DiscoveryConfig::default());
        assert!(result.complete);
        assert!(result.ocds.is_empty());
        assert!(result.ods.is_empty());
        assert!(result.equivalence_classes.is_empty());
    }

    #[test]
    fn swap_prevents_ocd_no_style_table() {
        // Table 5(b)-style relation: splits in both directions plus a swap
        // between the last two rows, so not even A ~ B holds.
        let r = rel(&[("a", &[1, 2, 3, 3, 4]), ("b", &[4, 5, 6, 7, 1])]);
        let result = discover(&r, &DiscoveryConfig::default());
        assert!(result.ocds.is_empty());
        assert!(result.ods.is_empty());
    }

    #[test]
    fn split_only_pair_yields_ocd_but_no_od_yes_style_table() {
        // Table 5(a)-style relation: neither A -> B nor B -> A (splits both
        // ways) yet A ~ B holds, i.e. AB <-> BA — invisible to ORDER.
        let r = rel(&[("a", &[1, 1, 2, 2, 3]), ("b", &[1, 2, 2, 3, 3])]);
        let result = discover(&r, &DiscoveryConfig::default());
        assert_eq!(result.ocds, vec![Ocd::new(l(&[0]), l(&[1]))]);
        assert!(result.ods.is_empty());
    }

    #[test]
    fn valid_od_prunes_extensions() {
        // a strictly increasing key: a -> everything, so no child extends a.
        let r = rel(&[
            ("a", &[1, 2, 3, 4, 5, 6]),
            ("b", &[1, 1, 2, 2, 3, 3]),
            ("c", &[5, 4, 6, 2, 9, 1]),
        ]);
        let result = discover(&r, &DiscoveryConfig::default());
        assert!(result
            .ods
            .iter()
            .any(|od| od.lhs == l(&[0]) && od.rhs == l(&[1])));
        // No OCD should have lhs [a, x] for the a~b branch since a -> b
        // prunes X-extensions; but a ~ c fails outright (c is random), and
        // b -> a fails (split), so children [a]~[b,c] may exist if b~... :
        // just assert every emitted OCD/OD is between disjoint dup-free lists.
        for ocd in &result.ocds {
            assert!(ocd.is_syntactically_minimal(), "{ocd}");
        }
        for od in &result.ods {
            assert!(od.lhs.is_disjoint(&od.rhs), "{od}");
        }
    }

    #[test]
    fn modes_agree_on_random_relations() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..8 {
            let rows = 30;
            let cols = 4;
            let data: Vec<(String, Vec<Value>)> = (0..cols)
                .map(|c| {
                    (
                        format!("c{c}"),
                        (0..rows)
                            .map(|_| Value::Int(rng.random_range(0..4)))
                            .collect(),
                    )
                })
                .collect();
            let r = Relation::from_columns(data).unwrap();
            let seq = discover(&r, &DiscoveryConfig::default());
            let par = discover(
                &r,
                &DiscoveryConfig {
                    mode: ParallelMode::StaticQueues(3),
                    ..Default::default()
                },
            );
            let ray = discover(
                &r,
                &DiscoveryConfig {
                    mode: ParallelMode::Rayon(3),
                    ..Default::default()
                },
            );
            assert_eq!(seq.ocds, par.ocds, "case {case}: static queues differ");
            assert_eq!(seq.ods, par.ods, "case {case}");
            assert_eq!(seq.ocds, ray.ocds, "case {case}: rayon differs");
            assert_eq!(seq.ods, ray.ods, "case {case}");
            assert_eq!(seq.checks, par.checks, "case {case}: same candidate tree");
        }
    }

    #[test]
    fn checker_backends_do_not_change_results() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<(String, Vec<Value>)> = (0..5)
            .map(|c| {
                (
                    format!("c{c}"),
                    (0..40)
                        .map(|_| Value::Int(rng.random_range(0..3)))
                        .collect(),
                )
            })
            .collect();
        let r = Relation::from_columns(data).unwrap();
        let plain = discover(&r, &DiscoveryConfig::default());
        for backend in [
            CheckerBackend::PrefixCache,
            CheckerBackend::SortedPartitions,
        ] {
            let alt = discover(
                &r,
                &DiscoveryConfig {
                    checker: backend,
                    ..Default::default()
                },
            );
            assert_eq!(plain.ocds, alt.ocds, "{backend:?}");
            assert_eq!(plain.ods, alt.ods, "{backend:?}");
            assert_eq!(plain.checks, alt.checks, "{backend:?}: same tree");
        }
    }

    #[test]
    fn shared_cache_never_changes_results() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<(String, Vec<Value>)> = (0..5)
            .map(|c| {
                (
                    format!("c{c}"),
                    (0..40)
                        .map(|_| Value::Int(rng.random_range(0..3)))
                        .collect(),
                )
            })
            .collect();
        let r = Relation::from_columns(data).unwrap();
        let baseline = discover(&r, &DiscoveryConfig::default());
        assert!(baseline.cache.is_none(), "no shared cache by default");
        for backend in [
            CheckerBackend::Resort,
            CheckerBackend::PrefixCache,
            CheckerBackend::SortedPartitions,
        ] {
            for mode in [ParallelMode::Sequential, ParallelMode::StaticQueues(3)] {
                let shared = discover(
                    &r,
                    &DiscoveryConfig {
                        mode,
                        checker: backend,
                        shared_cache: true,
                        ..Default::default()
                    },
                );
                assert_eq!(baseline.ocds, shared.ocds, "{backend:?}/{mode:?}");
                assert_eq!(baseline.ods, shared.ods, "{backend:?}/{mode:?}");
                assert_eq!(baseline.checks, shared.checks, "{backend:?}/{mode:?}");
                assert_eq!(baseline.levels, shared.levels, "{backend:?}/{mode:?}");
                if backend == CheckerBackend::Resort {
                    assert!(shared.cache.is_none(), "Resort caches nothing");
                } else {
                    let stats = shared.cache.expect("cache stats present");
                    assert!(stats.hits + stats.misses > 0);
                }
            }
        }
    }

    #[test]
    fn tiny_cache_budget_still_correct() {
        // A budget that fits almost nothing forces constant eviction and
        // recomputation — results must be unaffected.
        let r = rel(&[
            ("a", &[1, 1, 2, 2, 3, 3]),
            ("b", &[1, 2, 2, 3, 3, 4]),
            ("c", &[6, 3, 1, 5, 2, 4]),
            ("d", &[1, 2, 3, 4, 5, 6]),
        ]);
        let baseline = discover(&r, &DiscoveryConfig::default());
        for backend in [
            CheckerBackend::PrefixCache,
            CheckerBackend::SortedPartitions,
        ] {
            let squeezed = discover(
                &r,
                &DiscoveryConfig {
                    checker: backend,
                    shared_cache: true,
                    cache_budget_bytes: 256,
                    ..Default::default()
                },
            );
            assert_eq!(baseline.ocds, squeezed.ocds, "{backend:?}");
            assert_eq!(baseline.ods, squeezed.ods, "{backend:?}");
        }
    }

    #[test]
    fn max_level_truncates_and_flags_incomplete() {
        let r = rel(&[
            ("a", &[1, 2, 3, 4]),
            ("b", &[1, 3, 2, 4]),
            ("c", &[4, 3, 2, 1]),
        ]);
        let full = discover(&r, &DiscoveryConfig::default());
        let limited = discover(
            &r,
            &DiscoveryConfig {
                max_level: Some(2),
                ..Default::default()
            },
        );
        assert!(limited.levels.iter().all(|s| s.level <= 2));
        if full.levels.iter().any(|s| s.level > 2) {
            assert!(!limited.complete);
        }
    }

    #[test]
    fn max_checks_budget_stops_early() {
        let r = rel(&[
            ("a", &[1, 2, 3, 4, 5]),
            ("b", &[2, 1, 3, 5, 4]),
            ("c", &[1, 3, 2, 4, 5]),
            ("d", &[5, 4, 3, 2, 1]),
        ]);
        let result = discover(
            &r,
            &DiscoveryConfig {
                max_checks: Some(13),
                ..Default::default()
            },
        );
        assert!(!result.complete);
        // Partial results are still well-formed.
        for ocd in &result.ocds {
            assert!(ocd.is_syntactically_minimal());
        }
    }

    #[test]
    fn dedup_reduces_candidate_count_but_not_results() {
        // Need a relation deep enough that a candidate has two valid parents.
        let r = rel(&[
            ("a", &[1, 1, 2, 2, 3, 3, 4, 4]),
            ("b", &[1, 2, 1, 2, 3, 4, 3, 4]),
            ("c", &[1, 1, 1, 2, 2, 2, 3, 3]),
            ("d", &[0, 1, 1, 2, 2, 3, 3, 4]),
        ]);
        let with = discover(&r, &DiscoveryConfig::default());
        let without = discover(
            &r,
            &DiscoveryConfig {
                dedup_candidates: false,
                ..Default::default()
            },
        );
        assert_eq!(with.ocds, without.ocds);
        assert_eq!(with.ods, without.ods);
        assert!(without.checks >= with.checks);
    }

    #[test]
    fn bfs_emits_shorter_dependencies_first() {
        let r = rel(&[
            ("a", &[1, 1, 2, 2]),
            ("b", &[1, 2, 1, 2]),
            ("c", &[1, 2, 2, 3]),
        ]);
        let result = discover(&r, &DiscoveryConfig::default());
        let lens: Vec<usize> = result
            .ocds
            .iter()
            .map(|o| o.lhs.len() + o.rhs.len())
            .collect();
        let mut sorted = lens.clone();
        sorted.sort_unstable();
        assert_eq!(lens, sorted);
    }

    #[test]
    fn branch_profile_covers_whole_search() {
        let r = rel(&[
            ("a", &[1, 1, 2, 2, 3, 3]),
            ("b", &[1, 2, 2, 3, 3, 4]),
            ("c", &[6, 3, 1, 5, 2, 4]),
        ]);
        let config = DiscoveryConfig::default();
        let (reduction_time, branches) = profile_branches(&r, &config);
        let full = discover(&r, &config);
        // One branch per reduced-attribute pair.
        let n = full.reduced_attributes.len();
        assert_eq!(branches.len(), n * (n - 1) / 2);
        // Branch checks plus reduction checks account for every check of
        // the full run (duplicates only arise within a branch, so per-branch
        // dedup equals the full run's global dedup).
        let branch_checks: u64 = branches.iter().map(|b| b.checks).sum();
        let red = columns_reduction(&r);
        assert_eq!(branch_checks + red.checks, full.checks);
        // OCD totals agree.
        let branch_ocds: u64 = branches.iter().map(|b| b.valid_ocds).sum();
        assert_eq!(branch_ocds as usize, full.ocds.len());
        let _ = reduction_time;
    }

    #[test]
    fn empty_and_single_column_relations() {
        let r = Relation::from_columns(vec![]).unwrap();
        let result = discover(&r, &DiscoveryConfig::default());
        assert!(result.complete);
        assert_eq!(result.checks, 0);

        let r = rel(&[("a", &[1, 2, 3])]);
        let result = discover(&r, &DiscoveryConfig::default());
        assert!(result.ocds.is_empty());
        assert!(result.complete);
    }
}
