//! Bidirectional ("polarized") order dependencies — the generalization the
//! paper's related work points to (§6, citing Szlichta et al.): each
//! attribute in a list carries its own sort direction, as in
//! `ORDER BY price ASC, discount DESC`.
//!
//! Everything from the unidirectional theory lifts: the lexicographic
//! operator `⪯` is still a total preorder when each marked attribute
//! compares through its own direction, so the single-check reduction of
//! Theorem 4.1 (`X ~ Y ⟺ XY → YX`) and the split/swap taxonomy carry
//! over verbatim. Two new phenomena appear:
//!
//! * **global polarity symmetry** — flipping every direction in both lists
//!   preserves validity (`p ⪯ q` becomes `q ⪯ p` on both sides), so
//!   candidates are canonicalized with their first mark ascending;
//! * **reverse equivalence** — a column can be order equivalent to the
//!   *descending* version of another (`A ↔ B↓`, e.g. `rank` vs `score`),
//!   which the bidirectional column reduction detects by running Tarjan
//!   over the digraph of all `2n` marked attributes.

use crate::check::CheckOutcome;
use crate::config::DiscoveryConfig;
use crate::runtime::{Budget, TerminationReason};
use ocdd_relation::{ColumnId, Relation};
use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;

/// Sort direction of one attribute inside a marked list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Ascending (the unidirectional default).
    Asc,
    /// Descending.
    Desc,
}

impl Direction {
    /// The opposite direction.
    pub fn flipped(self) -> Direction {
        match self {
            Direction::Asc => Direction::Desc,
            Direction::Desc => Direction::Asc,
        }
    }
}

/// One marked attribute `A↑` / `A↓`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mark {
    /// The column.
    pub column: ColumnId,
    /// Its sort direction.
    pub direction: Direction,
}

impl Mark {
    /// Ascending mark.
    pub fn asc(column: ColumnId) -> Mark {
        Mark {
            column,
            direction: Direction::Asc,
        }
    }

    /// Descending mark.
    pub fn desc(column: ColumnId) -> Mark {
        Mark {
            column,
            direction: Direction::Desc,
        }
    }

    /// The same column with the opposite direction.
    pub fn flipped(self) -> Mark {
        Mark {
            column: self.column,
            direction: self.direction.flipped(),
        }
    }
}

impl fmt::Display for Mark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = match self.direction {
            Direction::Asc => "+",
            Direction::Desc => "-",
        };
        write!(f, "{}{arrow}", self.column)
    }
}

/// A list of marked attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MarkedList(Vec<Mark>);

impl MarkedList {
    /// Single-mark list.
    pub fn single(mark: Mark) -> MarkedList {
        MarkedList(vec![mark])
    }

    /// Build from marks.
    pub fn from_marks(marks: Vec<Mark>) -> MarkedList {
        MarkedList(marks)
    }

    /// The marks in list order.
    pub fn as_slice(&self) -> &[Mark] {
        &self.0
    }

    /// List length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty list.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether the *column* (either polarity) occurs in the list.
    pub fn contains_column(&self, col: ColumnId) -> bool {
        self.0.iter().any(|m| m.column == col)
    }

    /// Concatenation.
    pub fn concat(&self, other: &MarkedList) -> MarkedList {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        MarkedList(v)
    }

    /// Append one mark.
    pub fn with_appended(&self, mark: Mark) -> MarkedList {
        let mut v = self.0.clone();
        v.push(mark);
        MarkedList(v)
    }

    /// Flip every direction (the global polarity symmetry).
    pub fn flipped(&self) -> MarkedList {
        MarkedList(self.0.iter().map(|m| m.flipped()).collect())
    }
}

impl fmt::Display for MarkedList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, m) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "]")
    }
}

/// A bidirectional OCD `X ~ Y` between marked lists.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BidiOcd {
    /// One side.
    pub lhs: MarkedList,
    /// The other side.
    pub rhs: MarkedList,
}

impl fmt::Display for BidiOcd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ~ {}", self.lhs, self.rhs)
    }
}

/// A bidirectional OD `X → Y` between marked lists.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BidiOd {
    /// Left-hand side.
    pub lhs: MarkedList,
    /// Right-hand side.
    pub rhs: MarkedList,
}

impl fmt::Display for BidiOd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.lhs, self.rhs)
    }
}

/// Compare rows `a`, `b` on a marked list (direction-aware lexicographic).
#[inline]
pub fn cmp_rows_marked(rel: &Relation, list: &MarkedList, a: usize, b: usize) -> Ordering {
    for m in list.as_slice() {
        let ca = rel.code(a, m.column);
        let cb = rel.code(b, m.column);
        let ord = match m.direction {
            Direction::Asc => ca.cmp(&cb),
            Direction::Desc => cb.cmp(&ca),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Check the bidirectional OD `lhs → rhs` by index sort + adjacent scan
/// (the direction-aware analogue of [`crate::check::check_od`]).
pub fn check_bidi_od(rel: &Relation, lhs: &MarkedList, rhs: &MarkedList) -> CheckOutcome {
    let mut index: Vec<u32> = (0..rel.num_rows() as u32).collect();
    index.sort_by(|&a, &b| cmp_rows_marked(rel, lhs, a as usize, b as usize));
    for w in index.windows(2) {
        let (p, q) = (w[0] as usize, w[1] as usize);
        match cmp_rows_marked(rel, rhs, p, q) {
            Ordering::Less => {
                if cmp_rows_marked(rel, lhs, p, q) == Ordering::Equal {
                    return CheckOutcome::Split {
                        row_a: w[0],
                        row_b: w[1],
                    };
                }
            }
            Ordering::Greater => {
                return if cmp_rows_marked(rel, lhs, p, q) == Ordering::Equal {
                    CheckOutcome::Split {
                        row_a: w[0],
                        row_b: w[1],
                    }
                } else {
                    CheckOutcome::Swap {
                        row_a: w[0],
                        row_b: w[1],
                    }
                };
            }
            Ordering::Equal => {}
        }
    }
    CheckOutcome::Valid
}

/// Check the bidirectional OCD `x ~ y` via the single check `XY → YX`
/// (Theorem 4.1 lifts: the proof only needs `⪯` to be total per list).
pub fn check_bidi_ocd(rel: &Relation, x: &MarkedList, y: &MarkedList) -> CheckOutcome {
    check_bidi_od(rel, &x.concat(y), &y.concat(x))
}

/// Output of a bidirectional discovery run.
#[derive(Debug, Clone, Default)]
pub struct BidiResult {
    /// Minimal bidirectional OCDs (canonical polarity: first mark Asc).
    pub ocds: Vec<BidiOcd>,
    /// Bidirectional ODs between disjoint marked lists.
    pub ods: Vec<BidiOd>,
    /// Constant columns (direction-independent).
    pub constants: Vec<ColumnId>,
    /// Marked-attribute equivalence classes (representative first). A class
    /// may mix polarities: `[A↑, B↓]` means `A ↔ B↓`.
    pub equivalence_classes: Vec<Vec<Mark>>,
    /// Candidate checks performed.
    pub checks: u64,
    /// Why the run stopped; anything but
    /// [`TerminationReason::Complete`] means partial results.
    pub termination: TerminationReason,
}

impl BidiResult {
    /// True when the search explored the whole candidate tree.
    pub fn complete(&self) -> bool {
        self.termination.is_complete()
    }
}

/// Bidirectional column reduction: Tarjan SCC over the digraph of the `2n`
/// marked attributes (only ascending sources need checking — the flipped
/// edges follow from the polarity symmetry).
fn bidi_reduction(
    rel: &Relation,
    checks: &mut u64,
) -> (Vec<ColumnId>, Vec<ColumnId>, Vec<Vec<Mark>>) {
    let n = rel.num_columns();
    let mut constants = Vec::new();
    let mut live: Vec<ColumnId> = Vec::new();
    for c in 0..n {
        if rel.meta(c).is_constant() {
            constants.push(c);
        } else {
            live.push(c);
        }
    }

    // Node ids: 2*i (asc), 2*i + 1 (desc) over live columns.
    let k = live.len();
    let node = |i: usize, d: Direction| 2 * i + usize::from(d == Direction::Desc);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); 2 * k];
    for i in 0..k {
        for j in 0..k {
            if i == j {
                continue;
            }
            for dir in [Direction::Asc, Direction::Desc] {
                *checks += 1;
                let valid = check_bidi_od(
                    rel,
                    &MarkedList::single(Mark::asc(live[i])),
                    &MarkedList::single(Mark {
                        column: live[j],
                        direction: dir,
                    }),
                )
                .is_valid();
                if valid {
                    // A↑ → B^d, and by symmetry A↓ → B^(flip d).
                    adj[node(i, Direction::Asc)].push(node(j, dir));
                    adj[node(i, Direction::Desc)].push(node(j, dir.flipped()));
                }
            }
        }
    }

    let sccs = crate::reduction::strongly_connected_components(&adj);
    let mut classes: Vec<Vec<Mark>> = Vec::new();
    let mut removed: HashSet<ColumnId> = HashSet::new();
    let mut kept: Vec<ColumnId> = Vec::new();
    // Visit components; each contains marked attrs. A component and its
    // mirror (all marks flipped) are the same fact — keep the one whose
    // smallest member is ascending.
    let mut sorted_sccs: Vec<Vec<Mark>> = sccs
        .into_iter()
        .map(|comp| {
            let mut marks: Vec<Mark> = comp
                .into_iter()
                .map(|nd| Mark {
                    column: live[nd / 2],
                    direction: if nd % 2 == 0 {
                        Direction::Asc
                    } else {
                        Direction::Desc
                    },
                })
                .collect();
            marks.sort();
            marks
        })
        .collect();
    sorted_sccs.sort();
    for marks in sorted_sccs {
        let rep = marks[0];
        if rep.direction == Direction::Desc {
            continue; // mirror of an ascending-rooted component
        }
        if removed.contains(&rep.column) || kept.contains(&rep.column) {
            continue;
        }
        kept.push(rep.column);
        for m in &marks[1..] {
            removed.insert(m.column);
        }
        if marks.len() > 1 {
            classes.push(marks);
        }
    }
    kept.retain(|c| !removed.contains(c));
    kept.sort_unstable();
    (kept, constants, classes)
}

/// Discover bidirectional OCDs/ODs breadth-first, mirroring Algorithm 1
/// with direction-marked candidates. The polarity symmetry halves the seed
/// space (the left seed mark is always ascending); extensions try both
/// polarities of each unused column, so each level multiplies by `2×` per
/// appended attribute — the documented cost of the generalization.
pub fn discover_bidirectional(rel: &Relation, config: &DiscoveryConfig) -> BidiResult {
    let start = crate::runtime::now();
    let mut checks = 0u64;
    let (universe, constants, equivalence_classes) = bidi_reduction(rel, &mut checks);

    // Same amortized budget as the exhaustive search: `max_checks` is
    // enforced globally (the traversal is sequential, so that stays
    // deterministic); wall clock and cancellation are polled every
    // `DEADLINE_CHECK_INTERVAL`-th candidate.
    let budget = Budget::new(config, start, checks);
    let mut level_capped = false;

    let mut ocds: Vec<BidiOcd> = Vec::new();
    let mut ods: Vec<BidiOd> = Vec::new();

    // Seeds: (Ai↑, Aj↑) and (Ai↑, Aj↓) for i < j.
    let mut level: Vec<(MarkedList, MarkedList)> = Vec::new();
    for (i, &a) in universe.iter().enumerate() {
        for &b in &universe[i + 1..] {
            for dir in [Direction::Asc, Direction::Desc] {
                level.push((
                    MarkedList::single(Mark::asc(a)),
                    MarkedList::single(Mark {
                        column: b,
                        direction: dir,
                    }),
                ));
            }
        }
    }

    let mut level_no = 2usize;
    'outer: while !level.is_empty() {
        if config.max_level.is_some_and(|max| level_no > max) {
            level_capped = true;
            break;
        }
        let mut next: Vec<(MarkedList, MarkedList)> = Vec::new();
        for (x, y) in &level {
            if !budget.probe() {
                break 'outer;
            }
            let mut spent = 1u64;
            if !check_bidi_ocd(rel, x, y).is_valid() {
                budget.spend(spent);
                continue;
            }
            ocds.push(BidiOcd {
                lhs: x.clone(),
                rhs: y.clone(),
            });

            let unused: Vec<ColumnId> = universe
                .iter()
                .copied()
                .filter(|&a| !x.contains_column(a) && !y.contains_column(a))
                .collect();

            spent += 1;
            if check_bidi_od(rel, x, y).is_valid() {
                ods.push(BidiOd {
                    lhs: x.clone(),
                    rhs: y.clone(),
                });
            } else {
                for &a in &unused {
                    for dir in [Direction::Asc, Direction::Desc] {
                        next.push((
                            x.with_appended(Mark {
                                column: a,
                                direction: dir,
                            }),
                            y.clone(),
                        ));
                    }
                }
            }
            spent += 1;
            if check_bidi_od(rel, y, x).is_valid() {
                ods.push(BidiOd {
                    lhs: y.clone(),
                    rhs: x.clone(),
                });
            } else {
                for &a in &unused {
                    for dir in [Direction::Asc, Direction::Desc] {
                        next.push((
                            x.clone(),
                            y.with_appended(Mark {
                                column: a,
                                direction: dir,
                            }),
                        ));
                    }
                }
            }
            budget.spend(spent);
        }
        let mut seen: HashSet<(MarkedList, MarkedList)> = HashSet::with_capacity(next.len());
        next.retain(|c| seen.insert(c.clone()));
        level = next;
        level_no += 1;
    }

    ocds.sort_by(|a, b| {
        (a.lhs.len() + a.rhs.len(), &a.lhs, &a.rhs).cmp(&(
            b.lhs.len() + b.rhs.len(),
            &b.lhs,
            &b.rhs,
        ))
    });
    ods.sort_by(|a, b| {
        (a.lhs.len() + a.rhs.len(), &a.lhs, &a.rhs).cmp(&(
            b.lhs.len() + b.rhs.len(),
            &b.lhs,
            &b.rhs,
        ))
    });

    let termination = match budget.cause() {
        Some(cause) => cause.into(),
        None if level_capped => TerminationReason::LevelCap,
        None => TerminationReason::Complete,
    };
    BidiResult {
        ocds,
        ods,
        constants,
        equivalence_classes,
        checks: budget.checks(),
        termination,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocdd_relation::Value;

    fn rel(cols: &[(&str, &[i64])]) -> Relation {
        Relation::from_columns(
            cols.iter()
                .map(|(n, vals)| (n.to_string(), vals.iter().map(|&v| Value::Int(v)).collect()))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn descending_od_detected() {
        // b is strictly decreasing in a: a↑ -> b↓ holds, a↑ -> b↑ fails.
        let r = rel(&[("a", &[1, 2, 3, 4]), ("b", &[9, 7, 5, 2])]);
        let a_up = MarkedList::single(Mark::asc(0));
        let b_up = MarkedList::single(Mark::asc(1));
        let b_down = MarkedList::single(Mark::desc(1));
        assert!(check_bidi_od(&r, &a_up, &b_down).is_valid());
        assert!(!check_bidi_od(&r, &a_up, &b_up).is_valid());
    }

    #[test]
    fn global_polarity_flip_preserves_validity() {
        let r = rel(&[("a", &[1, 2, 2, 4]), ("b", &[8, 5, 5, 1])]);
        let x = MarkedList::single(Mark::asc(0));
        let y = MarkedList::single(Mark::desc(1));
        let valid = check_bidi_od(&r, &x, &y).is_valid();
        let flipped = check_bidi_od(&r, &x.flipped(), &y.flipped()).is_valid();
        assert_eq!(valid, flipped);
    }

    #[test]
    fn theorem_4_1_lifts_to_marked_lists() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let vals = |rng: &mut StdRng| -> Vec<i64> {
                (0..10).map(|_| rng.random_range(0..4)).collect()
            };
            let (va, vb) = (vals(&mut rng), vals(&mut rng));
            let r = rel(&[("a", &va), ("b", &vb)]);
            for dir in [Direction::Asc, Direction::Desc] {
                let x = MarkedList::single(Mark::asc(0));
                let y = MarkedList::single(Mark {
                    column: 1,
                    direction: dir,
                });
                let xy = x.concat(&y);
                let yx = y.concat(&x);
                assert_eq!(
                    check_bidi_od(&r, &xy, &yx).is_valid(),
                    check_bidi_od(&r, &yx, &xy).is_valid(),
                    "seed {seed} dir {dir:?}"
                );
            }
        }
    }

    #[test]
    fn reverse_equivalence_collapses_in_reduction() {
        // b = -a: a↑ <-> b↓.
        let r = rel(&[
            ("a", &[3, 1, 4, 2]),
            ("b", &[-3, -1, -4, -2]),
            ("c", &[1, 2, 2, 1]),
        ]);
        let result = discover_bidirectional(&r, &DiscoveryConfig::default());
        assert_eq!(result.equivalence_classes.len(), 1);
        let class = &result.equivalence_classes[0];
        assert!(class.contains(&Mark::asc(0)));
        assert!(class.contains(&Mark::desc(1)));
    }

    #[test]
    fn mixed_polarity_ocd_found() {
        // a and b trend oppositely with independent ties: a↑ ~ b↓ but no OD.
        // Backbone: a non-decreasing, b non-increasing.
        let r = rel(&[("a", &[1, 1, 2, 2, 3, 3]), ("b", &[9, 8, 8, 5, 5, 5])]);
        let result = discover_bidirectional(&r, &DiscoveryConfig::default());
        let found = result.ocds.iter().any(|o| {
            o.lhs == MarkedList::single(Mark::asc(0)) && o.rhs == MarkedList::single(Mark::desc(1))
        });
        assert!(found, "a+ ~ b- expected, got {:?}", result.ocds);
        // The ascending pairing must NOT appear.
        let asc_pair = result.ocds.iter().any(|o| {
            o.lhs == MarkedList::single(Mark::asc(0)) && o.rhs == MarkedList::single(Mark::asc(1))
        });
        assert!(!asc_pair);
    }

    #[test]
    fn unidirectional_results_are_a_special_case() {
        use crate::{discover, DiscoveryConfig};
        // On data with only ascending structure, the bidirectional search
        // must find every unidirectional OCD (as all-Asc marked lists).
        let r = rel(&[
            ("a", &[1, 1, 2, 2, 3]),
            ("b", &[1, 2, 2, 3, 3]),
            ("c", &[5, 3, 1, 4, 2]),
        ]);
        let uni = discover(&r, &DiscoveryConfig::default());
        let bidi = discover_bidirectional(&r, &DiscoveryConfig::default());
        for ocd in &uni.ocds {
            let lhs =
                MarkedList::from_marks(ocd.lhs.as_slice().iter().map(|&c| Mark::asc(c)).collect());
            let rhs =
                MarkedList::from_marks(ocd.rhs.as_slice().iter().map(|&c| Mark::asc(c)).collect());
            assert!(
                bidi.ocds
                    .iter()
                    .any(|o| (o.lhs == lhs && o.rhs == rhs) || (o.lhs == rhs && o.rhs == lhs)),
                "missing all-asc {ocd}"
            );
        }
    }

    #[test]
    fn budget_respected() {
        let r = rel(&[
            ("a", &[1, 2, 3, 4, 5, 6]),
            ("b", &[2, 1, 4, 3, 6, 5]),
            ("c", &[6, 5, 4, 3, 2, 1]),
            ("d", &[1, 3, 2, 5, 4, 6]),
        ]);
        let result = discover_bidirectional(
            &r,
            &DiscoveryConfig {
                max_checks: Some(10),
                ..DiscoveryConfig::default()
            },
        );
        assert!(!result.complete());
        assert_eq!(result.termination, TerminationReason::CheckBudget);
    }

    #[test]
    fn cancelled_before_start_returns_immediately() {
        use crate::runtime::RunController;
        let r = rel(&[
            ("a", &[1, 2, 3, 4, 5, 6]),
            ("b", &[2, 1, 4, 3, 6, 5]),
            ("c", &[6, 5, 4, 3, 2, 1]),
            ("d", &[1, 3, 2, 5, 4, 6]),
        ]);
        let controller = RunController::new();
        controller.cancel();
        let result = discover_bidirectional(
            &r,
            &DiscoveryConfig {
                controller: Some(controller),
                ..DiscoveryConfig::default()
            },
        );
        assert_eq!(result.termination, TerminationReason::Cancelled);
        assert!(result.ocds.is_empty(), "no candidate was processed");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Mark::asc(3).to_string(), "3+");
        assert_eq!(Mark::desc(1).to_string(), "1-");
        let list = MarkedList::from_marks(vec![Mark::asc(0), Mark::desc(2)]);
        assert_eq!(list.to_string(), "[0+,2-]");
        let ocd = BidiOcd {
            lhs: list.clone(),
            rhs: MarkedList::single(Mark::asc(1)),
        };
        assert_eq!(ocd.to_string(), "[0+,2-] ~ [1+]");
    }
}
